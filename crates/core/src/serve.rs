//! The multi-stream server runtime: a sharded pool of distillation workers.
//!
//! The paper evaluates one client per server, but the server is the shared,
//! expensive side of the system. This module turns the single-stream
//! [`crate::server::ServerState`] into a multi-tenant service:
//!
//! * [`ServeShard`] owns one teacher and one [`DistillSession`] per client
//!   stream assigned to it. Key frames from different streams that arrive
//!   close together are *co-scheduled*: the teacher labels them in one
//!   batched forward pass ([`st_teacher::Teacher::pseudo_label_batch`]) whose
//!   virtual cost is amortized across the batch, and then each stream's
//!   session distills its own student on its own pseudo-label. Streams never
//!   share weights — isolation is structural.
//! * [`ServerPool`] spawns one worker thread per shard, places streams on
//!   shards per [`PlacementPolicy`] (least-loaded by default, static
//!   `id % shards` for reproducibility), and funnels each client's uplink
//!   into the owning shard's queue as [`st_net::StreamTagged`] traffic.
//!   Clients talk to the pool through [`StreamClient`], which implements the
//!   same [`st_net::ClientEndpoint`] surface as the single-stream transport,
//!   so the client-side state machine is byte-for-byte the one Algorithm 4
//!   uses.
//!
//! The pool does **not** trust clients to be well behaved. Three mechanisms
//! keep a hot stream from starving its shard-mates:
//!
//! * **Fair batching** — arriving key frames land in per-stream FIFO queues
//!   and are drained by deficit round-robin ([`FairScheduler`]): every
//!   co-scheduled teacher batch takes at most `quantum` jobs per stream per
//!   round, so batch slots are shared even when one stream has a deep
//!   backlog.
//! * **Admission control** — each stream may have at most `max_in_flight`
//!   key frames queued; excess arrivals are rejected immediately with
//!   [`st_net::ServerToClient::Throttle`], which the client answers by
//!   serving the frame with its local (slightly stale) student — the
//!   fallback the paper's partial/full modes make natural.
//! * **Adaptive co-scheduling** — the batching window grows and shrinks with
//!   the observed backlog ([`AdaptiveBatch`]) instead of sitting at the
//!   static `max_batch`, bounded above by it, and growth stops when the
//!   teacher's marginal batched-inference cost no longer amortizes. Every
//!   batched teacher forward is wall-clock timed ([`TeacherCostProfile`]),
//!   so once real data exists the growth decision runs on *measured*
//!   marginal cost and only falls back to the virtual latency model before
//!   that (or when forwards are too fast to time).
//!
//! Since PR 5 the pool is also **elastic**: placement is no longer final.
//!
//! * **Work stealing** — under [`PlacementPolicy::Rebalance`] an idle shard
//!   steals whole streams (session, frame cache, queued DRR turns and all)
//!   from the most-loaded shard through a shared `StealRegistry`. The victim
//!   hands the stream off between batches, so a migrating
//!   [`DistillSession`] is always quiescent; queued jobs keep their original
//!   arrival timestamps (wait accounting survives the move) and admission
//!   control keeps counting the stream's in-flight jobs at its new home.
//!   `StaticModulo` and `LeastLoaded` pools never migrate, so existing
//!   reproductions stay bit-deterministic.
//! * **Bounded frame memory** — each stream's pre-shared frames live in a
//!   [`FrameStore`], an LRU cache with a configurable per-stream byte budget
//!   ([`PoolConfig::frame_budget_bytes`]). When a key-frame job needs an
//!   evicted frame the job is parked (not dropped) and the client is asked
//!   to re-upload it ([`st_net::ServerToClient::NeedFrame`] →
//!   [`st_net::ClientToServer::ReShare`], answered through
//!   [`StreamClient::reshare`]), trading memory for uplink bandwidth.
//!
//! The pool reports [`PoolStats`]: per-shard queueing/batching/latency
//! counters plus per-stream key-frame totals, waits, throttles, drops,
//! steals, evictions, measured teacher wall time and final server-side
//! checkpoints, which the contention experiments compare against the
//! analytic [`st_sim::ContentionModel`]. [`PoolStats::snapshot`] condenses
//! all of it into the serializable [`crate::report::PoolReport`] operators
//! can export.

use crate::config::{PlacementPolicy, ShadowTutorConfig};
pub use crate::server::StreamServerStats;
use crate::server::{DistillSession, KeyFrameResponse};
use crate::steal::{FulfilOutcome, RequestReview, StealCore, MIN_STEAL_BACKLOG};
use crate::timer::TimerWheel;
use crate::Result;
use bytes::Bytes;
use st_net::message::MESSAGE_OVERHEAD_BYTES;
use st_net::transport::ClientEndpoint;
use st_net::{
    ClientToServer, DropReason, Payload, ServerToClient, StreamId, StreamTagged, TransportError,
    Wire,
};
use st_nn::delta::{CheckpointDigest, WeightDelta, WeightPayload};
use st_nn::snapshot::{SnapshotScope, WeightSnapshot};
use st_nn::store::{CheckpointRef, InternStats, SessionMemory, WeightStore};
use st_nn::student::StudentNet;
use st_teacher::Teacher;
use st_tensor::TensorError;
use st_video::Frame;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Lock a shared map, recovering the data if a worker panicked while
/// holding the lock: the pool's shared state must stay usable for the
/// surviving workers and the final join-side accounting, and every guard
/// in this file restores its invariants before dropping.
fn locked<T: ?Sized>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A deterministic fault-injection schedule for chaos testing the pool.
///
/// Faults are injected at well-defined points of the shard state machine —
/// a *kill* is a plain `panic!` raised inside
/// `ShardState::process_one_batch`, so a crash is reproducible from a
/// config value instead of requiring unsafe thread murder. Under the
/// thread-per-shard driver the kill unwinds while the worker holds its
/// hosted-state lock, so the plan also exercises the poisoned-lock
/// recovery path for free. `FaultPlan::none()` (the default) injects
/// nothing and costs one branch per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Tags the schedule so a chaos run is pinnable and reportable (CI pins
    /// it the way `ST_CHECK_SEED` pins the model checker); also folded into
    /// the injected panic message.
    pub seed: u64,
    /// The shard every fault in this plan targets. `None` disables the
    /// plan entirely.
    pub target: Option<usize>,
    /// Kill the target with a panic at the start of its first co-scheduled
    /// batch once it has completed this many teacher batches (`Some(0)` =
    /// the first non-empty batch). `None` never kills.
    pub kill_at_batch: Option<u64>,
    /// Tear the kill: fire *after* the batch's jobs were drained from the
    /// fair scheduler, so the in-flight batch is genuinely lost and the
    /// standby must drop-ack it with [`DropReason::ShardFailed`]. A clean
    /// kill (the default) fires before the drain; every queued job
    /// survives in the carcass and is re-queued by the adopter.
    pub torn_kill: bool,
    /// Defer the target's first N steal-mailbox drains by one pass each —
    /// a deterministic delivery-delay fault for migration-race testing.
    pub defer_mailbox: u32,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            target: None,
            kill_at_batch: None,
            torn_kill: false,
            defer_mailbox: 0,
        }
    }

    /// Kill `shard` at the start of its first non-empty batch after
    /// `at_batch` completed teacher batches.
    pub fn kill(seed: u64, shard: usize, at_batch: u64) -> Self {
        FaultPlan {
            seed,
            target: Some(shard),
            kill_at_batch: Some(at_batch),
            torn_kill: false,
            defer_mailbox: 0,
        }
    }

    /// Make the kill torn (fires after the batch drain; the in-flight jobs
    /// are lost and must be drop-acked by the standby).
    pub fn torn(mut self) -> Self {
        self.torn_kill = true;
        self
    }

    /// Whether this plan kills `shard` once it has run `batches` teacher
    /// batches.
    fn kill_due(&self, shard: usize, batches: usize) -> bool {
        self.target == Some(shard) && self.kill_at_batch.is_some_and(|at| batches as u64 >= at)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// How a shard materializes each stream's student weights from the shared
/// pretrained template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SessionWeights {
    /// Clone the template copy-on-write: parameter storage is shared until
    /// the optimizer (or a restore) first writes a stage, so the frozen
    /// front-end of a partial-distillation session costs its bytes once per
    /// shard, not once per stream. Bit-identical to a deep clone — the
    /// differential e2e suite asserts it.
    #[default]
    CopyOnWrite,
    /// Eagerly copy every tensor (the pre-PR-10 behaviour): full memory
    /// price per session. Kept as the A/B baseline for the differential
    /// tests and the `table13_weight_dedup` bench.
    DeepClone,
}

/// Configuration of a [`ServerPool`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolConfig {
    /// Number of shards (worker threads).
    pub shards: usize,
    /// Ceiling on key frames co-scheduled into one batched teacher forward.
    /// With `adaptive_batch` the live window starts at 1 and moves with the
    /// backlog, never exceeding this.
    pub max_batch: usize,
    /// How long a worker blocks waiting for traffic before re-checking for
    /// shutdown (also the bound on how stale a dead client can leave a shard).
    pub recv_timeout: Duration,
    /// How new streams are assigned to shards.
    pub placement: PlacementPolicy,
    /// Per-stream admission cap: at most this many key frames of one stream
    /// may be queued at its shard; excess arrivals are answered with
    /// [`ServerToClient::Throttle`] instead of being queued.
    pub max_in_flight: usize,
    /// Deficit-round-robin quantum: key frames one stream may contribute to
    /// a co-scheduled batch per scheduling round.
    pub quantum: usize,
    /// Adapt the co-scheduling window to the observed backlog instead of
    /// always draining up to `max_batch`.
    pub adaptive_batch: bool,
    /// Per-stream frame-cache byte budget. Every stream's pre-shared frames
    /// live in an LRU [`FrameStore`]; once a stream's resident frames exceed
    /// this many bytes the least-recently-used ones are evicted and
    /// re-requested on demand ([`ServerToClient::NeedFrame`]). `None` keeps
    /// every frame resident for the stream's lifetime (the pre-PR-5
    /// behaviour).
    pub frame_budget_bytes: Option<usize>,
    /// How often an idle worker re-checks the steal registry (and its
    /// migration mailbox) when work stealing is enabled
    /// ([`PlacementPolicy::Rebalance`]). Bounds how long an idle shard can
    /// overlook a drowning one; ignored by non-stealing pools, which block
    /// for the full `recv_timeout`.
    pub steal_poll: Duration,
    /// How long a worker must sit continuously idle (no queued jobs) before
    /// it posts a steal request. A shard merely between its own streams'
    /// arrivals should serve them itself; only a genuinely idle shard
    /// should pull another shard's streams over.
    pub steal_patience: Duration,
    /// Run the pool as an event-driven **reactor**: `Some(n)` hosts all
    /// `shards` shard state machines on a fixed set of `n` worker threads
    /// driven by readiness wakeups ([`st_net::Poller`]) and a hierarchical
    /// timer wheel ([`crate::timer::TimerWheel`]), decoupling shard count
    /// from thread count — `shards: 64` with `reactor_threads: Some(4)` is a
    /// valid configuration. `None` (the default) keeps the classic
    /// one-OS-thread-per-shard blocking loop. Both drivers run the *same*
    /// shard state machine, so serving behaviour is identical; what changes
    /// is how many mostly-idle streams one process can host.
    pub reactor_threads: Option<usize>,
    /// Replicate every stream's session checkpoint (student weights +
    /// distillation counters + scheduler deficit) to a shared
    /// content-addressed [`ReplicaStore`] after each accepted update, and
    /// arm warm-standby takeover: when a shard dies, its buddy shard
    /// (`(shard + 1) % shards`) adopts its streams from the replicas
    /// through the existing migration machinery. Requires
    /// [`PlacementPolicy::Rebalance`] (adoption *is* a migration) and at
    /// least two shards. Off by default: a worker panic then fails
    /// [`ServerPool::join`] with [`PoolError::WorkerFailed`].
    pub replication: bool,
    /// Deterministic fault-injection schedule ([`FaultPlan::none`] by
    /// default). Chaos tests kill a shard mid-run with this instead of
    /// aborting threads.
    pub fault_plan: FaultPlan,
    /// How sessions materialize their weights from the template
    /// ([`SessionWeights::CopyOnWrite`] by default; behaviour is identical
    /// either way, only resident memory differs).
    pub session_weights: SessionWeights,
    /// Negotiate delta-encoded weight updates with clients: `connect` sends
    /// [`ClientToServer::RegisterCaps`] announcing delta support, and the
    /// shard answers each distilled key frame with a sparse
    /// [`st_nn::delta::WeightDelta`] against the client's last-acked
    /// checkpoint (full snapshots remain the fallback whenever the stream is
    /// not known to be in sync — first update after a register, or after a
    /// failover restore). Off by default: updates ship as bare full
    /// snapshots of the trainable subset, exactly the seed wire format.
    pub delta_updates: bool,
}

impl PoolConfig {
    /// A small pool: two shards, up to four co-scheduled key frames, fair
    /// batching and admission control on.
    pub fn default_pool() -> Self {
        PoolConfig {
            shards: 2,
            max_batch: 4,
            recv_timeout: Duration::from_secs(30),
            placement: PlacementPolicy::default(),
            max_in_flight: 4,
            quantum: 1,
            adaptive_batch: true,
            frame_budget_bytes: None,
            steal_poll: Duration::from_millis(5),
            steal_patience: Duration::from_millis(25),
            reactor_threads: None,
            replication: false,
            fault_plan: FaultPlan::none(),
            session_weights: SessionWeights::CopyOnWrite,
            delta_updates: false,
        }
    }

    /// A pool with a given shard count and the default batching.
    pub fn with_shards(shards: usize) -> Self {
        PoolConfig {
            shards,
            ..Self::default_pool()
        }
    }

    /// A reactor pool: `shards` shard state machines hosted on one worker
    /// thread per available CPU (the many-mostly-idle-streams configuration).
    pub fn reactor(shards: usize) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        PoolConfig {
            shards,
            reactor_threads: Some(threads),
            ..Self::default_pool()
        }
    }

    /// Validate parameter consistency.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(TensorError::InvalidArgument(
                "pool needs at least one shard".into(),
            ));
        }
        if self.max_batch == 0 {
            return Err(TensorError::InvalidArgument(
                "max_batch must be at least 1".into(),
            ));
        }
        if self.max_in_flight == 0 {
            return Err(TensorError::InvalidArgument(
                "max_in_flight must be at least 1 (a stream must be able to queue a key frame)"
                    .into(),
            ));
        }
        if self.quantum == 0 {
            return Err(TensorError::InvalidArgument(
                "quantum must be at least 1".into(),
            ));
        }
        if self.frame_budget_bytes == Some(0) {
            return Err(TensorError::InvalidArgument(
                "frame_budget_bytes must be positive (use None for unbounded)".into(),
            ));
        }
        if self.steal_poll.is_zero() {
            return Err(TensorError::InvalidArgument(
                "steal_poll must be positive".into(),
            ));
        }
        if self.reactor_threads == Some(0) {
            return Err(TensorError::InvalidArgument(
                "reactor_threads must be at least 1 (use None for thread-per-shard)".into(),
            ));
        }
        if let Some(target) = self.fault_plan.target {
            if target >= self.shards {
                return Err(TensorError::InvalidArgument(format!(
                    "fault_plan targets shard {target} but the pool has {} shards",
                    self.shards
                )));
            }
        }
        if self.replication {
            if self.shards < 2 {
                return Err(TensorError::InvalidArgument(
                    "replication needs at least two shards (a shard cannot be its own standby)"
                        .into(),
                ));
            }
            if !self.stealing() {
                return Err(TensorError::InvalidArgument(
                    "replication requires PlacementPolicy::Rebalance (warm-standby adoption \
                     reuses the stream-migration machinery)"
                        .into(),
                ));
            }
        }
        Ok(())
    }

    /// The shard a stream id maps to under static-modulo placement.
    pub fn shard_of(&self, stream_id: StreamId) -> usize {
        (stream_id % self.shards as u64) as usize
    }

    /// Whether this pool migrates streams between shards at runtime.
    pub fn stealing(&self) -> bool {
        matches!(self.placement, PlacementPolicy::Rebalance)
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self::default_pool()
    }
}

/// Why [`ServerPool::join`] failed.
///
/// Before this type existed, a worker panic surfaced as
/// `TensorError::InvalidArgument("shard worker panicked")` — the panic
/// payload, the shard index, everything an operator needs was thrown away.
/// `WorkerFailed` carries both; `Tensor` wraps the ordinary serving-error
/// channel. The lossy [`From<PoolError> for TensorError`] impl keeps
/// `pool.join()?` compiling in `TensorError`-returning contexts.
#[derive(Debug, Clone, PartialEq)]
pub enum PoolError {
    /// A shard worker died (panicked) and no warm standby adopted its
    /// streams — either replication was off, or the standby itself was
    /// gone. `panic_msg` is the worker's actual panic payload.
    WorkerFailed {
        /// The shard whose worker died.
        shard: usize,
        /// The panic payload (downcast to a string where possible).
        panic_msg: String,
    },
    /// A serving error surfaced through the normal `Result` channel.
    Tensor(TensorError),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerFailed { shard, panic_msg } => {
                write!(f, "shard {shard} worker panicked: {panic_msg}")
            }
            PoolError::Tensor(err) => err.fmt(f),
        }
    }
}

impl std::error::Error for PoolError {}

impl From<TensorError> for PoolError {
    fn from(err: TensorError) -> Self {
        PoolError::Tensor(err)
    }
}

impl From<PoolError> for TensorError {
    fn from(err: PoolError) -> Self {
        match err {
            PoolError::Tensor(err) => err,
            other => TensorError::InvalidArgument(other.to_string()),
        }
    }
}

/// Queueing/batching/latency counters of one shard worker.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShardStats {
    /// Key frames processed by this shard.
    pub key_frames: usize,
    /// Total distillation steps across the shard's streams.
    pub distill_steps: usize,
    /// Batched teacher forward passes taken.
    pub teacher_batches: usize,
    /// Largest co-scheduled batch observed.
    pub max_batch_observed: usize,
    /// Total wall-clock time key frames spent queued before processing began.
    pub queue_wait_total: Duration,
    /// Largest single queue wait observed.
    pub queue_wait_max: Duration,
    /// Wall-clock time the worker spent actively processing batches.
    pub busy_time: Duration,
    /// Total stream-tagged uplink bytes this shard received.
    pub uplink_bytes: usize,
    /// Sum of virtual `server_time` charged to responses (teacher share +
    /// distillation steps).
    pub virtual_server_time: f64,
    /// Virtual teacher time saved by batching, versus labelling every key
    /// frame with a solo forward pass.
    pub teacher_time_saved: f64,
    /// Key-frame jobs that could not be served (unknown stream or frame,
    /// e.g. a key frame arriving after its stream's `Shutdown`). Each one
    /// was answered with [`ServerToClient::Dropped`] when a downlink existed.
    pub dropped_jobs: usize,
    /// Key frames rejected by per-stream admission control.
    pub throttled: usize,
    /// `Register` messages with no connect-time registry entry (register
    /// without connect, or a duplicate register racing a finished stream).
    pub unknown_registers: usize,
    /// Largest co-scheduling window the adaptive batcher reached.
    pub batch_limit_peak: usize,
    /// Measured wall-clock time spent inside batched teacher forwards
    /// ([`st_teacher::Teacher::pseudo_label_batch`]). Unlike
    /// [`ShardStats::virtual_server_time`], this is real compute, so
    /// `teacher_wall_time / key_frames` is the *measured* amortized
    /// per-frame teacher cost batching is supposed to drive down.
    pub teacher_wall_time: Duration,
    /// Frames evicted from per-stream [`FrameStore`]s to stay inside the
    /// configured byte budget. Counted at the shard where the stream
    /// *finished* (a migrated stream carries its cache — and its counters —
    /// with it).
    pub frame_evictions: usize,
    /// Largest resident-byte watermark any of this shard's frame caches
    /// reached. Never exceeds [`PoolConfig::frame_budget_bytes`] when a
    /// budget is set — that is the invariant the budget buys.
    pub frame_bytes_peak: usize,
    /// Key-frame jobs that found their frame evicted and were parked while
    /// the client was asked to re-upload it ([`ServerToClient::NeedFrame`]).
    pub need_frame_requests: usize,
    /// Frames restored by a client [`st_net::ClientToServer::ReShare`].
    pub reshared_frames: usize,
    /// Streams this shard stole from a busier shard (work stealing,
    /// [`crate::config::PlacementPolicy::Rebalance`] only).
    pub streams_stolen_in: usize,
    /// Streams this shard handed off to an idle thief.
    pub streams_donated: usize,
    /// Uplink messages that arrived here for a stream that had already
    /// migrated and were forwarded to the stream's current shard.
    pub forwarded_messages: usize,
    /// Handler events dispatched on this shard: uplink envelopes, adopted
    /// migrations and timer fires. The reactor's measure of loop work (the
    /// legacy driver counts envelopes and migrations the same way, so the
    /// two modes are comparable).
    pub events_dispatched: usize,
    /// Timer-wheel fires dispatched to this shard (reactor only: steal
    /// ticks and NeedFrame retries; 0 under the thread-per-shard driver).
    pub timer_fires: usize,
    /// Readiness wakeups that dispatched a pass on this shard (reactor
    /// only; 0 under the thread-per-shard driver, which blocks in
    /// `recv_timeout` instead).
    pub poll_wakeups: usize,
    /// Peak count of *idle* streams — registered sessions with no queued
    /// key frame — observed on this shard. The reactor's reason to exist:
    /// this many streams were being hosted without deserving a thread.
    pub idle_streams: usize,
    /// Shard deaths this shard recovered from as the warm standby: each
    /// takeover adopted the dead buddy's streams from their replicated
    /// checkpoints.
    pub failovers: usize,
    /// Streams this shard adopted from a dead buddy during takeover
    /// (counted separately from [`ShardStats::streams_stolen_in`], which is
    /// voluntary migration).
    pub streams_adopted: usize,
    /// Key-frame jobs that died with the shard and could not be salvaged
    /// (a torn kill lost the batch in flight). Each was drop-acked with
    /// [`DropReason::ShardFailed`] by the adopter — never silently lost.
    pub frames_lost_on_failover: usize,
    /// Downlink sends that found the client side already gone. The ack (or
    /// update) was composed but undeliverable; counting it keeps the
    /// failover accounting reconcilable (`sent + lost_acks` covers every
    /// decision).
    pub lost_acks: usize,
    /// Bytes of *new* checkpoint chunks this shard published to the replica
    /// store (content the store had not seen).
    pub replica_bytes_published: usize,
    /// Bytes of checkpoint chunks deduplicated by content hash — a frozen
    /// partial-distillation stage re-encodes identically update after
    /// update, so its chunks are shared, not recopied.
    pub replica_bytes_shared: usize,
    /// Bytes of session parameter/buffer storage still *shared* with the
    /// shard's pretrained template (copy-on-write stages never written),
    /// sampled when the shard finished. Deep-cloned sessions report 0 here.
    pub session_bytes_shared: usize,
    /// Bytes of session parameter/buffer storage privately materialized
    /// (stages the optimizer or a restore wrote), sampled at finish.
    pub session_bytes_private: usize,
    /// Peak of [`ShardStats::session_bytes_private`] over the shard's life —
    /// the high-water marginal memory cost of this shard's streams.
    pub session_bytes_private_peak: usize,
    /// Weight updates shipped delta-encoded (changed chunks only).
    pub delta_updates_sent: usize,
    /// Weight updates shipped as full snapshots on a delta-negotiated
    /// stream — the first update after a (re-)register or failover restore.
    pub full_updates_sent: usize,
    /// Actual update payload bytes sent on delta-negotiated streams (delta
    /// or full-fallback encodings, as shipped).
    pub update_bytes_sent: usize,
    /// Bytes the same updates would have cost as full snapshots — the
    /// baseline the delta encoding is measured against. For non-negotiated
    /// streams both counters advance identically.
    pub update_bytes_full_equiv: usize,
}

impl ShardStats {
    /// Mean co-scheduled batch size (0.0 when the shard never processed a
    /// batch; at least 1.0 otherwise).
    pub fn mean_batch_size(&self) -> f64 {
        if self.teacher_batches == 0 {
            0.0
        } else {
            self.key_frames as f64 / self.teacher_batches as f64
        }
    }

    /// Mean wall-clock queue wait per key frame in seconds.
    pub fn mean_queue_wait_secs(&self) -> f64 {
        if self.key_frames == 0 {
            0.0
        } else {
            self.queue_wait_total.as_secs_f64() / self.key_frames as f64
        }
    }

    /// Measured amortized teacher cost per key frame in seconds (wall clock,
    /// not the virtual model; 0.0 before any key frame was served).
    pub fn mean_teacher_wall_secs(&self) -> f64 {
        if self.key_frames == 0 {
            0.0
        } else {
            self.teacher_wall_time.as_secs_f64() / self.key_frames as f64
        }
    }
}

/// Aggregate statistics of a pool run, collected at [`ServerPool::join`].
#[derive(Debug)]
pub struct PoolStats {
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Per-stream counters (including per-stream queue waits, throttles and
    /// drops).
    pub streams: HashMap<StreamId, StreamServerStats>,
    /// Final full server-side checkpoint of every finished stream.
    pub final_checkpoints: HashMap<StreamId, WeightSnapshot>,
    /// Per-shard wall-clock queue waits, one sample per serviced key frame
    /// in seconds, in service order. Feeds the p50/p99 columns of
    /// [`PoolStats::snapshot`]; one f64 per key frame, so the memory cost is
    /// negligible next to the frames themselves.
    pub wait_samples: Vec<Vec<f64>>,
    /// Measured client→server wire bytes: the framed
    /// ([`st_net::wire::frame_len`]) size of every uplink envelope sent to
    /// the pool, plus re-shared frame content.
    pub wire_bytes_up: usize,
    /// Measured server→client wire bytes (framed downlink messages).
    pub wire_bytes_down: usize,
    /// Wall-clock takeover latency samples, one per shard failover, in
    /// seconds: death (the panic was recorded) → the standby finished
    /// adopting every stream. Feeds
    /// [`PoolStats::takeover_latency_p99_secs`].
    pub takeover_samples: Vec<f64>,
    /// Bytes resident in the pool's content-addressed [`WeightStore`] at
    /// join time (template chunks + any still-live replica chunks, each
    /// distinct chunk counted once).
    pub store_resident_bytes: usize,
    /// Distinct chunks resident in the weight store at join time.
    pub store_chunk_count: usize,
}

impl PoolStats {
    /// Key frames processed across all shards.
    pub fn total_key_frames(&self) -> usize {
        self.shards.iter().map(|s| s.key_frames).sum()
    }

    /// Distillation steps across all shards.
    pub fn total_distill_steps(&self) -> usize {
        self.shards.iter().map(|s| s.distill_steps).sum()
    }

    /// Key-frame jobs dropped (and acked as such) across all shards.
    pub fn dropped_jobs(&self) -> usize {
        self.shards.iter().map(|s| s.dropped_jobs).sum()
    }

    /// Key frames rejected by admission control across all shards.
    pub fn throttled(&self) -> usize {
        self.shards.iter().map(|s| s.throttled).sum()
    }

    /// Mean co-scheduled batch size across shards (0.0 when no batch was
    /// ever processed; at least 1.0 otherwise).
    pub fn mean_batch_size(&self) -> f64 {
        let batches: usize = self.shards.iter().map(|s| s.teacher_batches).sum();
        if batches == 0 {
            0.0
        } else {
            self.total_key_frames() as f64 / batches as f64
        }
    }

    /// Mean wall-clock queue wait per key frame in seconds.
    pub fn mean_queue_wait_secs(&self) -> f64 {
        let total: f64 = self
            .shards
            .iter()
            .map(|s| s.queue_wait_total.as_secs_f64())
            .sum();
        let k = self.total_key_frames();
        if k == 0 {
            0.0
        } else {
            total / k as f64
        }
    }

    /// Virtual teacher time saved by batching across all shards.
    pub fn teacher_time_saved(&self) -> f64 {
        self.shards.iter().map(|s| s.teacher_time_saved).sum()
    }

    /// Measured wall-clock teacher time across all shards.
    pub fn teacher_wall_time(&self) -> Duration {
        self.shards.iter().map(|s| s.teacher_wall_time).sum()
    }

    /// Measured amortized teacher cost per key frame in seconds across the
    /// pool (wall clock, not the virtual model).
    pub fn mean_teacher_wall_secs(&self) -> f64 {
        let k = self.total_key_frames();
        if k == 0 {
            0.0
        } else {
            self.teacher_wall_time().as_secs_f64() / k as f64
        }
    }

    /// Streams migrated between shards by work stealing across the run.
    pub fn streams_stolen(&self) -> usize {
        self.shards.iter().map(|s| s.streams_stolen_in).sum()
    }

    /// Frames evicted from per-stream caches across the run.
    pub fn frame_evictions(&self) -> usize {
        self.shards.iter().map(|s| s.frame_evictions).sum()
    }

    /// Frames restored by client re-shares across the run.
    pub fn reshared_frames(&self) -> usize {
        self.shards.iter().map(|s| s.reshared_frames).sum()
    }

    /// Largest per-stream frame-cache watermark observed anywhere in the
    /// pool. With [`PoolConfig::frame_budget_bytes`] set, this never exceeds
    /// the budget.
    pub fn frame_bytes_peak(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.frame_bytes_peak)
            .max()
            .unwrap_or(0)
    }

    /// The `p`-th percentile wall-clock queue wait across every serviced key
    /// frame in the pool, in seconds (0.0 when nothing was served).
    pub fn percentile_queue_wait_secs(&self, p: f64) -> f64 {
        let all: Vec<f64> = self.wait_samples.iter().flatten().copied().collect();
        crate::loadgen::percentile(&all, p)
    }

    /// Shard failovers recovered across the run.
    pub fn failovers(&self) -> usize {
        self.shards.iter().map(|s| s.failovers).sum()
    }

    /// Streams adopted from dead shards across the run.
    pub fn streams_adopted(&self) -> usize {
        self.shards.iter().map(|s| s.streams_adopted).sum()
    }

    /// Key-frame jobs lost to shard deaths (each drop-acked with
    /// [`DropReason::ShardFailed`]).
    pub fn frames_lost_on_failover(&self) -> usize {
        self.shards.iter().map(|s| s.frames_lost_on_failover).sum()
    }

    /// Bytes of new checkpoint chunks published to the replica store.
    pub fn replica_bytes_published(&self) -> usize {
        self.shards.iter().map(|s| s.replica_bytes_published).sum()
    }

    /// Bytes of checkpoint chunks deduplicated by content hash.
    pub fn replica_bytes_shared(&self) -> usize {
        self.shards.iter().map(|s| s.replica_bytes_shared).sum()
    }

    /// Session storage shared with shard templates (copy-on-write stages
    /// never written), summed over the last per-shard samples.
    pub fn session_bytes_shared(&self) -> usize {
        self.shards.iter().map(|s| s.session_bytes_shared).sum()
    }

    /// Session storage privately materialized by optimizer writes, summed
    /// over the last per-shard samples.
    pub fn session_bytes_private(&self) -> usize {
        self.shards.iter().map(|s| s.session_bytes_private).sum()
    }

    /// Peak private session storage observed on any single shard.
    pub fn session_bytes_private_peak(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.session_bytes_private_peak)
            .max()
            .unwrap_or(0)
    }

    /// Weight updates shipped delta-encoded across the pool.
    pub fn delta_updates_sent(&self) -> usize {
        self.shards.iter().map(|s| s.delta_updates_sent).sum()
    }

    /// Weight updates shipped as full snapshots on delta-negotiated streams.
    pub fn full_updates_sent(&self) -> usize {
        self.shards.iter().map(|s| s.full_updates_sent).sum()
    }

    /// Update payload bytes actually sent on delta-negotiated streams.
    pub fn update_bytes_sent(&self) -> usize {
        self.shards.iter().map(|s| s.update_bytes_sent).sum()
    }

    /// What those same updates would have cost as full snapshots.
    pub fn update_bytes_full_equiv(&self) -> usize {
        self.shards.iter().map(|s| s.update_bytes_full_equiv).sum()
    }

    /// The p99 wall-clock takeover latency in seconds (0.0 when no shard
    /// died): death → the standby finished adopting every stream.
    pub fn takeover_latency_p99_secs(&self) -> f64 {
        crate::loadgen::percentile(&self.takeover_samples, 99.0)
    }

    /// Condense the run into the serializable operator report
    /// ([`crate::report::PoolReport`]): per-shard load, steals, evictions,
    /// teacher wall time and p50/p99 queue waits, plus pool totals. This is
    /// what `reproduce --json` and the `table11_steal` bench export.
    pub fn snapshot(&self) -> crate::report::PoolReport {
        use crate::loadgen::percentile;
        use crate::report::{PoolReport, ShardReport};
        let empty: Vec<f64> = Vec::new();
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(index, s)| {
                let waits = self.wait_samples.get(index).unwrap_or(&empty);
                ShardReport {
                    shard: index,
                    key_frames: s.key_frames,
                    teacher_batches: s.teacher_batches,
                    mean_batch: s.mean_batch_size(),
                    queue_p50_ms: 1e3 * percentile(waits, 50.0),
                    queue_p99_ms: 1e3 * percentile(waits, 99.0),
                    busy_secs: s.busy_time.as_secs_f64(),
                    teacher_wall_secs: s.teacher_wall_time.as_secs_f64(),
                    throttled: s.throttled,
                    dropped: s.dropped_jobs,
                    frame_evictions: s.frame_evictions,
                    need_frame_requests: s.need_frame_requests,
                    reshared_frames: s.reshared_frames,
                    frame_bytes_peak: s.frame_bytes_peak,
                    streams_stolen_in: s.streams_stolen_in,
                    streams_donated: s.streams_donated,
                    forwarded_messages: s.forwarded_messages,
                    events_dispatched: s.events_dispatched,
                    timer_fires: s.timer_fires,
                    poll_wakeups: s.poll_wakeups,
                    idle_streams: s.idle_streams,
                    failovers: s.failovers,
                    streams_adopted: s.streams_adopted,
                    frames_lost_on_failover: s.frames_lost_on_failover,
                }
            })
            .collect();
        PoolReport {
            shards,
            total_key_frames: self.total_key_frames(),
            streams_stolen: self.streams_stolen(),
            frame_evictions: self.frame_evictions(),
            reshared_frames: self.reshared_frames(),
            dropped_jobs: self.dropped_jobs(),
            throttled: self.throttled(),
            frame_bytes_peak: self.frame_bytes_peak(),
            queue_p50_ms: 1e3 * self.percentile_queue_wait_secs(50.0),
            queue_p99_ms: 1e3 * self.percentile_queue_wait_secs(99.0),
            teacher_wall_secs: self.teacher_wall_time().as_secs_f64(),
            events_dispatched: self.shards.iter().map(|s| s.events_dispatched).sum(),
            timer_fires: self.shards.iter().map(|s| s.timer_fires).sum(),
            poll_wakeups: self.shards.iter().map(|s| s.poll_wakeups).sum(),
            idle_streams: self
                .shards
                .iter()
                .map(|s| s.idle_streams)
                .max()
                .unwrap_or(0),
            wire_bytes_up: self.wire_bytes_up,
            wire_bytes_down: self.wire_bytes_down,
            failovers: self.failovers(),
            streams_adopted: self.streams_adopted(),
            frames_lost_on_failover: self.frames_lost_on_failover(),
            takeover_latency_p99_ms: 1e3 * self.takeover_latency_p99_secs(),
            replica_bytes_published: self.replica_bytes_published(),
            replica_bytes_shared: self.replica_bytes_shared(),
            streams: self.streams.len(),
            session_bytes_shared: self.session_bytes_shared(),
            session_bytes_private: self.session_bytes_private(),
            session_bytes_private_peak: self.session_bytes_private_peak(),
            store_resident_bytes: self.store_resident_bytes,
            store_chunk_count: self.store_chunk_count,
            delta_updates_sent: self.delta_updates_sent(),
            full_updates_sent: self.full_updates_sent(),
            update_bytes_sent: self.update_bytes_sent(),
            update_bytes_full_equiv: self.update_bytes_full_equiv(),
        }
    }
}

/// An LRU cache of one stream's pre-shared frame content with a byte budget.
///
/// The key-frame message carries encoded pixels for realistic wire sizes;
/// the in-process shard resolves content by index, as the single-stream live
/// runtime does. Before PR 5 that content lived in a plain map for the
/// stream's lifetime; the store bounds it: once resident frames exceed the
/// budget, the least-recently-used ones are evicted (the index stays known,
/// so the job is *parked* and the content re-requested via
/// [`ServerToClient::NeedFrame`] instead of the frame being refused as
/// unknown). A `None` budget keeps everything resident.
///
/// Invariant: after every mutation, `resident_bytes() <= budget`. A frame
/// larger than the whole budget is never admitted — it is counted evicted
/// immediately, and a job needing it is answered with a definitive
/// [`ServerToClient::Dropped`] after one recovery attempt (admission can
/// never succeed, so retrying would loop forever). Size the budget above
/// the largest single frame.
#[derive(Debug, Clone)]
pub struct FrameStore {
    /// Frame index → content; `None` marks an index that was shared but is
    /// currently evicted (distinguishing "evicted" from "never shared").
    entries: HashMap<usize, Option<Frame>>,
    /// Resident indices, least-recently-used first.
    lru: VecDeque<usize>,
    budget: Option<usize>,
    resident_bytes: usize,
    peak_bytes: usize,
    evictions: usize,
}

impl FrameStore {
    /// An empty store with the given byte budget (`None` = unbounded).
    pub fn new(budget: Option<usize>) -> Self {
        FrameStore {
            entries: HashMap::new(),
            lru: VecDeque::new(),
            budget,
            resident_bytes: 0,
            peak_bytes: 0,
            evictions: 0,
        }
    }

    /// A store pre-filled with a stream's frames in index order (so under a
    /// tight budget the *earliest* frames are the first evicted — they are
    /// also the first the stream will ask the server to serve, which is what
    /// the eviction/re-share round-trip tests exercise).
    pub fn from_frames(frames: &[Frame], budget: Option<usize>) -> Self {
        let mut store = Self::new(budget);
        let mut sorted: Vec<&Frame> = frames.iter().collect();
        sorted.sort_by_key(|f| f.index);
        for frame in sorted {
            store.insert(frame.clone());
        }
        store
    }

    /// A store that *knows* the given indices but holds no content — the
    /// warm-standby restore path. Checkpoint replication ships the set of
    /// shared frame indices, not the pixels (frames are recoverable from
    /// the client for free), so a takeover rebuilds the cache as
    /// known-but-evicted: the first job touching each index parks and asks
    /// the client to re-upload it ([`ServerToClient::NeedFrame`] →
    /// [`st_net::ClientToServer::ReShare`]), exactly the existing
    /// eviction-recovery round trip.
    pub fn from_known_indices(indices: &[usize], budget: Option<usize>) -> Self {
        let mut store = Self::new(budget);
        for &index in indices {
            store.entries.insert(index, None);
        }
        store
    }

    /// Every index this store knows (resident or evicted), ascending — the
    /// set checkpoint replication preserves across a shard death.
    pub fn known_indices(&self) -> Vec<usize> {
        let mut indices: Vec<usize> = self.entries.keys().copied().collect();
        indices.sort_unstable();
        indices
    }

    /// Approximate resident cost of one frame: the f32 image tensor plus the
    /// per-pixel ground-truth indices — what the server actually holds in
    /// memory (not the 8-bit wire encoding).
    pub fn frame_cost(frame: &Frame) -> usize {
        std::mem::size_of_val(frame.image.data()) + std::mem::size_of_val(&frame.ground_truth[..])
    }

    /// Insert (or restore) a frame, evicting least-recently-used residents
    /// until the budget holds. A frame whose own cost exceeds the budget is
    /// recorded as known-but-evicted rather than admitted.
    pub fn insert(&mut self, frame: Frame) {
        let index = frame.index;
        let cost = Self::frame_cost(&frame);
        if self.resident(index) {
            // Re-inserting a resident frame just refreshes recency.
            self.touch(index);
            return;
        }
        if let Some(budget) = self.budget {
            if cost > budget {
                self.entries.insert(index, None);
                self.evictions += 1;
                return;
            }
            while self.resident_bytes + cost > budget {
                let Some(victim) = self.lru.pop_front() else {
                    break;
                };
                if let Some(slot) = self.entries.get_mut(&victim) {
                    if let Some(evicted) = slot.take() {
                        self.resident_bytes -= Self::frame_cost(&evicted);
                        self.evictions += 1;
                    }
                }
            }
        }
        self.entries.insert(index, Some(frame));
        self.lru.push_back(index);
        self.resident_bytes += cost;
        self.peak_bytes = self.peak_bytes.max(self.resident_bytes);
    }

    /// Whether this index was ever shared (resident or evicted).
    pub fn knows(&self, index: usize) -> bool {
        self.entries.contains_key(&index)
    }

    /// Whether this index is currently resident.
    pub fn resident(&self, index: usize) -> bool {
        self.entries.get(&index).is_some_and(|e| e.is_some())
    }

    /// Mark an index as most-recently-used. Returns whether it is resident.
    pub fn touch(&mut self, index: usize) -> bool {
        if !self.resident(index) {
            return false;
        }
        self.lru.retain(|i| *i != index);
        self.lru.push_back(index);
        true
    }

    /// The resident content of an index (does not affect recency).
    pub fn peek(&self, index: usize) -> Option<&Frame> {
        self.entries.get(&index).and_then(|e| e.as_ref())
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Largest resident-byte watermark reached so far.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Frames evicted so far (including oversized frames never admitted).
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// Number of resident frames.
    pub fn resident_count(&self) -> usize {
        self.lru.len()
    }
}

/// One stream's replicated session checkpoint: a refcounted
/// [`CheckpointRef`] into the pool's shared [`WeightStore`], plus the
/// non-weight state a takeover restores (distillation counters, the
/// stream's unspent DRR deficit, the set of frame indices the client had
/// shared, and whether the client negotiated delta updates).
struct SessionReplica {
    checkpoint: CheckpointRef,
    key_frames: usize,
    distill_steps: usize,
    /// Unspent deficit-round-robin credit at publication time.
    deficit: usize,
    /// Frame indices the stream had shared. Only the index set replicates —
    /// the pixels are recoverable from the client via the existing
    /// `NeedFrame`/`ReShare` round trip, so replicating them would buy
    /// nothing but bandwidth.
    known_frames: Vec<usize>,
    /// The stream's delta-update negotiation survives failover: the adopter
    /// must keep speaking the envelope protocol (with a full-snapshot
    /// re-sync) rather than silently reverting to bare snapshots.
    supports_delta: bool,
}

/// A replica materialized for takeover: checkpoint resolved from the store
/// and its references released.
struct RestoredReplica {
    snapshot: WeightSnapshot,
    key_frames: usize,
    distill_steps: usize,
    deficit: usize,
    known_frames: Vec<usize>,
    supports_delta: bool,
}

/// The pool's shared checkpoint-replica index over the content-addressed
/// [`WeightStore`].
///
/// After every accepted update a shard publishes the stream's full session
/// checkpoint here, keyed by owning shard; when a shard dies, its buddy
/// adopts the dead shard's slot and rebuilds every stream from it. Since
/// PR 10 the replica store holds [`CheckpointRef`]s — replication publishes
/// *references* into the same store that also interns the pretrained
/// template, so the frozen front-end a partial-distillation session never
/// touches is resident **once** across the template and every stream's
/// replica. `ShardStats::replica_bytes_published` versus
/// `ShardStats::replica_bytes_shared` measures exactly that saving.
pub struct ReplicaStore {
    /// `slots[owner]` = replicas of the streams shard `owner` serves.
    slots: Vec<Mutex<HashMap<StreamId, SessionReplica>>>,
    /// The shared chunk store (also holds the interned template).
    store: Arc<WeightStore>,
}

impl ReplicaStore {
    fn new(shards: usize, store: Arc<WeightStore>) -> Self {
        ReplicaStore {
            slots: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            store,
        }
    }

    /// Publish one stream's checkpoint under `owner`, replacing any prior
    /// replica of the stream. Returns the [`InternStats`] byte split: bytes
    /// the store had to materialize versus bytes it deduplicated (against
    /// the template, other streams, or the stream's own prior replica).
    #[allow(clippy::too_many_arguments)]
    fn publish(
        &self,
        owner: usize,
        stream_id: StreamId,
        checkpoint: &WeightSnapshot,
        key_frames: usize,
        distill_steps: usize,
        deficit: usize,
        known_frames: Vec<usize>,
        supports_delta: bool,
    ) -> InternStats {
        let (checkpoint, stats) = self.store.intern(checkpoint);
        let previous = locked(&self.slots[owner]).insert(
            stream_id,
            SessionReplica {
                checkpoint,
                key_frames,
                distill_steps,
                deficit,
                known_frames,
                supports_delta,
            },
        );
        if let Some(previous) = previous {
            self.store.release(previous.checkpoint);
        }
        stats
    }

    /// Drop one stream's replica (the stream retired normally; there is
    /// nothing left to fail over).
    fn remove(&self, owner: usize, stream_id: StreamId) {
        if let Some(replica) = locked(&self.slots[owner]).remove(&stream_id) {
            self.store.release(replica.checkpoint);
        }
    }

    /// Re-home a replica after a voluntary migration. Store references are
    /// untouched — the checkpoint content did not change, only its owner.
    fn move_owner(&self, stream_id: StreamId, from: usize, to: usize) {
        if from == to {
            return;
        }
        if let Some(replica) = locked(&self.slots[from]).remove(&stream_id) {
            locked(&self.slots[to]).insert(stream_id, replica);
        }
    }

    /// Take every replica a dead shard owned, materialized for restore
    /// (references released) and sorted by stream id so adoption order is
    /// deterministic.
    fn take_owner(&self, owner: usize) -> Vec<(StreamId, RestoredReplica)> {
        let mut replicas: Vec<(StreamId, SessionReplica)> = {
            let mut slot = locked(&self.slots[owner]);
            slot.drain().collect()
        };
        replicas.sort_by_key(|(id, _)| *id);
        replicas
            .into_iter()
            .map(|(stream_id, replica)| {
                let snapshot = match self.store.resolve_release(replica.checkpoint) {
                    Ok(snapshot) => snapshot,
                    // The replica held a reference since publish, so every
                    // chunk is pinned; a miss is corrupted store accounting,
                    // which no takeover should paper over.
                    Err(err) => unreachable!("replica checkpoint unresolvable: {err:?}"),
                };
                (
                    stream_id,
                    RestoredReplica {
                        snapshot,
                        key_frames: replica.key_frames,
                        distill_steps: replica.distill_steps,
                        deficit: replica.deficit,
                        known_frames: replica.known_frames,
                        supports_delta: replica.supports_delta,
                    },
                )
            })
            .collect()
    }
}

/// Server-side delta-negotiation state of one stream: the digest of the
/// client's last-acked checkpoint (patched with every update actually
/// sent) and whether the stream is known to be in sync. An unsynced stream
/// — fresh registration pending its first update, or a failover-restored
/// session whose adopter cannot prove what the client last applied — gets
/// a full-snapshot envelope, which re-synchronizes it.
struct DeltaTrack {
    digest: CheckpointDigest,
    synced: bool,
}

/// One stream's registration state inside a shard.
struct StreamEntry {
    session: DistillSession,
    /// The stream's pre-shared frame content, LRU-bounded.
    frames: FrameStore,
    /// Delta-update negotiation state; `None` on legacy bare-snapshot
    /// streams. Travels with the stream through migration and is rebuilt
    /// (unsynced) after a failover restore.
    delta: Option<DeltaTrack>,
}

/// A key-frame job drained from the shard queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardJob {
    /// The stream the key frame belongs to.
    pub stream_id: StreamId,
    /// Index of the frame in that stream.
    pub frame_index: usize,
}

/// A queued key-frame job with its arrival timestamp, as handed out by the
/// [`FairScheduler`].
#[derive(Debug, Clone, Copy)]
pub struct ScheduledJob {
    /// The job itself.
    pub job: ShardJob,
    /// When the job entered the shard queue (for wait accounting).
    pub enqueued_at: Instant,
}

/// Per-stream FIFO queues drained by deficit round-robin.
///
/// Every stream with queued key frames sits in a ring; each scheduling round
/// grants a stream `quantum` units of deficit and pops at most that many of
/// its jobs into the batch. A hot stream with a deep backlog therefore gets
/// the same per-round slot count as everyone else, and any queued stream is
/// served within `ceil(streams / max_batch)` batches — no starvation.
///
/// Invariant: `ring` contains exactly the streams with non-empty queues
/// (maintained by `push`/`next_batch`/`remove_stream`; the structure is
/// driven by one worker thread).
pub struct FairScheduler {
    queues: HashMap<StreamId, VecDeque<ScheduledJob>>,
    ring: VecDeque<StreamId>,
    deficits: HashMap<StreamId, usize>,
    quantum: usize,
    queued: usize,
}

impl FairScheduler {
    /// A scheduler granting `quantum` jobs per stream per round (clamped to
    /// at least 1).
    pub fn new(quantum: usize) -> Self {
        FairScheduler {
            queues: HashMap::new(),
            ring: VecDeque::new(),
            deficits: HashMap::new(),
            quantum: quantum.max(1),
            queued: 0,
        }
    }

    /// Queue a key-frame job for its stream.
    pub fn push(&mut self, stream_id: StreamId, frame_index: usize, enqueued_at: Instant) {
        let queue = self.queues.entry(stream_id).or_default();
        if queue.is_empty() {
            self.ring.push_back(stream_id);
        }
        queue.push_back(ScheduledJob {
            job: ShardJob {
                stream_id,
                frame_index,
            },
            enqueued_at,
        });
        self.queued += 1;
    }

    /// Jobs currently queued for one stream (the admission-control signal).
    pub fn queued_for(&self, stream_id: StreamId) -> usize {
        self.queues.get(&stream_id).map_or(0, |q| q.len())
    }

    /// Total queued jobs across all streams.
    pub fn len(&self) -> usize {
        self.queued
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Streams that currently have at least one queued job.
    pub fn active_streams(&self) -> usize {
        self.queues.len()
    }

    /// The stream with the deepest queue (ties toward the smallest id, so
    /// the answer is deterministic), with its depth. This is the stream a
    /// work-stealing victim donates: moving the deepest backlog relieves the
    /// shard fastest and gives the hot stream a worker of its own.
    pub fn busiest_stream(&self) -> Option<(StreamId, usize)> {
        self.queues
            .iter()
            .map(|(id, q)| (*id, q.len()))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }

    /// Pop the next co-scheduled batch: at most `max_batch` jobs, drained
    /// round-robin with per-stream deficits. Returns an empty vector when
    /// nothing is queued or `max_batch == 0`.
    pub fn next_batch(&mut self, max_batch: usize) -> Vec<ScheduledJob> {
        let mut out = Vec::new();
        while out.len() < max_batch && self.queued > 0 {
            let Some(stream_id) = self.ring.pop_front() else {
                break;
            };
            let Some(queue) = self.queues.get_mut(&stream_id) else {
                self.deficits.remove(&stream_id);
                continue;
            };
            let deficit = self.deficits.entry(stream_id).or_insert(0);
            // A fresh turn is granted the quantum (capped at what is
            // actually poppable); an interrupted turn resumes its unspent
            // deficit without a new grant, so it cannot bank credit and hold
            // the ring head indefinitely.
            if *deficit == 0 {
                *deficit = self.quantum.min(queue.len());
            }
            while *deficit > 0 && out.len() < max_batch {
                let Some(job) = queue.pop_front() else {
                    break;
                };
                *deficit -= 1;
                self.queued -= 1;
                out.push(job);
            }
            let unspent = *deficit;
            if queue.is_empty() {
                self.queues.remove(&stream_id);
                self.deficits.remove(&stream_id);
            } else if out.len() >= max_batch && unspent > 0 {
                // Batch filled mid-quantum: the stream keeps its remaining
                // deficit and its place at the head of the ring.
                self.ring.push_front(stream_id);
            } else {
                // Quantum spent (jobs left): back of the ring, so the next
                // batch starts with someone else even when this batch could
                // not look past the head.
                self.ring.push_back(stream_id);
            }
        }
        out
    }

    /// The stream's unspent deficit-round-robin credit (0 when it holds
    /// none). Replicated with the session checkpoint so a takeover restores
    /// the stream's scheduling position, not just its weights.
    pub fn deficit_of(&self, stream_id: StreamId) -> usize {
        self.deficits.get(&stream_id).copied().unwrap_or(0)
    }

    /// Restore a stream's unspent deficit (warm-standby adoption). A zero
    /// deficit is the default state and is not stored.
    pub fn set_deficit(&mut self, stream_id: StreamId, deficit: usize) {
        if deficit > 0 {
            self.deficits.insert(stream_id, deficit);
        }
    }

    /// Drain *every* queued job, ring order then per-stream FIFO — the
    /// takeover path re-queues a dead shard's entire backlog at its
    /// adopter with arrival timestamps intact.
    pub fn drain_all(&mut self) -> Vec<ScheduledJob> {
        let streams: Vec<StreamId> = self.ring.iter().copied().collect();
        let mut out = Vec::with_capacity(self.queued);
        for stream_id in streams {
            out.extend(self.remove_stream(stream_id));
        }
        out
    }

    /// Remove a stream entirely (on `Shutdown`), returning its still-queued
    /// jobs in FIFO order so the caller can flush them before retiring the
    /// session.
    pub fn remove_stream(&mut self, stream_id: StreamId) -> Vec<ScheduledJob> {
        let jobs: Vec<ScheduledJob> = self
            .queues
            .remove(&stream_id)
            .map(|q| q.into_iter().collect())
            .unwrap_or_default();
        self.queued -= jobs.len();
        self.deficits.remove(&stream_id);
        self.ring.retain(|s| *s != stream_id);
        jobs
    }
}

impl Default for FairScheduler {
    fn default() -> Self {
        Self::new(1)
    }
}

/// Load-adaptive co-scheduling window.
///
/// Multiplicative increase/decrease between 1 and the configured `max_batch`
/// ceiling: the window doubles while the observed backlog exceeds it *and*
/// the teacher's marginal batched-inference cost still amortizes, and halves
/// when the backlog falls below half the window (deep windows buy teacher
/// amortization at the price of per-frame latency, so they are only worth
/// holding under real queue pressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveBatch {
    ceiling: usize,
    current: usize,
    enabled: bool,
}

impl AdaptiveBatch {
    /// A window bounded by `ceiling`; when `enabled` it starts at 1 and
    /// adapts, otherwise it is pinned to the ceiling (the static behaviour).
    pub fn new(ceiling: usize, enabled: bool) -> Self {
        let ceiling = ceiling.max(1);
        AdaptiveBatch {
            ceiling,
            current: if enabled { 1 } else { ceiling },
            enabled,
        }
    }

    /// The current co-scheduling window.
    pub fn limit(&self) -> usize {
        self.current
    }

    /// The configured ceiling.
    pub fn ceiling(&self) -> usize {
        self.ceiling
    }

    /// Feed one observation: the backlog remaining after a batch completed,
    /// and whether growing the window would still amortize teacher time
    /// (the marginal batched cost of one more slot is below a solo forward).
    pub fn observe(&mut self, backlog: usize, growth_pays: bool) {
        if !self.enabled {
            return;
        }
        if backlog > self.current && growth_pays {
            self.current = (self.current * 2).min(self.ceiling);
        } else if backlog < self.current / 2 {
            self.current = (self.current / 2).max(1);
        }
    }
}

/// Outcome of one co-scheduled batch: per-stream responses plus the jobs
/// that could not be served (each with its reason) and the jobs whose frame
/// content must be re-requested from the client first.
#[derive(Debug)]
pub struct BatchOutcome {
    /// `(stream, frame index, response)` per serviced key frame, in
    /// scheduling order.
    pub responses: Vec<(StreamId, usize, KeyFrameResponse)>,
    /// Jobs whose stream or frame was unknown. Counted in
    /// [`ShardStats::dropped_jobs`].
    pub dropped: Vec<(ShardJob, DropReason)>,
    /// Jobs whose frame was shared but has been evicted from the stream's
    /// [`FrameStore`]. Not a failure: the caller parks the job, asks the
    /// client to re-upload the content ([`ServerToClient::NeedFrame`]) and
    /// resumes it on the [`st_net::ClientToServer::ReShare`]. Counted in
    /// [`ShardStats::need_frame_requests`].
    pub needs_frame: Vec<ShardJob>,
}

/// Measured wall-clock cost of batched teacher forwards, by batch size.
///
/// The shard records the duration of every
/// [`st_teacher::Teacher::pseudo_label_batch`] call into a per-batch-size
/// exponential moving average. [`ServeShard::batch_growth_pays`] then judges
/// window growth on this *measured* marginal-cost data — the slope between
/// the two largest observed batch sizes — instead of the teacher's virtual
/// latency model, so the adaptive co-scheduling window tracks what batching
/// actually buys on the hardware at hand. Until enough sizes have been
/// observed (or when forwards are too fast to time meaningfully, e.g. the
/// oracle teacher), the caller falls back to the virtual model.
#[derive(Debug, Clone)]
pub struct TeacherCostProfile {
    /// EMA of batched-forward wall seconds, indexed by batch size.
    ema: Vec<Option<f64>>,
}

/// EMA smoothing factor for new batched-forward cost observations.
const COST_EMA_ALPHA: f64 = 0.3;
/// Forwards faster than this (seconds) are considered unmeasurable: timer
/// noise would dominate any marginal-cost estimate.
const COST_MEASURABLE_FLOOR: f64 = 1e-4;

impl TeacherCostProfile {
    /// An empty profile.
    pub fn new() -> Self {
        TeacherCostProfile { ema: Vec::new() }
    }

    /// Record one batched forward of `batch` frames that took `secs`.
    pub fn record(&mut self, batch: usize, secs: f64) {
        if batch == 0 || !secs.is_finite() || secs < 0.0 {
            return;
        }
        if self.ema.len() <= batch {
            self.ema.resize(batch + 1, None);
        }
        self.ema[batch] = Some(match self.ema[batch] {
            Some(prev) => (1.0 - COST_EMA_ALPHA) * prev + COST_EMA_ALPHA * secs,
            None => secs,
        });
    }

    /// Smoothed wall cost of a batched forward of exactly `batch` frames
    /// (`None` when that size has not been observed).
    pub fn estimate(&self, batch: usize) -> Option<f64> {
        self.ema.get(batch).copied().flatten()
    }

    /// Measured per-frame cost at the largest observed batch size not above
    /// `batch` (`None` when nothing relevant was observed).
    pub fn per_frame_at_or_below(&self, batch: usize) -> Option<f64> {
        self.ema
            .iter()
            .enumerate()
            .take(batch + 1)
            .rev()
            .find_map(|(size, ema)| ema.map(|cost| cost / size as f64))
    }

    /// Whether growing the window beyond `batch` still amortizes, judged on
    /// measured data: the marginal cost per extra slot — the slope between
    /// the two largest observed sizes at or below `batch + 1` — must be
    /// below the measured solo-forward cost. `None` when fewer than two
    /// sizes have been observed or the forwards are too fast to time
    /// (`COST_MEASURABLE_FLOOR`), in which case the caller should fall
    /// back to the teacher's virtual latency model.
    pub fn growth_pays(&self, batch: usize) -> Option<bool> {
        let solo = self.estimate(1)?;
        if solo < COST_MEASURABLE_FLOOR {
            return None;
        }
        let mut observed = self
            .ema
            .iter()
            .enumerate()
            .take(batch + 2)
            .filter_map(|(size, ema)| ema.map(|cost| (size, cost)));
        let (mut lo_size, mut lo_cost) = observed.next()?;
        let (mut hi_size, mut hi_cost) = (lo_size, lo_cost);
        for (size, cost) in observed {
            lo_size = hi_size;
            lo_cost = hi_cost;
            hi_size = size;
            hi_cost = cost;
        }
        if hi_size == lo_size {
            return None;
        }
        let marginal = (hi_cost - lo_cost) / (hi_size - lo_size) as f64;
        Some(marginal < solo)
    }
}

impl Default for TeacherCostProfile {
    fn default() -> Self {
        Self::new()
    }
}

/// One shard: a shared teacher plus one distillation session per stream.
///
/// The shard is a synchronous state machine — the worker thread in
/// [`ServerPool`] drives it from a queue, and tests can drive it directly.
pub struct ServeShard<T: Teacher> {
    config: ShadowTutorConfig,
    distill_step_latency: f64,
    template: StudentNet,
    /// Full-scope digest of the pristine template — the sparse-restore
    /// baseline: failover applies only the replica entries that differ from
    /// it, so frozen stages come back sharing the template's storage.
    template_digest: CheckpointDigest,
    session_weights: SessionWeights,
    teacher: T,
    sessions: HashMap<StreamId, StreamEntry>,
    stats: ShardStats,
    costs: TeacherCostProfile,
}

impl<T: Teacher> ServeShard<T> {
    /// Create a shard serving sessions cloned from `template`.
    pub fn new(
        config: ShadowTutorConfig,
        mut template: StudentNet,
        teacher: T,
        distill_step_latency: f64,
    ) -> Self {
        let template_digest =
            CheckpointDigest::of(&WeightSnapshot::capture(&mut template, SnapshotScope::Full));
        ServeShard {
            config,
            distill_step_latency,
            template,
            template_digest,
            session_weights: SessionWeights::CopyOnWrite,
            teacher,
            sessions: HashMap::new(),
            stats: ShardStats::default(),
            costs: TeacherCostProfile::new(),
        }
    }

    /// Set how sessions materialize their weights from the template.
    pub fn with_session_weights(mut self, session_weights: SessionWeights) -> Self {
        self.session_weights = session_weights;
        self
    }

    /// Materialize a session's starting weights from the template per the
    /// shard's [`SessionWeights`] mode.
    fn template_instance(&mut self) -> StudentNet {
        match self.session_weights {
            SessionWeights::CopyOnWrite => self.template.clone(),
            SessionWeights::DeepClone => self.template.deep_clone(),
        }
    }

    /// Register a stream: create its session and return the initial full
    /// checkpoint (Algorithm 3, line 1, per stream).
    ///
    /// A duplicate register does **not** clobber the live session or its
    /// pre-shared frames (the pool rejects duplicate connects before they
    /// reach the shard); it returns the session's current checkpoint. Either
    /// way the stream's delta track resets to synced-at-this-checkpoint:
    /// the caller is about to ship exactly this snapshot as
    /// [`ServerToClient::InitialStudent`].
    pub fn register(
        &mut self,
        stream_id: StreamId,
        frames: FrameStore,
        supports_delta: bool,
    ) -> WeightSnapshot {
        if !self.sessions.contains_key(&stream_id) {
            let session = DistillSession::new(
                self.config,
                self.template_instance(),
                self.distill_step_latency,
            );
            self.sessions.insert(
                stream_id,
                StreamEntry {
                    session,
                    frames,
                    delta: None,
                },
            );
        }
        let Some(entry) = self.sessions.get_mut(&stream_id) else {
            unreachable!("session inserted above when absent")
        };
        let initial = entry.session.initial_checkpoint();
        entry.delta = supports_delta.then(|| DeltaTrack {
            digest: CheckpointDigest::of(&initial),
            synced: true,
        });
        initial
    }

    /// Restore an evicted frame's content from a client re-share. Returns
    /// `false` when the stream has no session, the index was never shared
    /// in the first place (a re-share is recovery, not a side door for
    /// injecting new frames), or the frame is bigger than the stream's
    /// whole budget and so can never be made resident. In every `false`
    /// case the caller acks a drop — a definitive answer, never a retry
    /// loop.
    pub fn reshare(&mut self, stream_id: StreamId, frame: Frame) -> bool {
        let Some(entry) = self.sessions.get_mut(&stream_id) else {
            return false;
        };
        if !entry.frames.knows(frame.index) {
            return false;
        }
        let index = frame.index;
        entry.frames.insert(frame);
        if !entry.frames.resident(index) {
            // The frame alone exceeds the budget: admission is impossible,
            // so recovery must fail definitively instead of ping-ponging
            // NeedFrame ↔ ReShare forever.
            return false;
        }
        self.stats.reshared_frames += 1;
        true
    }

    /// Pull a whole stream out of the shard for migration: its live session
    /// and its frame cache, counters intact (they travel with the stream and
    /// are folded into whichever shard finally retires it).
    fn evict_stream(&mut self, stream_id: StreamId) -> Option<StreamEntry> {
        let entry = self.sessions.remove(&stream_id);
        if entry.is_some() {
            self.stats.streams_donated += 1;
        }
        entry
    }

    /// Install a stream migrated from another shard.
    fn adopt_stream(&mut self, stream_id: StreamId, entry: StreamEntry) {
        debug_assert!(
            !self.sessions.contains_key(&stream_id),
            "a stream lives on exactly one shard"
        );
        self.stats.streams_stolen_in += 1;
        self.sessions.insert(stream_id, entry);
    }

    /// Capture what checkpoint replication publishes for one stream: the
    /// full session checkpoint, the distillation counters, the set of
    /// shared frame indices, and the stream's delta negotiation.
    fn session_replica(
        &mut self,
        stream_id: StreamId,
    ) -> Option<(WeightSnapshot, usize, usize, Vec<usize>, bool)> {
        let entry = self.sessions.get_mut(&stream_id)?;
        Some((
            entry.session.replica_checkpoint(),
            entry.session.key_frames_processed(),
            entry.session.distill_steps_taken(),
            entry.frames.known_indices(),
            entry.delta.is_some(),
        ))
    }

    /// The stream's delta track, if the client negotiated delta updates.
    fn delta_track_mut(&mut self, stream_id: StreamId) -> Option<&mut DeltaTrack> {
        self.sessions.get_mut(&stream_id)?.delta.as_mut()
    }

    /// Sum every live session's storage split against the shard template.
    /// Cheap (pointer compares per tensor), but still sampled per batch,
    /// never per frame.
    fn memory_profile(&mut self) -> SessionMemory {
        let mut total = SessionMemory::default();
        for entry in self.sessions.values_mut() {
            let m = SessionMemory::measure(entry.session.student_mut(), &mut self.template);
            total.shared_bytes += m.shared_bytes;
            total.private_bytes += m.private_bytes;
        }
        total
    }

    /// Rebuild a stream from its replicated checkpoint (warm-standby
    /// takeover): a fresh session resumed from the replica weights and
    /// counters, plus a known-but-evicted frame cache.
    ///
    /// The restore is *sparse*: only the replica entries whose content hash
    /// differs from the pristine template are applied onto a copy-on-write
    /// template instance, so frozen stages come back sharing the template's
    /// storage — bit-identical to applying the full replica, because a
    /// skipped entry equals the template by content hash. A delta-negotiated
    /// stream restores with `synced: false`: the adopter cannot prove what
    /// the client last applied, so the next update ships as a full-snapshot
    /// envelope (the delta re-sync).
    fn restore_stream(
        &mut self,
        stream_id: StreamId,
        snapshot: &WeightSnapshot,
        key_frames: usize,
        distill_steps: usize,
        frames: FrameStore,
        supports_delta: bool,
    ) -> Result<()> {
        debug_assert!(
            !self.sessions.contains_key(&stream_id),
            "a stream lives on exactly one shard"
        );
        let sparse = WeightDelta::compute(snapshot, &self.template_digest);
        let (changed, _) = sparse.into_parts()?;
        let base = self.template_instance();
        let session = DistillSession::resume(
            self.config,
            base,
            &changed,
            self.distill_step_latency,
            key_frames,
            distill_steps,
        )?;
        let delta = supports_delta.then(|| DeltaTrack {
            digest: CheckpointDigest::of(snapshot),
            synced: false,
        });
        self.sessions.insert(
            stream_id,
            StreamEntry {
                session,
                frames,
                delta,
            },
        );
        Ok(())
    }

    /// Drop every session, folding only the frame-cache counters into the
    /// shard's stats. This is carcass accounting: a dead shard's live
    /// sessions are *replaced* by replica-restored ones at its adopter (the
    /// replicas, not the carcass, are the recovery source of truth), so the
    /// carcass keeps the counters and loses the state.
    fn discard_sessions(&mut self) {
        for (_stream_id, entry) in self.sessions.drain() {
            self.stats.frame_evictions += entry.frames.evictions();
            self.stats.frame_bytes_peak =
                self.stats.frame_bytes_peak.max(entry.frames.peak_bytes());
        }
    }

    /// Number of streams currently registered.
    pub fn stream_count(&self) -> usize {
        self.sessions.len()
    }

    /// Whether a stream has a registered session.
    pub fn has_stream(&self, stream_id: StreamId) -> bool {
        self.sessions.contains_key(&stream_id)
    }

    /// Whether a stream has a registered session *and* the frame was shared
    /// at some point (it may currently be evicted; see
    /// [`ServeShard::frame_resident`]).
    pub fn has_frame(&self, stream_id: StreamId, frame_index: usize) -> bool {
        self.sessions
            .get(&stream_id)
            .is_some_and(|e| e.frames.knows(frame_index))
    }

    /// Whether the frame's content is currently resident in the stream's
    /// cache (a known-but-evicted frame triggers the
    /// [`ServerToClient::NeedFrame`] recovery path instead of service).
    pub fn frame_resident(&self, stream_id: StreamId, frame_index: usize) -> bool {
        self.sessions
            .get(&stream_id)
            .is_some_and(|e| e.frames.resident(frame_index))
    }

    /// Ids of all currently registered streams.
    pub fn session_ids(&self) -> Vec<StreamId> {
        self.sessions.keys().copied().collect()
    }

    /// Virtual cost of adding one more slot to a co-scheduled batch of
    /// `batch` frames.
    pub fn marginal_batch_cost(&self, batch: usize) -> f64 {
        self.teacher.batched_inference_latency(batch + 1)
            - self.teacher.batched_inference_latency(batch)
    }

    /// Whether growing the co-scheduling window beyond `batch` still
    /// amortizes teacher time.
    ///
    /// Judged on the *measured* marginal batched-forward cost when the shard
    /// has timed enough batched forwards ([`TeacherCostProfile`]); until
    /// then — or when forwards are too fast to time — on the teacher's
    /// virtual latency model (marginal virtual cost below a solo forward).
    pub fn batch_growth_pays(&self, batch: usize) -> bool {
        match self.costs.growth_pays(batch) {
            Some(pays) => pays,
            None => self.marginal_batch_cost(batch) < self.teacher.inference_latency(),
        }
    }

    /// The measured batched-forward cost profile collected so far.
    pub fn measured_costs(&self) -> &TeacherCostProfile {
        &self.costs
    }

    /// Process a co-scheduled batch of key frames: one batched teacher
    /// forward across the batch, then per-stream distillation in scheduling
    /// order. Jobs whose stream or frame is unknown are returned in
    /// [`BatchOutcome::dropped`] and counted in
    /// [`ShardStats::dropped_jobs`] — never silently discarded.
    pub fn process_batch(&mut self, jobs: &[ShardJob]) -> Result<BatchOutcome> {
        // Resolve which jobs are servable. Frames stay where they are — they
        // are borrowed for labelling and distillation, never copied (a frame
        // is the whole RGB tensor plus its ground truth). A known frame that
        // was evicted from the stream's cache is reported in `needs_frame`
        // rather than dropped: the content is recoverable from the client.
        let mut dropped: Vec<(ShardJob, DropReason)> = Vec::new();
        let mut needs_frame: Vec<ShardJob> = Vec::new();
        let mut resolved: Vec<ShardJob> = Vec::new();
        for job in jobs {
            match self.sessions.get_mut(&job.stream_id) {
                None => dropped.push((*job, DropReason::UnknownStream)),
                Some(entry) => {
                    if !entry.frames.knows(job.frame_index) {
                        dropped.push((*job, DropReason::UnknownFrame));
                    } else if !entry.frames.touch(job.frame_index) {
                        // `touch` marks the frame most-recently-used (and
                        // tells us whether it is resident), so the frames a
                        // batch is about to read are the last the budget
                        // would evict.
                        needs_frame.push(*job);
                    } else {
                        resolved.push(*job);
                    }
                }
            }
        }
        self.stats.dropped_jobs += dropped.len();
        self.stats.need_frame_requests += needs_frame.len();
        if resolved.is_empty() {
            return Ok(BatchOutcome {
                responses: Vec::new(),
                dropped,
                needs_frame,
            });
        }

        // One teacher forward pass amortized over the co-scheduled frames,
        // timed so the adaptive batcher grows on measured marginal cost.
        let batch = resolved.len();
        let teacher_started = Instant::now();
        let labels = {
            let frame_refs: Vec<&Frame> = resolved
                .iter()
                .map(|job| {
                    let Some(frame) = self.sessions[&job.stream_id].frames.peek(job.frame_index)
                    else {
                        unreachable!("frame resident: touched above")
                    };
                    frame
                })
                .collect();
            self.teacher.pseudo_label_batch(&frame_refs)?
        };
        let teacher_elapsed = teacher_started.elapsed();
        self.stats.teacher_wall_time += teacher_elapsed;
        self.costs.record(batch, teacher_elapsed.as_secs_f64());
        let solo_cost = batch as f64 * self.teacher.inference_latency();
        let batched_cost = self.teacher.batched_inference_latency(batch);
        let teacher_share = batched_cost / batch as f64;
        self.stats.teacher_batches += 1;
        self.stats.max_batch_observed = self.stats.max_batch_observed.max(batch);
        self.stats.teacher_time_saved += solo_cost - batched_cost;

        let mut out = Vec::with_capacity(batch);
        for (job, label) in resolved.into_iter().zip(labels) {
            let Some(entry) = self.sessions.get_mut(&job.stream_id) else {
                unreachable!("session present: resolved above")
            };
            // Split the entry so the frame borrow and the mutable session
            // borrow coexist.
            let StreamEntry {
                session, frames, ..
            } = entry;
            let Some(frame) = frames.peek(job.frame_index) else {
                unreachable!("frame resident: touched above")
            };
            let response = session.distill(frame, &label, teacher_share)?;
            self.stats.key_frames += 1;
            self.stats.distill_steps += response.outcome.steps;
            self.stats.virtual_server_time += response.server_time;
            out.push((job.stream_id, job.frame_index, response));
        }
        Ok(BatchOutcome {
            responses: out,
            dropped,
            needs_frame,
        })
    }

    /// Finish a stream: remove its session, returning the final full
    /// checkpoint and the stream's counters (distillation half only — the
    /// pool worker merges in waits/throttles/drops). The stream's
    /// frame-cache counters are folded into this shard's [`ShardStats`]
    /// here, so a migrated stream's evictions land where it finished.
    pub fn finish(&mut self, stream_id: StreamId) -> Option<(WeightSnapshot, StreamServerStats)> {
        self.sessions.remove(&stream_id).map(|mut entry| {
            let checkpoint = entry.session.initial_checkpoint();
            let stats = entry.session.stats();
            self.stats.frame_evictions += entry.frames.evictions();
            self.stats.frame_bytes_peak =
                self.stats.frame_bytes_peak.max(entry.frames.peak_bytes());
            (checkpoint, stats)
        })
    }

    /// The shard's counters so far.
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// The teacher shared by this shard's streams.
    pub fn teacher_mut(&mut self) -> &mut T {
        &mut self.teacher
    }
}

/// A stream-tagged uplink message queued at a shard.
#[derive(Clone)]
struct Envelope {
    tagged: StreamTagged<ClientToServer>,
    bytes: usize,
    enqueued_at: Instant,
    /// Out-of-band frame content for [`ClientToServer::ReShare`]: the wire
    /// message carries encoded pixels for realistic sizes, and the
    /// in-process transport ships the actual `Frame` beside it, exactly as
    /// connect-time pre-sharing does.
    frame: Option<Frame>,
}

/// Pool-wide measured wire traffic: the framed byte size
/// ([`st_net::wire::frame_len`]) of every uplink envelope the clients sent
/// and every downlink message the shards delivered. Unlike the modelled
/// `bytes` ridealong, these are the sizes the versioned binary codec would
/// actually put on a wire, so `PoolReport::wire_bytes_up/down` stay honest
/// regardless of which transport backend carried the messages.
#[derive(Debug, Default)]
struct WireMeter {
    up: AtomicUsize,
    down: AtomicUsize,
}

/// The sending half of one stream's downlink (wire size + message), with an
/// optional readiness waker: a client connected through
/// [`ServerPool::connect_with_waker`] is woken after every downlink send, so
/// a single driver loop can multiplex many clients through one
/// [`st_net::Poller`] instead of blocking per stream.
#[derive(Clone)]
struct Downlink {
    tx: crossbeam::channel::Sender<(usize, ServerToClient)>,
    waker: Option<st_net::Waker>,
    wire: Arc<WireMeter>,
}

impl Downlink {
    fn send(&self, bytes: usize, message: ServerToClient) -> bool {
        let wire_len = st_net::wire::frame_len(&message);
        let delivered = self.tx.send((bytes, message)).is_ok();
        if delivered {
            // ORDER: Relaxed — a monotonic traffic counter; readers only see
            // it after join() synchronizes with every worker's exit.
            self.wire.down.fetch_add(wire_len, Ordering::Relaxed);
            if let Some(waker) = &self.waker {
                waker.wake();
            }
        }
        delivered
    }
}

/// Per-stream connection state the worker looks up when a `Register`
/// message arrives: the downlink back to the client and the pre-shared
/// frame content.
struct StreamLink {
    downlink: Downlink,
    frames: FrameStore,
}

type Registry = Arc<Mutex<HashMap<StreamId, StreamLink>>>;

/// One stream's live shard assignment. Clients hold their own `Arc` and
/// read it with a single atomic load per send — the pool-wide map is only
/// locked on connect, migration, and worker-side forwarding lookups, so
/// uplink traffic never serializes on a global mutex.
type Route = Arc<AtomicUsize>;

/// The live stream → shard routing table, shared by the pool (placement +
/// duplicate detection) and every worker (to forward traffic that raced a
/// migration); each [`StreamClient`] holds its own entry's [`Route`]
/// directly, so a migrated stream's traffic follows it. An entry is never
/// removed — a stream id stays reserved for the pool's lifetime.
type Placements = Arc<Mutex<HashMap<StreamId, Route>>>;

/// A whole stream in flight between two shards: everything the thief needs
/// to continue serving it exactly where the victim stopped.
struct MigratedStream {
    stream_id: StreamId,
    /// The donating shard — the thief re-homes the stream's checkpoint
    /// replica from this slot to its own.
    from_shard: usize,
    entry: StreamEntry,
    downlink: Downlink,
    meter: StreamMeter,
    /// The stream's still-queued jobs, FIFO order, original arrival times.
    jobs: Vec<ScheduledJob>,
    /// Jobs parked waiting for a frame re-share, keyed by frame index
    /// (every job waiting on that index).
    awaiting: Vec<(usize, Vec<ScheduledJob>)>,
}

/// The pool's instantiation of the generic work-stealing coordination core
/// ([`crate::steal::StealCore`]): migrated payloads are whole serving
/// sessions, forwarded payloads are uplink envelopes. The request-slot and
/// mailbox protocol lives in `steal.rs`, where the model-check suite
/// explores it exhaustively; this file only decides *when* to post, donate,
/// withdraw and close.
type StealRegistry = StealCore<MigratedStream, Envelope>;

/// A freshly adopted stream cannot be donated onward for this long, so a
/// backlogged stream ping-ponging between idle shards is bounded to one
/// hop per cooldown (and gets real service in between).
const STEAL_STICKY: Duration = Duration::from_millis(100);

/// A steal request left unanswered this long is withdrawn and re-targeted:
/// the victim it sits at may never become donatable (a lone backlogged
/// session, say) while some other shard's backlog deepens.
const STEAL_RETARGET: Duration = Duration::from_millis(100);

/// What one shard state machine hands back when it finishes. Tagged with
/// the shard index because under the reactor driver one OS thread finalizes
/// whichever shards it happens to dispatch last — collection order is not
/// shard order.
struct ShardOutput {
    shard: usize,
    stats: ShardStats,
    streams: HashMap<StreamId, StreamServerStats>,
    final_checkpoints: HashMap<StreamId, WeightSnapshot>,
    wait_samples: Vec<f64>,
    /// One death-to-adoption latency sample (seconds) per takeover this
    /// shard performed as a standby.
    takeover_samples: Vec<f64>,
}

/// Render a caught panic payload for the failure report. Panics raised with
/// a string literal or a formatted message (the overwhelmingly common
/// cases, including injected faults) come through verbatim.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(msg) = payload.downcast_ref::<&str>() {
        (*msg).to_string()
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        msg.clone()
    } else {
        "shard worker panicked".to_string()
    }
}

/// Send one downlink message, counting the loss when the client already
/// hung up. A vanished client only loses its own acks, but the loss is
/// *counted* (`ShardStats::lost_acks`), never silently discarded — the
/// failover paths depend on every drop being observable.
fn deliver(downlink: &Downlink, bytes: usize, msg: ServerToClient, lost_acks: &mut usize) {
    if !downlink.send(bytes, msg) {
        *lost_acks += 1;
    }
}

/// Liveness sentinel: the shard's worker died with a panic.
const LIVENESS_DEAD: u64 = u64::MAX;
/// Liveness sentinel: the shard ran its exit protocol to completion.
const LIVENESS_FINISHED: u64 = u64::MAX - 1;

/// A shard worker's death certificate.
#[derive(Debug, Clone)]
struct ShardDeath {
    /// The worker's actual panic payload.
    panic_msg: String,
    /// When the death was published — takeover latency is measured from
    /// here to the standby's adoption.
    died_at: Instant,
}

/// The pool's non-generic failover blackboard, shared by the pool handle
/// (which is not generic over the teacher) and every worker.
///
/// Liveness is a per-shard epoch: live workers bump theirs every pass, a
/// death stores [`LIVENESS_DEAD`], a clean exit [`LIVENESS_FINISHED`]. The
/// `claimed` slots are the adoption lock — exactly one standby wins the
/// compare-exchange and performs the takeover; `recovered` confirms the
/// takeover actually completed, so a standby that dies *mid-takeover*
/// still surfaces as a failure instead of a hang.
struct FailoverBoard {
    liveness: Vec<AtomicU64>,
    /// CAS guard: set by the standby that won the right to adopt.
    claimed: Vec<AtomicBool>,
    /// Set once the standby finished adopting the shard's streams.
    recovered: Vec<AtomicBool>,
    deaths: Vec<Mutex<Option<ShardDeath>>>,
    /// Final outputs of dead shards, assembled from their carcasses by the
    /// adopting standby (a dead worker returns nothing through its join
    /// handle).
    dead_outputs: Mutex<Vec<ShardOutput>>,
    /// Shards finalized so far (clean exits and completed adoptions); the
    /// reactor's worker set exits when this reaches the shard count.
    finished: AtomicUsize,
    /// Whether checkpoint replication (and hence standby adoption) is on.
    replication: bool,
}

impl FailoverBoard {
    fn new(shards: usize, replication: bool) -> Self {
        FailoverBoard {
            liveness: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            claimed: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            recovered: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            deaths: (0..shards).map(|_| Mutex::new(None)).collect(),
            dead_outputs: Mutex::new(Vec::new()),
            finished: AtomicUsize::new(0),
            replication,
        }
    }

    /// Bump the shard's liveness epoch (one per pass). The sentinels are
    /// terminal: a dead or finished shard never looks live again.
    fn beat(&self, shard: usize) {
        let cell = &self.liveness[shard];
        // ORDER: the epoch has a single writer (the hosting worker), so a
        // relaxed read of our own last store is exact.
        let epoch = cell.load(Ordering::Relaxed);
        if epoch < LIVENESS_FINISHED {
            // ORDER: single writer per live shard; Release pairs with the
            // SeqCst readers below.
            cell.store(epoch + 1, Ordering::Release);
        }
    }

    /// Publish a death: certificate first, then the liveness sentinel, so
    /// any observer of `is_dead` finds the certificate present.
    fn mark_dead(&self, shard: usize, panic_msg: String) {
        *locked(&self.deaths[shard]) = Some(ShardDeath {
            panic_msg,
            died_at: Instant::now(),
        });
        self.liveness[shard].store(LIVENESS_DEAD, Ordering::SeqCst);
    }

    fn mark_finished(&self, shard: usize) {
        self.liveness[shard].store(LIVENESS_FINISHED, Ordering::SeqCst);
    }

    fn is_dead(&self, shard: usize) -> bool {
        self.liveness[shard].load(Ordering::SeqCst) == LIVENESS_DEAD
    }

    fn is_finished(&self, shard: usize) -> bool {
        self.liveness[shard].load(Ordering::SeqCst) == LIVENESS_FINISHED
    }

    /// Win (or lose) the exclusive right to adopt a dead shard.
    fn try_claim(&self, shard: usize) -> bool {
        self.claimed[shard]
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    fn death_instant(&self, shard: usize) -> Option<Instant> {
        locked(&self.deaths[shard]).as_ref().map(|d| d.died_at)
    }

    /// File a dead shard's final output (assembled from its carcass) and
    /// mark the shard recovered.
    fn push_dead_output(&self, output: ShardOutput) {
        let shard = output.shard;
        locked(&self.dead_outputs).push(output);
        self.recovered[shard].store(true, Ordering::SeqCst);
        self.finished.fetch_add(1, Ordering::SeqCst);
    }

    fn take_dead_outputs(&self) -> Vec<ShardOutput> {
        std::mem::take(&mut *locked(&self.dead_outputs))
    }

    /// Record one more finalized shard; returns the new total.
    fn note_finished(&self) -> usize {
        self.finished.fetch_add(1, Ordering::SeqCst) + 1
    }

    fn finished_count(&self) -> usize {
        self.finished.load(Ordering::SeqCst)
    }

    /// A death no standby recovered from (replication off, or the standby
    /// itself died — possibly mid-takeover). `join` turns this into
    /// [`PoolError::WorkerFailed`].
    fn unrecovered_death(&self) -> Option<(usize, String)> {
        (0..self.liveness.len()).find_map(|shard| {
            if !self.is_dead(shard) || self.recovered[shard].load(Ordering::SeqCst) {
                return None;
            }
            let msg = locked(&self.deaths[shard])
                .as_ref()
                .map(|death| death.panic_msg.clone())
                .unwrap_or_else(|| "shard worker panicked".to_string());
            Some((shard, msg))
        })
    }

    /// A dead shard that can never be adopted: replication off, or its
    /// standby (the next shard) is itself dead or already finished. The
    /// reactor aborts on this instead of waiting forever.
    fn has_orphan_death(&self) -> bool {
        let shards = self.liveness.len();
        (0..shards).any(|shard| {
            if !self.is_dead(shard) || self.recovered[shard].load(Ordering::SeqCst) {
                return false;
            }
            if !self.replication {
                return true;
            }
            let standby = (shard + 1) % shards;
            self.is_dead(standby) || self.is_finished(standby)
        })
    }
}

/// Everything the failover protocol shares between workers, generic over
/// the teacher: the hosted shard-state slots, the blackboard, and the
/// checkpoint-replica store.
///
/// `states[i]` hosts shard *i*'s machine until the shard finishes (slot
/// emptied) or dies (the carcass stays in the slot for its standby). Under
/// the thread-per-shard driver each worker holds its own slot's guard for
/// its whole life, so the only way in for a standby is after the owner
/// died — unwinding poisons the mutex, which [`locked`] deliberately
/// recovers.
struct FailoverShared<T: Teacher> {
    states: Vec<Mutex<Option<ShardState<T>>>>,
    board: Arc<FailoverBoard>,
    replicas: Option<Arc<ReplicaStore>>,
}

/// The client's endpoint onto the pool: same surface as the single-stream
/// transport, but every uplink message is stream-tagged and lands in the
/// owning shard's queue. The owning shard is looked up per send, so when
/// work stealing migrates the stream its traffic follows it to the new
/// shard (messages already queued at the old shard are forwarded by that
/// shard's worker).
pub struct StreamClient {
    stream_id: StreamId,
    uplinks: Arc<Vec<crossbeam::channel::Sender<Envelope>>>,
    /// The stream's live shard assignment (shared with the routing table;
    /// migrations store the new shard here).
    route: Route,
    downlink: crossbeam::channel::Receiver<(usize, ServerToClient)>,
    /// Reactor pools: per-shard wakers, indexed like `uplinks`. Every
    /// uplink send wakes the owning shard's token so a reactor worker
    /// dispatches it; `None` under the thread-per-shard driver, whose
    /// workers block in `recv_timeout` instead.
    shard_wakers: Option<Arc<Vec<st_net::Waker>>>,
    /// Pool-wide measured-traffic counters (this client credits uplink).
    wire: Arc<WireMeter>,
    /// Failover blackboard, consulted by [`ClientEndpoint::reconnect`]: a
    /// client caught mid-takeover can tell whether its routed shard is a
    /// carcass (retry later) or live again (resume sending).
    board: Arc<FailoverBoard>,
    /// Latched when the downlink channel reports disconnected. The downlink
    /// sender survives takeovers (it moves with the session), so a closed
    /// downlink means the session itself is gone — no reconnect re-dials it.
    downlink_closed: bool,
}

impl StreamClient {
    /// The stream this client speaks for.
    pub fn stream_id(&self) -> StreamId {
        self.stream_id
    }

    /// Answer a [`ServerToClient::NeedFrame`]: re-upload a frame the server
    /// evicted from the stream's bounded cache. The wire cost is the same as
    /// the original key-frame upload; the parked job resumes (and its
    /// `StudentUpdate` arrives) once the content lands.
    pub fn reshare(&mut self, frame: &Frame) -> std::result::Result<(), TransportError> {
        let payload = Payload::sized(frame.raw_rgb_bytes());
        let bytes = payload.bytes;
        self.send_envelope(
            ClientToServer::ReShare {
                frame_index: frame.index,
                payload,
            },
            bytes,
            Some(frame.clone()),
        )
    }

    fn send_envelope(
        &mut self,
        message: ClientToServer,
        bytes: usize,
        frame: Option<Frame>,
    ) -> std::result::Result<(), TransportError> {
        let shard = self.route.load(Ordering::SeqCst);
        let tagged = StreamTagged::new(self.stream_id, message);
        // The measured uplink cost of this envelope: the framed tagged
        // message, plus the frame content when it rides along (a re-share
        // re-uploads real pixels).
        let wire_len =
            st_net::wire::frame_len(&tagged) + frame.as_ref().map_or(0, st_net::wire::frame_len);
        self.uplinks[shard]
            .send(Envelope {
                tagged,
                bytes: StreamTagged::<ClientToServer>::tagged_bytes(bytes),
                enqueued_at: Instant::now(),
                frame,
            })
            .map_err(|_| TransportError::Disconnected)?;
        // ORDER: Relaxed — a monotonic traffic counter; readers only see it
        // after join() synchronizes with every worker's exit.
        self.wire.up.fetch_add(wire_len, Ordering::Relaxed);
        if let Some(wakers) = &self.shard_wakers {
            wakers[shard].wake();
        }
        Ok(())
    }
}

impl ClientEndpoint for StreamClient {
    fn send(
        &mut self,
        message: ClientToServer,
        bytes: usize,
    ) -> std::result::Result<(), TransportError> {
        self.send_envelope(message, bytes, None)
    }

    fn try_recv(&mut self) -> std::result::Result<Option<ServerToClient>, TransportError> {
        match self.downlink.try_recv() {
            Ok((_bytes, msg)) => Ok(Some(msg)),
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => {
                self.downlink_closed = true;
                Err(TransportError::Disconnected)
            }
        }
    }

    fn recv_timeout(
        &mut self,
        timeout: Duration,
    ) -> std::result::Result<ServerToClient, TransportError> {
        match self.downlink.recv_timeout(timeout) {
            Ok((_bytes, msg)) => Ok(msg),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                self.downlink_closed = true;
                Err(TransportError::Disconnected)
            }
        }
    }

    /// Re-dial after a takeover: the adoption flips this stream's shared
    /// route, so re-reading it *is* the reconnect. `Ok(())` once the
    /// routed shard is live again; `Err(Timeout)` while it is still a
    /// carcass (back off and retry — a standby may adopt it);
    /// `Err(Disconnected)` once the session itself is gone (closed
    /// downlink), which no retry re-dials.
    fn reconnect(&mut self) -> std::result::Result<(), TransportError> {
        if self.downlink_closed {
            return Err(TransportError::Disconnected);
        }
        let shard = self.route.load(Ordering::SeqCst);
        if self.board.is_dead(shard) {
            Err(TransportError::Timeout)
        } else {
            Ok(())
        }
    }
}

/// A sharded pool of distillation workers serving many client streams.
///
/// Two drivers are available, selected by
/// [`PoolConfig::reactor_threads`]: the classic one-OS-thread-per-shard
/// blocking loop (`None`), and the event-driven reactor (`Some(n)`), which
/// hosts all shard state machines on a fixed set of `n` threads woken by
/// send-side readiness tokens and a hierarchical timer wheel. Both run the
/// same `ShardState` machine, so a stream cannot tell which driver served
/// it.
pub struct ServerPool {
    pool_config: PoolConfig,
    uplinks: Arc<Vec<crossbeam::channel::Sender<Envelope>>>,
    registries: Vec<Registry>,
    /// Steal-coordination state (also carries the per-shard session counts
    /// that drive least-loaded placement).
    steal: Arc<StealRegistry>,
    /// Stream → shard placements made so far, shared with clients (send
    /// routing) and workers (migration + forwarding). A stream id stays
    /// reserved for the pool's lifetime; reconnecting a finished id needs a
    /// new pool.
    placements: Placements,
    /// One handle per OS thread. Thread-per-shard: `shards` handles, each
    /// returning its own shard's output. Reactor: `reactor_threads`
    /// handles, each returning the outputs of whichever shards it finalized.
    workers: Vec<std::thread::JoinHandle<Result<Vec<ShardOutput>>>>,
    /// Measured wire traffic for the whole pool, shared with every
    /// [`StreamClient`] (uplink) and [`Downlink`] (downlink).
    wire: Arc<WireMeter>,
    /// Reactor pools: per-shard readiness wakers. `join` wakes every shard
    /// once the uplinks are dropped so each one observes the disconnect and
    /// runs its exit protocol.
    shard_wakers: Option<Arc<Vec<st_net::Waker>>>,
    /// Failover blackboard: worker deaths, adoption claims, and the dead
    /// shards' standby-assembled final outputs.
    board: Arc<FailoverBoard>,
    /// The pool-wide content-addressed chunk store (template + replicas).
    store: Arc<WeightStore>,
    /// The interned pristine template, pinned for the pool's lifetime so
    /// replica publishes always dedup frozen stages against it. Released
    /// at `join`.
    template_checkpoint: Option<CheckpointRef>,
}

impl ServerPool {
    /// Spawn `pool_config.shards` worker threads. Each shard gets its own
    /// teacher from `teacher_factory(shard_index)` and serves sessions cloned
    /// from `template`.
    pub fn spawn<T, F>(
        config: ShadowTutorConfig,
        pool_config: PoolConfig,
        mut template: StudentNet,
        distill_step_latency: f64,
        mut teacher_factory: F,
    ) -> Result<ServerPool>
    where
        T: Teacher + Send + 'static,
        F: FnMut(usize) -> T,
    {
        config.validate()?;
        pool_config.validate()?;
        let steal = Arc::new(StealRegistry::new(pool_config.shards));
        let placements: Placements = Arc::new(Mutex::new(HashMap::new()));
        let wire = Arc::new(WireMeter::default());
        let board = Arc::new(FailoverBoard::new(
            pool_config.shards,
            pool_config.replication,
        ));
        // The pool-wide content-addressed chunk store. The pristine template
        // is interned up front, so every later replica publish dedups its
        // frozen stages against the template's chunks from the first byte.
        let store = Arc::new(WeightStore::new());
        let (template_checkpoint, _) =
            store.intern(&WeightSnapshot::capture(&mut template, SnapshotScope::Full));
        let replicas = pool_config
            .replication
            .then(|| Arc::new(ReplicaStore::new(pool_config.shards, Arc::clone(&store))));
        let mut uplinks = Vec::with_capacity(pool_config.shards);
        let mut registries = Vec::with_capacity(pool_config.shards);
        let mut workers = Vec::new();
        if let Some(threads) = pool_config.reactor_threads {
            // Reactor driver: all shard state machines live behind mutexes,
            // hosted by a fixed worker set woken by readiness tokens (one
            // token per shard) and a shared timer wheel.
            let poller = st_net::Poller::new();
            let shard_wakers: Arc<Vec<st_net::Waker>> =
                Arc::new((0..pool_config.shards).map(|i| poller.waker(i)).collect());
            let mut states = Vec::with_capacity(pool_config.shards);
            for shard_index in 0..pool_config.shards {
                let (tx, rx) = crossbeam::channel::unbounded::<Envelope>();
                let registry: Registry = Arc::new(Mutex::new(HashMap::new()));
                let shard = ServeShard::new(
                    config,
                    template.clone(),
                    teacher_factory(shard_index),
                    distill_step_latency,
                )
                .with_session_weights(pool_config.session_weights);
                states.push(Mutex::new(Some(ShardState::new(
                    shard,
                    rx,
                    Arc::clone(&registry),
                    pool_config,
                    shard_index,
                    Arc::clone(&steal),
                    Arc::clone(&placements),
                    Some(Arc::clone(&shard_wakers)),
                    Arc::clone(&board),
                    replicas.clone(),
                ))));
                uplinks.push(tx);
                registries.push(registry);
            }
            let failover = Arc::new(FailoverShared {
                states,
                board: Arc::clone(&board),
                replicas,
            });
            let shared = Arc::new(ReactorShared {
                failover,
                poller,
                timers: Mutex::new(TimerWheel::new(Instant::now(), Duration::from_millis(1))),
                aborted: AtomicBool::new(false),
                rerun: (0..pool_config.shards)
                    .map(|_| AtomicBool::new(false))
                    .collect(),
                shard_wakers: Arc::clone(&shard_wakers),
                steal_poll: pool_config.steal_poll,
            });
            for _ in 0..threads {
                let shared = Arc::clone(&shared);
                workers.push(std::thread::spawn(move || run_reactor_worker(shared)));
            }
            // Kick every shard once so each runs an initial pass. Without
            // this, a shard that never receives traffic would also never
            // join the steal protocol (the idle tick chain is armed by
            // passes, and passes are armed by wakes).
            for waker in shard_wakers.iter() {
                waker.wake();
            }
            return Ok(ServerPool {
                pool_config,
                uplinks: Arc::new(uplinks),
                registries,
                steal,
                placements,
                workers,
                shard_wakers: Some(shard_wakers),
                wire,
                board,
                store,
                template_checkpoint: Some(template_checkpoint),
            });
        }
        let mut states = Vec::with_capacity(pool_config.shards);
        for shard_index in 0..pool_config.shards {
            let (tx, rx) = crossbeam::channel::unbounded::<Envelope>();
            let registry: Registry = Arc::new(Mutex::new(HashMap::new()));
            let shard = ServeShard::new(
                config,
                template.clone(),
                teacher_factory(shard_index),
                distill_step_latency,
            )
            .with_session_weights(pool_config.session_weights);
            states.push(Mutex::new(Some(ShardState::new(
                shard,
                rx,
                Arc::clone(&registry),
                pool_config,
                shard_index,
                Arc::clone(&steal),
                Arc::clone(&placements),
                None,
                Arc::clone(&board),
                replicas.clone(),
            ))));
            uplinks.push(tx);
            registries.push(registry);
        }
        let failover = Arc::new(FailoverShared {
            states,
            board: Arc::clone(&board),
            replicas,
        });
        for shard_index in 0..pool_config.shards {
            let worker_failover = Arc::clone(&failover);
            workers.push(std::thread::spawn(move || {
                run_hosted_worker(worker_failover, shard_index, pool_config)
            }));
        }
        Ok(ServerPool {
            pool_config,
            uplinks: Arc::new(uplinks),
            registries,
            steal,
            placements,
            workers,
            shard_wakers: None,
            wire,
            board,
            store,
            template_checkpoint: Some(template_checkpoint),
        })
    }

    /// The pool's configuration.
    pub fn config(&self) -> PoolConfig {
        self.pool_config
    }

    /// Current registered-session count of each shard.
    pub fn shard_loads(&self) -> Vec<usize> {
        self.steal.loads_snapshot()
    }

    /// Connect a new stream: choose its shard per the placement policy,
    /// pre-share its frame content with that shard, enqueue its `Register`
    /// message, and return the client's endpoint. The first downlink message
    /// is the initial student checkpoint.
    ///
    /// Errors if the stream id is already connected to this pool — a second
    /// connect would silently clobber the first session's downlink and
    /// pre-shared frames mid-flight.
    ///
    /// # Example
    ///
    /// ```
    /// use shadowtutor::config::ShadowTutorConfig;
    /// use shadowtutor::serve::{PoolConfig, ServerPool};
    /// use st_net::transport::ClientEndpoint;
    /// use st_net::{ClientToServer, ServerToClient};
    /// use st_nn::student::{StudentConfig, StudentNet};
    /// use st_teacher::OracleTeacher;
    /// use st_video::dataset::tiny_stream;
    /// use st_video::SceneKind;
    /// use std::time::Duration;
    ///
    /// let pool = ServerPool::spawn(
    ///     ShadowTutorConfig::paper(),
    ///     PoolConfig::with_shards(1),
    ///     StudentNet::new(StudentConfig::tiny()).unwrap(),
    ///     0.013,
    ///     |_shard| OracleTeacher::perfect(7),
    /// )
    /// .unwrap();
    ///
    /// // Pre-share the stream's frames and connect; the first downlink
    /// // message is the initial student checkpoint.
    /// let frames = tiny_stream(SceneKind::People, 1, 1);
    /// let mut client = pool.connect(0, &frames).unwrap();
    /// let initial = client.recv_timeout(Duration::from_secs(10)).unwrap();
    /// assert!(matches!(initial, ServerToClient::InitialStudent { .. }));
    ///
    /// client.send(ClientToServer::Shutdown, 1).unwrap();
    /// drop(client);
    /// let stats = pool.join().unwrap();
    /// assert_eq!(stats.streams.len(), 1);
    /// ```
    pub fn connect(&self, stream_id: StreamId, frames: &[Frame]) -> Result<StreamClient> {
        self.connect_with_waker(stream_id, frames, None)
    }

    /// Like [`connect`](Self::connect), but additionally registers a
    /// client-side readiness waker: every downlink delivery for this stream
    /// wakes `waker`'s token. This is what lets one driver thread multiplex
    /// many client endpoints through a single [`st_net::Poller`] instead of
    /// parking one OS thread per client in `recv_timeout`.
    pub fn connect_with_waker(
        &self,
        stream_id: StreamId,
        frames: &[Frame],
        waker: Option<st_net::Waker>,
    ) -> Result<StreamClient> {
        let (shard, route) = {
            let mut placements = locked(&self.placements);
            if placements.contains_key(&stream_id) {
                return Err(TensorError::InvalidArgument(format!(
                    "stream {stream_id} is already connected to this pool"
                )));
            }
            let shard = match self.pool_config.placement {
                PlacementPolicy::StaticModulo => self.pool_config.shard_of(stream_id),
                // Rebalance places like least-loaded; the difference is what
                // happens afterwards (runtime migration).
                PlacementPolicy::LeastLoaded | PlacementPolicy::Rebalance => {
                    self.steal.least_loaded()
                }
            };
            // A dead shard accepts no new streams; place on the
            // least-loaded live shard instead.
            let shard = if self.board.is_dead(shard) {
                let loads = self.steal.loads_snapshot();
                let Some(live) = (0..loads.len())
                    .filter(|&candidate| !self.board.is_dead(candidate))
                    .min_by_key(|&candidate| loads[candidate])
                else {
                    return Err(TensorError::InvalidArgument(
                        "every pool shard has failed".into(),
                    ));
                };
                live
            } else {
                shard
            };
            self.steal.load_inc(shard);
            let route: Route = Arc::new(AtomicUsize::new(shard));
            placements.insert(stream_id, Arc::clone(&route));
            (shard, route)
        };
        let (down_tx, down_rx) = crossbeam::channel::unbounded();
        let content = FrameStore::from_frames(frames, self.pool_config.frame_budget_bytes);
        locked(&self.registries[shard]).insert(
            stream_id,
            StreamLink {
                downlink: Downlink {
                    tx: down_tx,
                    waker,
                    wire: Arc::clone(&self.wire),
                },
                frames: content,
            },
        );
        let mut client = StreamClient {
            stream_id,
            uplinks: Arc::clone(&self.uplinks),
            route,
            downlink: down_rx,
            shard_wakers: self.shard_wakers.clone(),
            wire: Arc::clone(&self.wire),
            board: Arc::clone(&self.board),
            downlink_closed: false,
        };
        // Registration is the client's first uplink message; sending it here
        // lets callers immediately block on the initial checkpoint. A failed
        // send (the shard worker died) must roll the placement back, or the
        // id would be burned and the shard's load over-counted forever.
        // Delta-negotiating pools register via `RegisterCaps`: an old server
        // build rejects the unknown tag with a typed error instead of
        // mis-decoding, and a plain `Register` keeps meaning bare snapshots.
        let register = if self.pool_config.delta_updates {
            ClientToServer::RegisterCaps {
                supports_delta: true,
            }
        } else {
            ClientToServer::Register
        };
        if client.send(register, MESSAGE_OVERHEAD_BYTES).is_err() {
            locked(&self.registries[shard]).remove(&stream_id);
            self.steal.load_dec(shard);
            locked(&self.placements).remove(&stream_id);
            return Err(TensorError::InvalidArgument(
                "server pool worker is not accepting connections".into(),
            ));
        }
        Ok(client)
    }

    /// Drop the pool's uplink handles and join every worker, collecting the
    /// aggregate statistics. Clients must have dropped (or finished with)
    /// their `StreamClient`s for the workers' queues to disconnect.
    ///
    /// A worker death no standby recovered from (replication off, or the
    /// standby itself was gone) surfaces as [`PoolError::WorkerFailed`],
    /// carrying the shard index and the actual panic payload. Recovered
    /// deaths are not errors: the adopted shards' reports — assembled by
    /// their standby — appear in the stats like everyone else's.
    pub fn join(mut self) -> std::result::Result<PoolStats, PoolError> {
        drop(self.uplinks);
        drop(self.registries);
        // Reactor shards park until a token wakes them; with the uplinks now
        // gone, one wake per shard is enough for each to observe the
        // disconnect and run its exit protocol.
        if let Some(wakers) = &self.shard_wakers {
            for waker in wakers.iter() {
                waker.wake();
            }
        }
        let shards = self.pool_config.shards;
        let mut outputs: Vec<ShardOutput> = Vec::with_capacity(shards);
        for (worker_index, worker) in self.workers.into_iter().enumerate() {
            match worker.join() {
                Ok(result) => outputs.extend(result?),
                // A panic that escaped the worker's own catch_unwind (e.g.
                // in the reactor's timer plumbing). Thread index equals
                // shard index only under the thread-per-shard driver, but
                // it is the best attribution available here.
                Err(payload) => {
                    return Err(PoolError::WorkerFailed {
                        shard: worker_index,
                        panic_msg: panic_message(payload.as_ref()),
                    });
                }
            }
        }
        // Dead shards return nothing through their join handles; their
        // standby filed their outputs on the board.
        outputs.extend(self.board.take_dead_outputs());
        if let Some((shard, panic_msg)) = self.board.unrecovered_death() {
            return Err(PoolError::WorkerFailed { shard, panic_msg });
        }
        // Reactor workers finalize shards in completion order; present the
        // report in shard order regardless of driver.
        outputs.sort_by_key(|output| output.shard);
        // Measure the store *before* releasing the template pin, so the
        // report reflects what the run actually held resident.
        let store_resident_bytes = self.store.resident_bytes();
        let store_chunk_count = self.store.chunk_count();
        if let Some(template_checkpoint) = self.template_checkpoint.take() {
            self.store.release(template_checkpoint);
        }
        let mut stats = PoolStats {
            shards: Vec::with_capacity(shards),
            streams: HashMap::new(),
            final_checkpoints: HashMap::new(),
            wait_samples: Vec::with_capacity(shards),
            takeover_samples: Vec::new(),
            // ORDER: Relaxed — every writer has been joined above; these
            // loads cannot race.
            wire_bytes_up: self.wire.up.load(Ordering::Relaxed),
            wire_bytes_down: self.wire.down.load(Ordering::Relaxed),
            store_resident_bytes,
            store_chunk_count,
        };
        for output in outputs {
            stats.shards.push(output.stats);
            stats.streams.extend(output.streams);
            stats.final_checkpoints.extend(output.final_checkpoints);
            stats.wait_samples.push(output.wait_samples);
            stats.takeover_samples.extend(output.takeover_samples);
        }
        Ok(stats)
    }
}

/// Per-stream wall-clock accounting the worker keeps alongside the shard
/// (waits and admission decisions are only visible at the worker).
#[derive(Debug, Default, Clone, Copy)]
struct StreamMeter {
    wait_total: Duration,
    wait_max: Duration,
    throttled: usize,
    dropped: usize,
}

/// Wall-clock accumulators merged into [`ShardStats`] when the worker exits.
#[derive(Debug, Default)]
struct WorkerClock {
    queue_wait_total: Duration,
    queue_wait_max: Duration,
    busy_time: Duration,
    /// One wait sample (seconds) per key frame a batch attempted, in
    /// service order — the raw material of the operator report's p50/p99.
    wait_samples: Vec<f64>,
}

/// Jobs parked per stream while the client re-uploads an evicted frame,
/// keyed by frame index. They keep their original arrival timestamps so the
/// eventual wait accounting covers the whole recovery round trip. A frame
/// index maps to *every* job waiting on it (a client may legally re-send a
/// key frame), so one re-share resumes — and one answer reaches — each of
/// them.
type AwaitingFrames = HashMap<StreamId, HashMap<usize, Vec<ScheduledJob>>>;

/// Run one fair co-scheduled batch through the shard and route every
/// response (update, drop ack, or `NeedFrame` recovery request) to its
/// stream's downlink. Jobs whose frame content was evicted are parked in
/// `awaiting` rather than counted — their wait keeps running until they are
/// actually served after the re-share. Every *newly sent* `NeedFrame`
/// request is appended to `need_frames_sent` so the reactor driver can arm
/// a retry timer for it (the legacy driver ignores the list).
///
/// Returns the streams whose session state advanced (an update was
/// computed), i.e. exactly the set whose checkpoint replicas are now stale
/// and must be re-published.
#[allow(clippy::too_many_arguments)]
fn process_scheduled<T: Teacher>(
    shard: &mut ServeShard<T>,
    batch: &[ScheduledJob],
    downlinks: &HashMap<StreamId, Downlink>,
    meters: &mut HashMap<StreamId, StreamMeter>,
    clock: &mut WorkerClock,
    awaiting: &mut AwaitingFrames,
    need_frames_sent: &mut Vec<(StreamId, usize)>,
    lost_acks: &mut usize,
) -> Result<Vec<StreamId>> {
    if batch.is_empty() {
        return Ok(Vec::new());
    }
    let started = Instant::now();
    let jobs: Vec<ShardJob> = batch.iter().map(|s| s.job).collect();
    let outcome = shard.process_batch(&jobs)?;
    let parked: std::collections::HashSet<(StreamId, usize)> = outcome
        .needs_frame
        .iter()
        .map(|j| (j.stream_id, j.frame_index))
        .collect();
    for scheduled in batch {
        let key = (scheduled.job.stream_id, scheduled.job.frame_index);
        if parked.contains(&key) {
            let jobs = awaiting.entry(key.0).or_default().entry(key.1).or_default();
            // One NeedFrame per missing frame, not per waiting job: the
            // first park requests the content, later jobs for the same
            // index just join the queue behind that outstanding request
            // (a duplicate request would only buy a duplicate full-frame
            // upload).
            let request_content = jobs.is_empty();
            jobs.push(*scheduled);
            if request_content {
                if let Some(downlink) = downlinks.get(&key.0) {
                    deliver(
                        downlink,
                        MESSAGE_OVERHEAD_BYTES,
                        ServerToClient::NeedFrame { frame_index: key.1 },
                        lost_acks,
                    );
                }
                need_frames_sent.push(key);
            }
            continue;
        }
        let wait = started.saturating_duration_since(scheduled.enqueued_at);
        clock.queue_wait_total += wait;
        clock.queue_wait_max = clock.queue_wait_max.max(wait);
        clock.wait_samples.push(wait.as_secs_f64());
        let meter = meters.entry(scheduled.job.stream_id).or_default();
        meter.wait_total += wait;
        meter.wait_max = meter.wait_max.max(wait);
    }
    let mut updated: Vec<StreamId> = Vec::new();
    for (stream_id, frame_index, response) in outcome.responses {
        // The session advanced whether or not the client is still there —
        // the replica must follow the weights, not the downlink.
        if !updated.contains(&stream_id) {
            updated.push(stream_id);
        }
        let Some(downlink) = downlinks.get(&stream_id) else {
            continue;
        };
        // Delta-negotiated streams receive a [`WeightPayload`] envelope:
        // the changed chunks against the client's last-acked checkpoint
        // when the stream is known synced, a full snapshot otherwise (a
        // fresh or failover-restored stream re-syncs on its next update).
        // The digest is patched only here — for an update actually put on
        // the downlink — so a stream whose client vanished never advances
        // the base the client is assumed to hold.
        let (encoded, delta_meter) = match shard.delta_track_mut(stream_id) {
            Some(track) => {
                let full_equiv = 1 + response.update.encoded_len();
                if track.synced {
                    let delta = WeightDelta::compute(&response.update, &track.digest);
                    track.digest.patch(&response.update);
                    (
                        Bytes::from(Wire::encode(&WeightPayload::Delta(delta))),
                        Some((true, full_equiv)),
                    )
                } else {
                    track.digest.patch(&response.update);
                    track.synced = true;
                    (
                        Bytes::from(WeightPayload::encode_full(&response.update)),
                        Some((false, full_equiv)),
                    )
                }
            }
            None => (response.update.encode(), None),
        };
        if let Some((is_delta, full_equiv)) = delta_meter {
            if is_delta {
                shard.stats.delta_updates_sent += 1;
            } else {
                shard.stats.full_updates_sent += 1;
            }
            shard.stats.update_bytes_sent += encoded.len();
            shard.stats.update_bytes_full_equiv += full_equiv;
        }
        let payload = Payload::with_data(encoded);
        let bytes = payload.bytes;
        let msg = ServerToClient::StudentUpdate {
            frame_index,
            metric: response.metric,
            distill_steps: response.outcome.steps,
            payload,
        };
        // A client that hung up mid-stream only loses its own updates.
        deliver(downlink, bytes, msg, lost_acks);
    }
    for (job, reason) in outcome.dropped {
        meters.entry(job.stream_id).or_default().dropped += 1;
        if let Some(downlink) = downlinks.get(&job.stream_id) {
            deliver(
                downlink,
                MESSAGE_OVERHEAD_BYTES,
                ServerToClient::Dropped {
                    frame_index: job.frame_index,
                    reason,
                },
                lost_acks,
            );
        }
    }
    clock.busy_time += started.elapsed();
    Ok(updated)
}

/// Credit a door-rejected key frame to the stream's live meter — or, when
/// the stream has already been retired (the post-`Shutdown` race), directly
/// to its final [`StreamServerStats`], so the per-stream drop count cannot
/// silently stay at zero for exactly the frames the accounting exists for.
fn note_drop(
    streams: &mut HashMap<StreamId, StreamServerStats>,
    meters: &mut HashMap<StreamId, StreamMeter>,
    stream_id: StreamId,
) {
    if let Some(stats) = streams.get_mut(&stream_id) {
        stats.dropped += 1;
    } else {
        meters.entry(stream_id).or_default().dropped += 1;
    }
}

/// As [`note_drop`], for admission-control throttles.
fn note_throttle(
    streams: &mut HashMap<StreamId, StreamServerStats>,
    meters: &mut HashMap<StreamId, StreamMeter>,
    stream_id: StreamId,
) {
    if let Some(stats) = streams.get_mut(&stream_id) {
        stats.throttled += 1;
    } else {
        meters.entry(stream_id).or_default().throttled += 1;
    }
}

/// Retire one stream: pull its session out of the shard, merge the worker's
/// wait/throttle/drop meter into the stream stats, and release its load slot.
fn retire<T: Teacher>(
    shard: &mut ServeShard<T>,
    stream_id: StreamId,
    meters: &mut HashMap<StreamId, StreamMeter>,
    steal: &StealRegistry,
    shard_index: usize,
) -> Option<(WeightSnapshot, StreamServerStats)> {
    shard.finish(stream_id).map(|(checkpoint, mut stats)| {
        if let Some(meter) = meters.remove(&stream_id) {
            stats.queue_wait_total = meter.wait_total;
            stats.queue_wait_max = meter.wait_max;
            stats.throttled = meter.throttled;
            stats.dropped = meter.dropped;
        }
        steal.load_dec(shard_index);
        (checkpoint, stats)
    })
}

/// Install a migrated stream on its new shard: session + frame cache,
/// downlink, wait meter, queued jobs (original arrival times intact) and any
/// jobs parked for a frame re-share.
fn adopt_migrated<T: Teacher>(
    migrated: MigratedStream,
    shard: &mut ServeShard<T>,
    scheduler: &mut FairScheduler,
    downlinks: &mut HashMap<StreamId, Downlink>,
    meters: &mut HashMap<StreamId, StreamMeter>,
    awaiting: &mut AwaitingFrames,
    adopted_at: &mut HashMap<StreamId, Instant>,
) {
    let id = migrated.stream_id;
    adopted_at.insert(id, Instant::now());
    shard.adopt_stream(id, migrated.entry);
    downlinks.insert(id, migrated.downlink);
    let meter = meters.entry(id).or_default();
    meter.wait_total += migrated.meter.wait_total;
    meter.wait_max = meter.wait_max.max(migrated.meter.wait_max);
    meter.throttled += migrated.meter.throttled;
    meter.dropped += migrated.meter.dropped;
    for job in migrated.jobs {
        scheduler.push(id, job.job.frame_index, job.enqueued_at);
    }
    if !migrated.awaiting.is_empty() {
        let parked = awaiting.entry(id).or_default();
        for (frame_index, jobs) in migrated.awaiting {
            parked.entry(frame_index).or_default().extend(jobs);
        }
    }
}

/// Fulfil a pending steal request against this shard, if one exists and the
/// shard can spare a stream: hand the stream with the deepest queue — whole,
/// with its session, frame cache, queued jobs and parked re-shares — to the
/// thief's mailbox, and repoint the routing table so new traffic follows it.
///
/// The slot-lock discipline that makes the handoff race-free lives in
/// [`StealCore::fulfil_request`]; this function supplies the donation
/// *policy* (what to give, and when giving rebalances at all).
#[allow(clippy::too_many_arguments)]
fn maybe_donate<T: Teacher>(
    shard: &mut ServeShard<T>,
    scheduler: &mut FairScheduler,
    downlinks: &mut HashMap<StreamId, Downlink>,
    meters: &mut HashMap<StreamId, StreamMeter>,
    awaiting: &mut AwaitingFrames,
    adopted_at: &HashMap<StreamId, Instant>,
    steal: &StealRegistry,
    placements: &Placements,
    shard_index: usize,
    shard_wakers: Option<&[st_net::Waker]>,
) {
    // The donated stream's id crosses from the prepare callback to the
    // delivered callback (which flips its route under the same slot lock).
    let donated = std::cell::Cell::new(None::<StreamId>);
    let outcome = steal.fulfil_request(
        shard_index,
        |_thief| {
            // Donate only when it actually rebalances: either there is
            // queued work *besides* the donated stream's queue, or this
            // shard keeps at least one other live session (whose future
            // arrivals it will serve while the thief drains the donated
            // backlog). A shard whose only session is its only backlog
            // never donates — that would just swap which worker idles. The
            // request stays pending otherwise — the backlog may deepen.
            let (stream_id, depth) = scheduler.busiest_stream()?;
            if scheduler.len() <= depth && shard.stream_count() < 2 {
                return None;
            }
            // A freshly adopted stream is sticky: it must receive real
            // service before it can hop again, or an idle pair of shards
            // could bounce it between them faster than either drains it.
            if adopted_at
                .get(&stream_id)
                .is_some_and(|at| at.elapsed() < STEAL_STICKY)
            {
                return None;
            }
            // Only registered streams ever queue jobs, so the downlink is
            // present; decline (rather than panic) if it somehow is not.
            let downlink = downlinks.remove(&stream_id)?;
            let jobs = scheduler.remove_stream(stream_id);
            let Some(entry) = shard.evict_stream(stream_id) else {
                // Same impossible case: restore what was taken.
                for job in jobs {
                    scheduler.push(stream_id, job.job.frame_index, job.enqueued_at);
                }
                downlinks.insert(stream_id, downlink);
                return None;
            };
            let meter = meters.remove(&stream_id).unwrap_or_default();
            let parked: Vec<(usize, Vec<ScheduledJob>)> = awaiting
                .remove(&stream_id)
                .map(|m| m.into_iter().collect())
                .unwrap_or_default();
            donated.set(Some(stream_id));
            Some((
                MigratedStream {
                    stream_id,
                    from_shard: shard_index,
                    entry,
                    downlink,
                    meter,
                    jobs,
                    awaiting: parked,
                },
                scheduler.len(),
            ))
        },
        |thief| {
            // Routing flips only after the stream is in the mailbox, so
            // traffic that beats the thief's next mailbox drain is deferred
            // there, never lost.
            if let Some(stream_id) = donated.get() {
                if let Some(route) = locked(placements).get(&stream_id) {
                    route.store(thief, Ordering::SeqCst);
                }
            }
        },
    );
    if let FulfilOutcome::Delivered { thief } = outcome {
        // Under the reactor, the thief may be asleep in the poller rather
        // than spinning on its steal tick — hand it the wakeup with the
        // stream.
        if let Some(wakers) = shard_wakers {
            wakers[thief].wake();
        }
    }
}

/// All of one shard's serving state and its event handlers: uplink receiver,
/// fair scheduler, adaptive batcher, per-stream downlinks and meters, parked
/// re-share jobs, steal-protocol bookkeeping, and the exit protocol. Both
/// pool drivers run exactly this state machine:
///
/// * the **thread-per-shard** driver ([`run_worker`]) wraps one `ShardState`
///   in a blocking loop, parking in `recv_timeout` between arrivals;
/// * the **reactor** driver ([`run_reactor_worker`]) hosts every shard's
///   `ShardState` behind a mutex on a fixed worker set, running
///   [`run_pass`](Self::run_pass) whenever the shard's readiness token wakes
///   or one of its timers fires.
///
/// The handlers mirror the event sources: [`on_frame`](Self::on_frame) for
/// an uplink envelope, [`on_migration`](Self::on_migration) for a mailbox
/// handoff, [`on_need_frame_retry`](Self::on_need_frame_retry) for a retry
/// timer, and disconnect detection inside [`drain_uplink`](Self::drain_uplink).
struct ShardState<T: Teacher> {
    shard_index: usize,
    pool_config: PoolConfig,
    stealing: bool,
    shard: ServeShard<T>,
    rx: crossbeam::channel::Receiver<Envelope>,
    registry: Registry,
    steal: Arc<StealRegistry>,
    placements: Placements,
    /// Reactor pools: one waker per shard, used to nudge the owner of
    /// forwarded traffic, the thief of a donated stream, and ourselves when
    /// a pass leaves backlog behind. `None` under the legacy driver.
    shard_wakers: Option<Arc<Vec<st_net::Waker>>>,
    scheduler: FairScheduler,
    batcher: AdaptiveBatch,
    downlinks: HashMap<StreamId, Downlink>,
    meters: HashMap<StreamId, StreamMeter>,
    streams: HashMap<StreamId, StreamServerStats>,
    final_checkpoints: HashMap<StreamId, WeightSnapshot>,
    awaiting: AwaitingFrames,
    deferred: Vec<Envelope>,
    requested: Option<(usize, Instant)>,
    adopted_at: HashMap<StreamId, Instant>,
    idle_since: Option<Instant>,
    clock: WorkerClock,
    uplink_bytes: usize,
    throttled: usize,
    enqueue_drops: usize,
    unknown_registers: usize,
    forwarded: usize,
    batch_limit_peak: usize,
    disconnected: bool,
    /// `NeedFrame` requests sent during the current pass; the reactor arms
    /// a retry timer for each (the legacy driver clears and ignores them).
    need_frames_sent: Vec<(StreamId, usize)>,
    /// True while a steal-poll `Tick` timer is armed for this shard, so idle
    /// passes do not stack duplicate ticks.
    tick_pending: bool,
    events_dispatched: usize,
    timer_fires: usize,
    poll_wakeups: usize,
    idle_streams_peak: usize,
    /// Failover blackboard (liveness, deaths, adoption claims).
    board: Arc<FailoverBoard>,
    /// Checkpoint-replica store; `Some` iff [`PoolConfig::replication`].
    replicas: Option<Arc<ReplicaStore>>,
    /// Co-scheduled batches completed — the fault plan's kill clock.
    batches_processed: usize,
    /// Remaining mailbox drains to skip ([`FaultPlan::defer_mailbox`]).
    defer_mailbox_left: u32,
    /// A torn kill parks the batch it tore out of the scheduler here on the
    /// way down, so the adopting standby can drop-ack exactly those jobs
    /// with [`DropReason::ShardFailed`].
    torn_jobs: Vec<ScheduledJob>,
    /// Uplink receivers of shards this one adopted: their clients may have
    /// enqueued traffic before the routing flip, so the standby drains them
    /// alongside its own for the rest of the pool's life.
    adopted_rx: Vec<crossbeam::channel::Receiver<Envelope>>,
    /// Connect-time registries of adopted shards, consulted when a
    /// `Register` raced the death.
    adopted_registries: Vec<Registry>,
    /// Which shard each `adopted_registries`/`adopted_rx` entry came from.
    adopted_shards: Vec<usize>,
    failovers: usize,
    streams_adopted: usize,
    frames_lost: usize,
    lost_acks: usize,
    replica_published: usize,
    replica_shared: usize,
    takeover_samples: Vec<f64>,
    /// Last sampled copy-on-write session memory split (shared vs private
    /// against the template), refreshed once per processed batch.
    session_memory: SessionMemory,
    /// Peak private session bytes observed across samples.
    session_private_peak: usize,
}

/// What one [`ShardState::run_pass`] left behind, telling the reactor driver
/// which follow-up events to arm.
struct PassOutcome {
    /// The shard ran its exit protocol to completion; the state can be
    /// finalized with [`ShardState::finish`].
    done: bool,
    /// Every uplink handle is gone (shutdown drain in progress).
    disconnected: bool,
    /// The scheduler still holds queued jobs — re-wake immediately so the
    /// next batch runs without waiting for new traffic.
    backlog: bool,
    /// The shard is an idle participant in the steal protocol and needs a
    /// `steal_poll` tick to keep offering/requesting work.
    idle_stealing: bool,
    /// `NeedFrame` requests sent this pass, each wanting a retry timer.
    need_frames: Vec<(StreamId, usize)>,
}

impl<T: Teacher> ShardState<T> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        shard: ServeShard<T>,
        rx: crossbeam::channel::Receiver<Envelope>,
        registry: Registry,
        pool_config: PoolConfig,
        shard_index: usize,
        steal: Arc<StealRegistry>,
        placements: Placements,
        shard_wakers: Option<Arc<Vec<st_net::Waker>>>,
        board: Arc<FailoverBoard>,
        replicas: Option<Arc<ReplicaStore>>,
    ) -> Self {
        let batcher = AdaptiveBatch::new(pool_config.max_batch, pool_config.adaptive_batch);
        let batch_limit_peak = batcher.limit();
        let defer_mailbox_left = if pool_config.fault_plan.target == Some(shard_index) {
            pool_config.fault_plan.defer_mailbox
        } else {
            0
        };
        ShardState {
            shard_index,
            pool_config,
            stealing: pool_config.stealing(),
            shard,
            rx,
            registry,
            steal,
            placements,
            shard_wakers,
            scheduler: FairScheduler::new(pool_config.quantum),
            batcher,
            downlinks: HashMap::new(),
            meters: HashMap::new(),
            streams: HashMap::new(),
            final_checkpoints: HashMap::new(),
            awaiting: HashMap::new(),
            deferred: Vec::new(),
            requested: None,
            adopted_at: HashMap::new(),
            idle_since: None,
            clock: WorkerClock::default(),
            uplink_bytes: 0,
            throttled: 0,
            enqueue_drops: 0,
            unknown_registers: 0,
            forwarded: 0,
            batch_limit_peak,
            disconnected: false,
            need_frames_sent: Vec::new(),
            tick_pending: false,
            events_dispatched: 0,
            timer_fires: 0,
            poll_wakeups: 0,
            idle_streams_peak: 0,
            board,
            replicas,
            batches_processed: 0,
            defer_mailbox_left,
            torn_jobs: Vec::new(),
            adopted_rx: Vec::new(),
            adopted_registries: Vec::new(),
            adopted_shards: Vec::new(),
            failovers: 0,
            streams_adopted: 0,
            frames_lost: 0,
            lost_acks: 0,
            replica_published: 0,
            replica_shared: 0,
            takeover_samples: Vec::new(),
            session_memory: SessionMemory::default(),
            session_private_peak: 0,
        }
    }

    /// Adopt migrated streams and ingest forwarded traffic before touching
    /// the uplink, so a handoff is always visible before any envelope that
    /// raced past it. Also performs steal-request housekeeping: a victim
    /// that exited (or fulfilled through the mailbox) clears the slot; drop
    /// the marker once it no longer names us. A request that has sat
    /// unanswered past the re-target window is withdrawn instead, so a
    /// victim that can never donate (e.g. a lone backlogged session) does
    /// not pin this thief while a third shard drowns.
    fn ingest_mailbox(&mut self, incoming: &mut Vec<Envelope>) {
        if !self.stealing {
            return;
        }
        // Injected delivery-delay fault: skip the drain entirely, leaving
        // migrations and forwarded traffic sitting in the mailbox one extra
        // pass per deferral.
        if self.defer_mailbox_left > 0 {
            self.defer_mailbox_left -= 1;
            return;
        }
        let (migrated, mut mailbox_envelopes) = self.steal.drain_mailbox(self.shard_index);
        for stream in migrated {
            // Whatever we were waiting for, work has arrived.
            self.requested = None;
            self.on_migration(stream);
        }
        incoming.append(&mut mailbox_envelopes);
        if let Some((victim, posted_at)) = self.requested {
            let withdraw = posted_at.elapsed() >= STEAL_RETARGET;
            match self
                .steal
                .review_request(victim, self.shard_index, withdraw)
            {
                RequestReview::Pending => {}
                RequestReview::Gone | RequestReview::Withdrawn => self.requested = None,
            }
        }
    }

    /// A whole stream arrived through the steal mailbox: adopt its session,
    /// frame cache, queued jobs and downlink.
    fn on_migration(&mut self, migrated: MigratedStream) {
        self.events_dispatched += 1;
        // The stream's checkpoint replica follows it: the content did not
        // change, only which shard's death would orphan it.
        if let Some(store) = &self.replicas {
            store.move_owner(migrated.stream_id, migrated.from_shard, self.shard_index);
        }
        adopt_migrated(
            migrated,
            &mut self.shard,
            &mut self.scheduler,
            &mut self.downlinks,
            &mut self.meters,
            &mut self.awaiting,
            &mut self.adopted_at,
        );
    }

    /// Drain every envelope currently sitting in the uplink without
    /// blocking. `Empty` only means "no more traffic right now";
    /// `Disconnected` means every uplink handle is gone and the shard should
    /// flush its backlog and exit.
    fn drain_uplink(&mut self, incoming: &mut Vec<Envelope>) {
        loop {
            match self.rx.try_recv() {
                Ok(envelope) => incoming.push(envelope),
                Err(crossbeam::channel::TryRecvError::Empty) => break,
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    self.disconnected = true;
                    break;
                }
            }
        }
        // Dead shards' uplinks keep receiving from clients that loaded the
        // route before the takeover flipped it; as their adopter we drain
        // those queues for the rest of the pool's life. (Only *our* uplink
        // decides `disconnected` — an adopted channel closing just means
        // its last client left.)
        for rx in &self.adopted_rx {
            while let Ok(envelope) = rx.try_recv() {
                incoming.push(envelope);
            }
        }
    }

    /// Handle one uplink envelope: control messages in arrival order; key
    /// frames into the fair per-stream queues, gated by admission control.
    fn on_frame(&mut self, envelope: Envelope) -> Result<()> {
        self.events_dispatched += 1;
        let stream_id = envelope.tagged.stream_id;
        // Elastic pools: traffic for a stream that lives elsewhere follows
        // it. A stream placed here that is neither live, nor retired, nor
        // awaiting its connect-time Register is mid-migration toward us —
        // defer its traffic until the mailbox delivers the stream itself.
        if self.stealing
            && !self.shard.has_stream(stream_id)
            && !matches!(
                envelope.tagged.message,
                ClientToServer::Register | ClientToServer::RegisterCaps { .. }
            )
        {
            let owner = locked(&self.placements)
                .get(&stream_id)
                .map(|route| route.load(Ordering::SeqCst));
            match owner {
                Some(other)
                    if other != self.shard_index && self.adopted_shards.contains(&other) =>
                {
                    // The route still names a shard whose streams we
                    // adopted; its mailbox is closed, so forwarding would
                    // strand the envelope. Re-point the route here and
                    // serve the envelope locally.
                    if let Some(route) = locked(&self.placements).get(&stream_id) {
                        route.store(self.shard_index, Ordering::SeqCst);
                    }
                }
                Some(other) if other != self.shard_index => {
                    match self.steal.forward_envelope(other, envelope) {
                        Ok(()) => {
                            self.forwarded += 1;
                            // The owner may be parked; hand-delivered mail
                            // still needs a doorbell.
                            if let Some(wakers) = &self.shard_wakers {
                                wakers[other].wake();
                            }
                        }
                        Err(undelivered) if self.board.is_dead(other) => {
                            // The owner died and its standby is mid-takeover
                            // (the mailbox closes before the routing flip).
                            // Defer: the retry after the next mailbox drain
                            // will see the flipped route.
                            self.deferred.push(undelivered);
                        }
                        Err(_undelivered) => {
                            // The owning worker already exited (so its
                            // clients are long gone and no ack could be
                            // delivered); count the loss in this shard's
                            // dropped_jobs instead of posting into a dead
                            // letter box. The stream's own per-stream stats
                            // were frozen when it retired over there, so the
                            // pool-level counter is the only honest place
                            // left to record it.
                            self.enqueue_drops += 1;
                        }
                    }
                    return Ok(());
                }
                Some(_)
                    if !self.streams.contains_key(&stream_id)
                        && !locked(&self.registry).contains_key(&stream_id) =>
                {
                    self.deferred.push(envelope);
                    return Ok(());
                }
                _ => {}
            }
        }
        self.uplink_bytes += envelope.bytes;
        match envelope.tagged.message {
            ClientToServer::Register | ClientToServer::RegisterCaps { .. } => {
                let supports_delta = matches!(
                    envelope.tagged.message,
                    ClientToServer::RegisterCaps {
                        supports_delta: true
                    }
                );
                let mut link = locked(&self.registry).remove(&stream_id);
                if link.is_none() {
                    // A Register that raced its shard's death lands here
                    // via the adopted uplink; the connect-time entry still
                    // sits in the dead shard's registry. Serve it — and
                    // re-home the connect-time load credit.
                    for (slot, registry) in self.adopted_registries.iter().enumerate() {
                        if let Some(found) = locked(registry).remove(&stream_id) {
                            self.steal.load_dec(self.adopted_shards[slot]);
                            self.steal.load_inc(self.shard_index);
                            link = Some(found);
                            break;
                        }
                    }
                }
                let Some(link) = link else {
                    // Register without a connect-time registry entry —
                    // counted instead of silently ignored.
                    self.unknown_registers += 1;
                    return Ok(());
                };
                let initial = self.shard.register(stream_id, link.frames, supports_delta);
                // Delta-negotiated streams get the initial checkpoint inside
                // a `WeightPayload::Full` envelope — always applicable, and
                // it seeds the client's digest for later deltas.
                let encoded = if supports_delta {
                    Bytes::from(WeightPayload::encode_full(&initial))
                } else {
                    initial.encode()
                };
                let payload = Payload::with_data(encoded);
                let bytes = payload.bytes;
                deliver(
                    &link.downlink,
                    bytes,
                    ServerToClient::InitialStudent { payload },
                    &mut self.lost_acks,
                );
                self.downlinks.insert(stream_id, link.downlink);
                // The registration-time checkpoint is the replica's
                // baseline: from here on the stream is recoverable.
                self.publish_replicas(&[stream_id]);
            }
            ClientToServer::KeyFrame {
                frame_index,
                payload: _,
            } => {
                // Unservable jobs are refused at the door with an explicit
                // ack instead of being silently filtered later. (An
                // *evicted* frame is not unservable — its index is still
                // known and its content recoverable.)
                let reject = if !self.shard.has_stream(stream_id) {
                    Some(DropReason::UnknownStream)
                } else if !self.shard.has_frame(stream_id, frame_index) {
                    Some(DropReason::UnknownFrame)
                } else {
                    None
                };
                if let Some(reason) = reject {
                    self.enqueue_drops += 1;
                    note_drop(&mut self.streams, &mut self.meters, stream_id);
                    if let Some(downlink) = self.downlinks.get(&stream_id) {
                        deliver(
                            downlink,
                            MESSAGE_OVERHEAD_BYTES,
                            ServerToClient::Dropped {
                                frame_index,
                                reason,
                            },
                            &mut self.lost_acks,
                        );
                    }
                    return Ok(());
                }
                // Admission control: per-stream in-flight cap. Jobs parked
                // for a frame re-share still hold their slots.
                let parked = self
                    .awaiting
                    .get(&stream_id)
                    .map_or(0, |m| m.values().map(Vec::len).sum());
                if self.scheduler.queued_for(stream_id) + parked >= self.pool_config.max_in_flight {
                    self.throttled += 1;
                    note_throttle(&mut self.streams, &mut self.meters, stream_id);
                    if let Some(downlink) = self.downlinks.get(&stream_id) {
                        deliver(
                            downlink,
                            MESSAGE_OVERHEAD_BYTES,
                            ServerToClient::Throttle { frame_index },
                            &mut self.lost_acks,
                        );
                    }
                    return Ok(());
                }
                self.scheduler
                    .push(stream_id, frame_index, envelope.enqueued_at);
            }
            ClientToServer::ReShare {
                frame_index,
                payload: _,
            } => {
                // Restore evicted content and resume the parked job with its
                // original arrival time, so its reported wait covers the
                // whole recovery round trip.
                let restored = match envelope.frame {
                    Some(frame) if frame.index == frame_index => {
                        self.shard.reshare(stream_id, frame)
                    }
                    _ => false,
                };
                if restored {
                    if let Some(jobs) = self
                        .awaiting
                        .get_mut(&stream_id)
                        .and_then(|m| m.remove(&frame_index))
                    {
                        for job in jobs {
                            self.scheduler.push(stream_id, frame_index, job.enqueued_at);
                        }
                    }
                    // An unsolicited re-share just refreshed the cache.
                    return Ok(());
                }
                // No session, an index that was never shared, or a
                // content-less re-share: the parked jobs (if any) can never
                // be served — ack each explicitly, never silently.
                let reason = if self.shard.has_stream(stream_id) {
                    DropReason::UnknownFrame
                } else {
                    DropReason::UnknownStream
                };
                let stranded = self
                    .awaiting
                    .get_mut(&stream_id)
                    .and_then(|m| m.remove(&frame_index))
                    .map_or(1, |jobs| jobs.len());
                for _ in 0..stranded {
                    self.enqueue_drops += 1;
                    note_drop(&mut self.streams, &mut self.meters, stream_id);
                    if let Some(downlink) = self.downlinks.get(&stream_id) {
                        deliver(
                            downlink,
                            MESSAGE_OVERHEAD_BYTES,
                            ServerToClient::Dropped {
                                frame_index,
                                reason,
                            },
                            &mut self.lost_acks,
                        );
                    }
                }
            }
            ClientToServer::Shutdown => {
                // Flush the stream's still-queued key frames so its last
                // updates are not lost, then retire the session.
                let remaining = self.scheduler.remove_stream(stream_id);
                for chunk in remaining.chunks(self.batcher.limit().max(1)) {
                    // The flush's updates need no replica refresh: the
                    // session retires (and its replica is dropped) below.
                    process_scheduled(
                        &mut self.shard,
                        chunk,
                        &self.downlinks,
                        &mut self.meters,
                        &mut self.clock,
                        &mut self.awaiting,
                        &mut self.need_frames_sent,
                        &mut self.lost_acks,
                    )?;
                }
                // Jobs still parked for a re-share can never be served now —
                // ack them before the session's stats freeze.
                if let Some(parked) = self.awaiting.remove(&stream_id) {
                    for (frame_index, jobs) in parked {
                        for _job in jobs {
                            self.enqueue_drops += 1;
                            note_drop(&mut self.streams, &mut self.meters, stream_id);
                            if let Some(downlink) = self.downlinks.get(&stream_id) {
                                deliver(
                                    downlink,
                                    MESSAGE_OVERHEAD_BYTES,
                                    ServerToClient::Dropped {
                                        frame_index,
                                        reason: DropReason::UnknownFrame,
                                    },
                                    &mut self.lost_acks,
                                );
                            }
                        }
                    }
                }
                if let Some((checkpoint, stream_stats)) = retire(
                    &mut self.shard,
                    stream_id,
                    &mut self.meters,
                    &self.steal,
                    self.shard_index,
                ) {
                    self.streams.insert(stream_id, stream_stats);
                    self.final_checkpoints.insert(stream_id, checkpoint);
                }
                // A retired stream has nothing left to fail over.
                if let Some(store) = &self.replicas {
                    store.remove(self.shard_index, stream_id);
                }
                // The downlink stays open so late key frames of this stream
                // still receive an explicit Dropped ack.
            }
        }
        Ok(())
    }

    /// Steal participation: publish our backlog, serve a thief's pending
    /// request, and — once *patiently* idle — ask the most-loaded shard for
    /// work. Patience keeps a shard that is merely between its own streams'
    /// arrivals from pulling someone else's backlog over.
    fn steal_participation(&mut self) {
        if !self.stealing || self.disconnected {
            return;
        }
        self.steal
            .publish_backlog(self.shard_index, self.scheduler.len());
        maybe_donate(
            &mut self.shard,
            &mut self.scheduler,
            &mut self.downlinks,
            &mut self.meters,
            &mut self.awaiting,
            &self.adopted_at,
            &self.steal,
            &self.placements,
            self.shard_index,
            self.shard_wakers.as_deref().map(Vec::as_slice),
        );
        if self.scheduler.is_empty() {
            let idle_for = self.idle_since.get_or_insert_with(Instant::now).elapsed();
            if self.requested.is_none() && idle_for >= self.pool_config.steal_patience {
                self.requested = self
                    .steal
                    .post_request(self.shard_index, MIN_STEAL_BACKLOG)
                    .map(|v| (v, Instant::now()));
            }
        } else {
            self.idle_since = None;
            if let Some((victim, _posted_at)) = self.requested.take() {
                // Local work arrived; withdraw the request (if the victim
                // already fulfilled it, the next mailbox drain adopts it —
                // either way the marker is dropped).
                let _ = self.steal.withdraw_request(victim, self.shard_index);
            }
        }
    }

    /// One fair co-scheduled batch per pass; the driver re-polls the uplink
    /// between batches so new arrivals join the next scheduling round.
    fn process_one_batch(&mut self) -> Result<()> {
        // Injected kill: fires only while work is pending, so the crash
        // always has observable consequences. A clean kill panics *before*
        // the scheduler drain (every queued job survives in the carcass); a
        // torn kill drains the batch first and parks it in `torn_jobs`, so
        // exactly one in-flight batch is genuinely lost and the standby
        // must drop-ack it with `DropReason::ShardFailed`.
        let plan = self.pool_config.fault_plan;
        if plan.kill_due(self.shard_index, self.batches_processed) && !self.scheduler.is_empty() {
            if plan.torn_kill {
                self.torn_jobs = self.scheduler.next_batch(self.batcher.limit());
            }
            panic!(
                "fault injection (seed {}): shard {} killed at batch {}",
                plan.seed, self.shard_index, self.batches_processed
            );
        }
        let batch = self.scheduler.next_batch(self.batcher.limit());
        if batch.is_empty() {
            return Ok(());
        }
        let updated = process_scheduled(
            &mut self.shard,
            &batch,
            &self.downlinks,
            &mut self.meters,
            &mut self.clock,
            &mut self.awaiting,
            &mut self.need_frames_sent,
            &mut self.lost_acks,
        )?;
        self.publish_replicas(&updated);
        self.batches_processed += 1;
        // Sample the copy-on-write memory split once per batch: pointer
        // compares per tensor, far off the per-frame fast path, and a batch
        // is exactly when private storage can grow (optimizer writes).
        self.session_memory = self.shard.memory_profile();
        self.session_private_peak = self
            .session_private_peak
            .max(self.session_memory.private_bytes);
        self.batcher.observe(
            self.scheduler.len(),
            self.shard.batch_growth_pays(self.batcher.limit()),
        );
        self.batch_limit_peak = self.batch_limit_peak.max(self.batcher.limit());
        Ok(())
    }

    /// Re-publish the checkpoint replicas of every stream whose session
    /// just advanced. Content-hash chunking means the parts a partial
    /// distillation never unfreezes are deduplicated, not recopied.
    fn publish_replicas(&mut self, updated: &[StreamId]) {
        let Some(store) = self.replicas.clone() else {
            return;
        };
        for &stream_id in updated {
            let Some((checkpoint, key_frames, distill_steps, known_frames, supports_delta)) =
                self.shard.session_replica(stream_id)
            else {
                continue;
            };
            let stats = store.publish(
                self.shard_index,
                stream_id,
                &checkpoint,
                key_frames,
                distill_steps,
                self.scheduler.deficit_of(stream_id),
                known_frames,
                supports_delta,
            );
            self.replica_published += stats.new_bytes;
            self.replica_shared += stats.shared_bytes;
        }
    }

    /// Record the high-water mark of registered-but-quiet streams — the
    /// population a reactor host carries for free and a thread-per-shard
    /// host pays a parked OS thread for.
    fn note_idle_streams(&mut self) {
        let idle = self
            .shard
            .stream_count()
            .saturating_sub(self.scheduler.active_streams());
        self.idle_streams_peak = self.idle_streams_peak.max(idle);
    }

    /// The uplink is disconnected and the backlog drained: may the shard
    /// exit now? Under stealing, make sure no handoff can be in flight
    /// toward this worker before exiting, or the migrated stream's
    /// checkpoint would be lost. Cancelling under the request slot's lock
    /// guarantees any fulfilment is already in the mailbox, which the next
    /// pass drains — so a `false` answer means "run another pass first".
    fn ready_to_exit(&mut self) -> bool {
        if !self.stealing {
            return true;
        }
        if let Some((victim, _posted_at)) = self.requested.take() {
            if !self.steal.withdraw_request(victim, self.shard_index) {
                // A fulfilment is (or was) in flight: the stream is already
                // in our mailbox; run another pass to adopt it first.
                return false;
            }
        }
        self.steal.mailbox_streams_empty(self.shard_index)
    }

    /// The shard whose death this one stands by for: its predecessor in the
    /// ring (shard `k`'s standby is `k + 1`, so shard `b` watches `b - 1`).
    fn ward(&self) -> usize {
        (self.shard_index + self.pool_config.shards - 1) % self.pool_config.shards
    }

    /// Failover housekeeping, run once per pass: beat our liveness epoch
    /// and, as the warm standby for our ward, adopt its streams if it died.
    /// The claim CAS guarantees exactly one adopter even if another path
    /// (e.g. a future multi-standby scheme) races us.
    fn failover_tick(&mut self, failover: &FailoverShared<T>) -> Result<()> {
        self.board.beat(self.shard_index);
        if self.replicas.is_none() {
            return Ok(());
        }
        let ward = self.ward();
        if ward != self.shard_index && self.board.is_dead(ward) && self.board.try_claim(ward) {
            self.take_over(ward, failover)?;
        }
        Ok(())
    }

    /// Adopt a dead ward's entire serving surface: restore its sessions
    /// from their replicated checkpoints, flip its routes here, re-queue
    /// its surviving jobs, drop-ack what is genuinely lost, and assemble
    /// its final report from the carcass.
    fn take_over(&mut self, dead: usize, failover: &FailoverShared<T>) -> Result<()> {
        // The carcass: the dead worker's state machine, left in its slot by
        // the unwind. `locked` recovers the poison the unwind left behind.
        // An empty slot means the shard actually finished cleanly and the
        // death raced the exit — nothing to adopt.
        let Some(mut carcass) = locked(&failover.states[dead]).take() else {
            return Ok(());
        };
        // The dead thief can no longer answer a fulfilment. If the
        // withdrawal loses the race, the stream is already in the dead
        // shard's mailbox — the close below adopts it.
        if let Some((victim, _posted_at)) = carcass.requested.take() {
            let _ = self.steal.withdraw_request(victim, dead);
        }
        // Close the dead shard's mailbox: streams donated to it are adopted
        // here (they exist nowhere else — the donor already released them);
        // forwarded envelopes are deferred and retried once routes flip.
        let (stranded, leftovers) = self.steal.close_mailbox(dead);
        for migrated in stranded {
            self.streams_adopted += 1;
            self.on_migration(migrated);
        }
        self.deferred.extend(leftovers);
        // Zero the dead shard's steal surface so no thief keeps waiting on
        // it and no donor targets it.
        self.steal.clear_request(dead);
        self.steal.publish_backlog(dead, 0);
        // Routing flip: every stream the table still points at the dead
        // shard — including connected-but-unregistered ones — now routes
        // here. Clients that loaded the old value already enqueued into the
        // dead uplink, which we drain via `adopted_rx` below.
        {
            let placements = locked(&self.placements);
            for route in placements.values() {
                if route.load(Ordering::SeqCst) == dead {
                    route.store(self.shard_index, Ordering::SeqCst);
                }
            }
        }
        // Restore every replicated session: full weights from the
        // content-addressed store, distillation counters, unspent DRR
        // deficit, and a known-but-evicted frame cache whose content the
        // existing NeedFrame/ReShare recovery re-fetches on demand.
        let mut restored: Vec<StreamId> = Vec::new();
        if let Some(store) = self.replicas.clone() {
            for (stream_id, replica) in store.take_owner(dead) {
                let frames = FrameStore::from_known_indices(
                    &replica.known_frames,
                    self.pool_config.frame_budget_bytes,
                );
                self.shard.restore_stream(
                    stream_id,
                    &replica.snapshot,
                    replica.key_frames,
                    replica.distill_steps,
                    frames,
                    replica.supports_delta,
                )?;
                self.scheduler.set_deficit(stream_id, replica.deficit);
                self.steal.load_dec(dead);
                self.steal.load_inc(self.shard_index);
                self.streams_adopted += 1;
                restored.push(stream_id);
            }
        }
        // The adopted sessions are ours now; replicate them under our slot
        // so a second failure stays recoverable.
        self.publish_replicas(&restored);
        // Per-stream plumbing survives the crash: downlinks (the clients
        // are still connected) and live wait meters.
        for (stream_id, downlink) in carcass.downlinks.drain() {
            self.downlinks.entry(stream_id).or_insert(downlink);
        }
        for (stream_id, meter) in carcass.meters.drain() {
            let merged = self.meters.entry(stream_id).or_default();
            merged.wait_total += meter.wait_total;
            merged.wait_max = merged.wait_max.max(meter.wait_max);
            merged.throttled += meter.throttled;
            merged.dropped += meter.dropped;
        }
        // Queued jobs survived in the carcass scheduler (a clean kill fires
        // before the drain): re-queue them with their original arrival
        // times. A job whose stream has no restored session is
        // unrecoverable — explicit ShardFailed ack, never silence.
        let requeued = carcass.scheduler.drain_all();
        let torn = std::mem::take(&mut carcass.torn_jobs);
        for job in requeued {
            let stream_id = job.job.stream_id;
            if self.shard.has_stream(stream_id) {
                self.scheduler
                    .push(stream_id, job.job.frame_index, job.enqueued_at);
            } else {
                self.drop_failed_job(stream_id, job.job.frame_index);
            }
        }
        // A torn kill's in-flight batch died with the shard.
        for job in torn {
            self.drop_failed_job(job.job.stream_id, job.job.frame_index);
        }
        // Jobs parked for a re-share: merge them and re-issue one NeedFrame
        // per parked index — the original request may have been answered
        // into the dead shard's frame cache, which is gone.
        for (stream_id, indices) in carcass.awaiting.drain() {
            let parked = self.awaiting.entry(stream_id).or_default();
            for (frame_index, jobs) in indices {
                let entry = parked.entry(frame_index).or_default();
                let request_content = entry.is_empty();
                entry.extend(jobs);
                if request_content {
                    if let Some(downlink) = self.downlinks.get(&stream_id) {
                        deliver(
                            downlink,
                            MESSAGE_OVERHEAD_BYTES,
                            ServerToClient::NeedFrame { frame_index },
                            &mut self.lost_acks,
                        );
                    }
                    self.need_frames_sent.push((stream_id, frame_index));
                }
            }
        }
        // Envelopes the dead shard had deferred retry here instead.
        self.deferred.append(&mut carcass.deferred);
        // Adopt the dead shard's ingress for the rest of the pool's life:
        // its uplink receiver (clients may race the routing flip), its
        // connect-time registry (a Register may race the death), and — if
        // the dead shard was itself an adopter — everything *it* adopted.
        let (_closed_tx, closed_rx) = crossbeam::channel::unbounded();
        self.adopted_rx
            .push(std::mem::replace(&mut carcass.rx, closed_rx));
        self.adopted_registries.push(Arc::clone(&carcass.registry));
        self.adopted_shards.push(dead);
        self.adopted_rx.append(&mut carcass.adopted_rx);
        self.adopted_registries
            .append(&mut carcass.adopted_registries);
        self.adopted_shards.append(&mut carcass.adopted_shards);
        // The carcass's sessions were superseded by the replica restore;
        // keep their cache counters, then file the dead shard's report.
        carcass.shard.discard_sessions();
        let died_at = self.board.death_instant(dead);
        self.board.push_dead_output(carcass_output(carcass));
        self.failovers += 1;
        if let Some(died_at) = died_at {
            self.takeover_samples.push(died_at.elapsed().as_secs_f64());
        }
        Ok(())
    }

    /// Ack one job lost to a shard failure with [`DropReason::ShardFailed`].
    fn drop_failed_job(&mut self, stream_id: StreamId, frame_index: usize) {
        self.frames_lost += 1;
        self.enqueue_drops += 1;
        note_drop(&mut self.streams, &mut self.meters, stream_id);
        if let Some(downlink) = self.downlinks.get(&stream_id) {
            deliver(
                downlink,
                MESSAGE_OVERHEAD_BYTES,
                ServerToClient::Dropped {
                    frame_index,
                    reason: DropReason::ShardFailed,
                },
                &mut self.lost_acks,
            );
        }
    }

    /// One non-blocking pass of the shard state machine: failover tick,
    /// mailbox, deferred retries, uplink drain, envelope handlers, steal
    /// participation, one co-scheduled batch. This is the reactor's
    /// dispatch unit; the legacy driver runs the same stages inline so it
    /// can block between them.
    fn run_pass(&mut self, failover: &FailoverShared<T>) -> Result<PassOutcome> {
        self.need_frames_sent.clear();
        // After the clear, never before: a takeover pushes NeedFrame
        // re-requests that this pass's outcome must carry out.
        self.failover_tick(failover)?;
        let mut incoming: Vec<Envelope> = Vec::new();
        self.ingest_mailbox(&mut incoming);
        // Envelopes that arrived ahead of their stream's migration retry
        // after every mailbox drain, ahead of newer traffic.
        let retry: Vec<Envelope> = std::mem::take(&mut self.deferred);
        incoming.splice(0..0, retry);
        self.drain_uplink(&mut incoming);
        if incoming.is_empty() && self.scheduler.is_empty() && self.disconnected {
            let done = self.ready_to_exit();
            return Ok(PassOutcome {
                done,
                disconnected: true,
                backlog: false,
                idle_stealing: false,
                need_frames: Vec::new(),
            });
        }
        for envelope in incoming {
            self.on_frame(envelope)?;
        }
        self.steal_participation();
        self.process_one_batch()?;
        self.note_idle_streams();
        Ok(PassOutcome {
            done: false,
            disconnected: self.disconnected,
            backlog: !self.scheduler.is_empty(),
            idle_stealing: self.stealing && !self.disconnected && self.scheduler.is_empty(),
            need_frames: std::mem::take(&mut self.need_frames_sent),
        })
    }

    /// A `NeedFrame` retry timer fired: if the job is still parked (the
    /// re-share never arrived — e.g. the original request was lost), ask the
    /// client again. Returns whether the shard is still waiting, i.e.
    /// whether the caller should re-arm the timer.
    fn on_need_frame_retry(&mut self, stream_id: StreamId, frame_index: usize) -> bool {
        self.timer_fires += 1;
        self.events_dispatched += 1;
        let still_waiting = self
            .awaiting
            .get(&stream_id)
            .is_some_and(|m| m.contains_key(&frame_index));
        if still_waiting {
            if let Some(downlink) = self.downlinks.get(&stream_id) {
                deliver(
                    downlink,
                    MESSAGE_OVERHEAD_BYTES,
                    ServerToClient::NeedFrame { frame_index },
                    &mut self.lost_acks,
                );
            }
        }
        still_waiting
    }

    /// The exit protocol: ack whatever can never be served now, retire every
    /// remaining session, close steal-protocol state, and assemble the
    /// shard's final output.
    fn finish(mut self) -> ShardOutput {
        // The clients are gone, so re-shares for parked jobs can never
        // arrive: ack and count them instead of letting them vanish.
        let parked: Vec<(StreamId, usize)> = self
            .awaiting
            .iter()
            .flat_map(|(stream, indices)| {
                indices
                    .iter()
                    .flat_map(move |(index, jobs)| jobs.iter().map(move |_| (*stream, *index)))
            })
            .collect();
        for (stream_id, frame_index) in parked {
            self.enqueue_drops += 1;
            note_drop(&mut self.streams, &mut self.meters, stream_id);
            if let Some(downlink) = self.downlinks.get(&stream_id) {
                deliver(
                    downlink,
                    MESSAGE_OVERHEAD_BYTES,
                    ServerToClient::Dropped {
                        frame_index,
                        reason: DropReason::UnknownFrame,
                    },
                    &mut self.lost_acks,
                );
            }
        }
        self.awaiting.clear();
        // Clients that vanished without Shutdown still get their sessions
        // retired so their checkpoints and counters are reported. (The
        // backlog is already drained: drivers only finish a shard once its
        // scheduler is empty.)
        for stream_id in self.shard.session_ids() {
            if let Some((checkpoint, stream_stats)) = retire(
                &mut self.shard,
                stream_id,
                &mut self.meters,
                &self.steal,
                self.shard_index,
            ) {
                self.streams.insert(stream_id, stream_stats);
                self.final_checkpoints.insert(stream_id, checkpoint);
            }
            if let Some(store) = &self.replicas {
                store.remove(self.shard_index, stream_id);
            }
        }
        if self.stealing {
            // No posthumous steal traffic: zero the published backlog,
            // refuse any request a thief may still have parked at us, and
            // close the mailbox — counting any envelope forwarded here since
            // the last drain, so a message lost to the shutdown race still
            // shows up in the drop accounting. (Migrated *streams* cannot be
            // stranded here: the cancel-under-lock exit protocol guarantees
            // that.)
            self.steal.publish_backlog(self.shard_index, 0);
            self.steal.clear_request(self.shard_index);
            let (stranded, leftovers) = self.steal.close_mailbox(self.shard_index);
            debug_assert!(stranded.is_empty(), "stream stranded at exit");
            for envelope in leftovers {
                let stream_id = envelope.tagged.stream_id;
                self.enqueue_drops += 1;
                note_drop(&mut self.streams, &mut self.meters, stream_id);
                if let (
                    Some(downlink),
                    ClientToServer::KeyFrame { frame_index, .. }
                    | ClientToServer::ReShare { frame_index, .. },
                ) = (self.downlinks.get(&stream_id), envelope.tagged.message)
                {
                    deliver(
                        downlink,
                        MESSAGE_OVERHEAD_BYTES,
                        ServerToClient::Dropped {
                            frame_index,
                            reason: DropReason::UnknownStream,
                        },
                        &mut self.lost_acks,
                    );
                }
            }
        }
        carcass_output(self)
    }
}

/// Assemble a shard's final [`ShardOutput`] from its state machine. This is
/// both the tail of the clean exit ([`ShardState::finish`]) and the whole
/// of the post-mortem path — a standby files the dead shard's report from
/// its carcass, so shard-indexed reports stay complete under failover.
fn carcass_output<T: Teacher>(state: ShardState<T>) -> ShardOutput {
    let mut stats = state.shard.stats();
    stats.queue_wait_total = state.clock.queue_wait_total;
    stats.queue_wait_max = state.clock.queue_wait_max;
    stats.busy_time = state.clock.busy_time;
    stats.uplink_bytes = state.uplink_bytes;
    stats.throttled = state.throttled;
    stats.dropped_jobs += state.enqueue_drops;
    stats.unknown_registers = state.unknown_registers;
    stats.batch_limit_peak = state.batch_limit_peak;
    stats.forwarded_messages = state.forwarded;
    stats.events_dispatched = state.events_dispatched;
    stats.timer_fires = state.timer_fires;
    stats.poll_wakeups = state.poll_wakeups;
    stats.idle_streams = state.idle_streams_peak;
    stats.failovers = state.failovers;
    stats.streams_adopted = state.streams_adopted;
    stats.frames_lost_on_failover = state.frames_lost;
    stats.lost_acks = state.lost_acks;
    stats.replica_bytes_published = state.replica_published;
    stats.replica_bytes_shared = state.replica_shared;
    stats.session_bytes_shared = state.session_memory.shared_bytes;
    stats.session_bytes_private = state.session_memory.private_bytes;
    stats.session_bytes_private_peak = state.session_private_peak;
    ShardOutput {
        shard: state.shard_index,
        stats,
        streams: state.streams,
        final_checkpoints: state.final_checkpoints,
        wait_samples: state.clock.wait_samples,
        takeover_samples: state.takeover_samples,
    }
}

/// The thread-per-shard worker: run the blocking loop under
/// `catch_unwind`, so a shard death (injected or real) is published on the
/// failover board instead of silently truncating the pool's report. The
/// unwind drops the loop's state-slot guard, poisoning the mutex and
/// leaving the carcass in place — exactly what the standby's takeover
/// expects to find.
fn run_hosted_worker<T: Teacher>(
    failover: Arc<FailoverShared<T>>,
    shard_index: usize,
    pool_config: PoolConfig,
) -> Result<Vec<ShardOutput>> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_worker_loop(&failover, shard_index, pool_config)
    }));
    match result {
        Ok(done) => done,
        Err(payload) => {
            // Publish the death *after* the unwind released the slot, so a
            // standby that observes it can immediately take the carcass.
            // With replication off, join() surfaces this as WorkerFailed.
            failover
                .board
                .mark_dead(shard_index, panic_message(payload.as_ref()));
            Ok(Vec::new())
        }
    }
}

/// Upper bound on how long an *idle* replicating worker blocks before
/// re-running standby duty (checking its ward for a death certificate) —
/// the thread-per-shard driver's detection cadence. The reactor driver's
/// counterpart is `REACTOR_IDLE_TICK`. `st_sim::FailoverModel::detect_tick`
/// mirrors whichever is larger.
const FAILOVER_TICK: Duration = Duration::from_millis(25);

/// The thread-per-shard worker loop: fair-queue incoming key frames per
/// stream, handle registrations and shutdowns in arrival order, drain
/// deficit-round-robin batches through the shard, and push responses onto
/// each stream's downlink. Under [`PlacementPolicy::Rebalance`] the loop
/// additionally adopts streams migrated to it, donates streams when an idle
/// shard asks, forwards traffic that raced a migration, and — as the warm
/// standby for its ring predecessor — adopts that shard's streams if its
/// worker dies.
///
/// This is a thin blocking driver over [`ShardState`]; the same handlers run
/// event-driven under [`run_reactor_worker`]. Returns a one-element vector so
/// both drivers share the pool's worker-handle type. The worker holds its
/// state-slot guard for its whole life; see [`FailoverShared`].
fn run_worker_loop<T: Teacher>(
    failover: &FailoverShared<T>,
    shard_index: usize,
    pool_config: PoolConfig,
) -> Result<Vec<ShardOutput>> {
    let mut guard = locked(&failover.states[shard_index]);
    loop {
        let Some(state) = guard.as_mut() else {
            // Unreachable in practice: the slot is only emptied by this
            // worker's own exit or by a standby adopting our *death*.
            return Ok(Vec::new());
        };
        state.need_frames_sent.clear();
        // Heartbeat + standby duty (see ShardState::failover_tick). Runs
        // after the clear so a takeover's NeedFrame re-requests survive.
        state.failover_tick(failover)?;
        let mut incoming: Vec<Envelope> = Vec::new();
        state.ingest_mailbox(&mut incoming);
        // Envelopes that arrived ahead of their stream's migration retry
        // after every mailbox drain, ahead of newer traffic.
        let retry: Vec<Envelope> = std::mem::take(&mut state.deferred);
        incoming.splice(0..0, retry);

        // Gather traffic. Block only when there is no backlog to work on;
        // with queued jobs, poll so service keeps flowing between arrivals.
        if incoming.is_empty() && state.scheduler.is_empty() {
            if state.disconnected {
                if state.ready_to_exit() {
                    break;
                }
                continue;
            }
            // A stealing worker wakes every `steal_poll` to look for (and
            // offer) work; a replicating worker wakes every `FAILOVER_TICK`
            // so standby duty (death detection) stays bounded even when
            // idle; a static worker can block the full timeout.
            let timeout = if state.stealing {
                pool_config.recv_timeout.min(pool_config.steal_poll)
            } else if failover.board.replication {
                pool_config.recv_timeout.min(FAILOVER_TICK)
            } else {
                pool_config.recv_timeout
            };
            match state.rx.recv_timeout(timeout) {
                Ok(envelope) => incoming.push(envelope),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    if !state.stealing && !failover.board.replication {
                        continue;
                    }
                    // Fall through so the steal logic below runs on idle
                    // ticks too (and, with replication, so the standby
                    // duty at the loop top keeps polling for deaths).
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    state.disconnected = true;
                    continue;
                }
            }
        }
        state.drain_uplink(&mut incoming);
        for envelope in incoming {
            state.on_frame(envelope)?;
        }
        state.steal_participation();
        state.process_one_batch()?;
        state.note_idle_streams();
    }
    let Some(state) = guard.take() else {
        return Ok(Vec::new());
    };
    failover.board.mark_finished(shard_index);
    drop(guard);
    Ok(vec![state.finish()])
}

/// How often an otherwise event-less reactor worker re-checks its timers and
/// shard states — the upper bound on poll blocking, not a service cadence
/// (sends and timer deadlines wake workers much sooner).
const REACTOR_IDLE_TICK: Duration = Duration::from_millis(50);

/// How long the reactor waits for a `ReShare` before re-sending `NeedFrame`.
/// The legacy driver has no retry at all — a lost request simply parks the
/// job until shutdown — so any finite value is strictly more robust.
const NEED_FRAME_RETRY: Duration = Duration::from_millis(100);

/// A deadline owned by the reactor's shared timer wheel.
enum TimerEvent {
    /// Run a maintenance pass on a shard — the reactor's analogue of the
    /// legacy driver's `steal_poll` wakeup, armed only while the shard is an
    /// idle steal participant.
    Tick(usize),
    /// Re-send `NeedFrame` for a job still parked on an evicted frame.
    NeedFrameRetry {
        shard: usize,
        stream_id: StreamId,
        frame_index: usize,
    },
}

/// Everything the reactor's fixed worker set shares: the shard state
/// machines, the readiness poller whose token *n* means "shard *n* has
/// traffic", the timer wheel, and completion accounting.
struct ReactorShared<T: Teacher> {
    /// The hosted shard-state slots (`failover.states[i]` holds shard *i*
    /// until it finishes or dies), the failover board, and the replica
    /// store. Any worker may run any shard; the mutex serializes passes per
    /// shard while leaving distinct shards fully parallel. Completion is
    /// counted on the board (`finished`), which also covers dead shards
    /// finalized by their standby.
    failover: Arc<FailoverShared<T>>,
    poller: st_net::Poller,
    timers: Mutex<TimerWheel<TimerEvent>>,
    /// Set when a worker hits a hard error, telling its peers to stop
    /// instead of serving a half-dead pool.
    aborted: AtomicBool,
    /// `rerun[i]` records a wake token consumed for shard *i* while another
    /// worker was mid-pass on it. The pass holder re-wakes the shard when it
    /// releases the lock, so the traffic behind the dropped token is
    /// re-dispatched instead of lost — and no worker ever parks on a busy
    /// shard's mutex while timers starve.
    rerun: Vec<AtomicBool>,
    shard_wakers: Arc<Vec<st_net::Waker>>,
    steal_poll: Duration,
}

/// One reactor worker: fire due timers, then block on the readiness poller
/// (bounded by the next deadline) and run a pass on whichever shard woke.
/// Lock order is always shard-state before timers, never the reverse with a
/// state lock held across a blocking acquisition of another state.
fn run_reactor_worker<T: Teacher>(shared: Arc<ReactorShared<T>>) -> Result<Vec<ShardOutput>> {
    let mut outputs = Vec::new();
    let result = reactor_loop(&shared, &mut outputs);
    if let Err(err) = result {
        // Take the whole pool down with us: peers observe the flag (or the
        // closed poller) and return their partial outputs; join() surfaces
        // this error.
        shared.aborted.store(true, Ordering::SeqCst);
        shared.poller.close();
        return Err(err);
    }
    Ok(outputs)
}

fn reactor_loop<T: Teacher>(
    shared: &ReactorShared<T>,
    outputs: &mut Vec<ShardOutput>,
) -> Result<()> {
    let total = shared.failover.states.len();
    loop {
        if shared.aborted.load(Ordering::SeqCst) || shared.failover.board.finished_count() == total
        {
            return Ok(());
        }
        // A death no standby can ever recover (replication off, or the
        // standby itself dead or already finished) would otherwise leave
        // the pool polling forever; abort so join() reports the death
        // instead of hanging.
        if shared.failover.board.has_orphan_death() {
            shared.aborted.store(true, Ordering::SeqCst);
            shared.poller.close();
            return Ok(());
        }
        // Fire due timers. The wheel lock is released before dispatching so
        // a handler arming follow-up timers never self-deadlocks.
        let due = {
            let mut timers = locked(&shared.timers);
            timers.advance(Instant::now())
        };
        for (_id, event) in due {
            match event {
                TimerEvent::Tick(shard) => dispatch_pass(shared, shard, true, outputs)?,
                TimerEvent::NeedFrameRetry {
                    shard,
                    stream_id,
                    frame_index,
                } => dispatch_need_frame_retry(shared, shard, stream_id, frame_index),
            }
        }
        // Park until a shard's token wakes, but never sleep past the next
        // timer deadline (or the idle tick, whichever is sooner).
        let timeout = {
            let mut timers = locked(&shared.timers);
            match timers.next_deadline() {
                Some(deadline) => deadline
                    .saturating_duration_since(Instant::now())
                    .min(REACTOR_IDLE_TICK),
                None => REACTOR_IDLE_TICK,
            }
        };
        if let Some(token) = shared.poller.poll_one(timeout) {
            dispatch_pass(shared, token, false, outputs)?;
        }
    }
}

/// Run one pass on `shard`, then arm whatever follow-up events the pass
/// asked for: an immediate self-wake while backlog (or a shutdown drain)
/// remains, a steal-poll tick while idle-stealing, and a retry timer per
/// `NeedFrame` sent.
fn dispatch_pass<T: Teacher>(
    shared: &ReactorShared<T>,
    shard: usize,
    from_timer: bool,
    outputs: &mut Vec<ShardOutput>,
) -> Result<()> {
    // Set-then-try ordering makes the handoff airtight: if the try_lock
    // below fails, the current holder is guaranteed to observe our flag
    // after it releases and re-wake the shard; if the holder released just
    // before we set, our try_lock succeeds and we run the pass ourselves.
    // A pass never parks a worker on a busy shard's mutex — the alternative
    // lets one long pass (e.g. a Shutdown flush) capture every worker while
    // timers starve.
    shared.rerun[shard].store(true, Ordering::SeqCst);
    let mut guard = match shared.failover.states[shard].try_lock() {
        Ok(guard) => guard,
        Err(std::sync::TryLockError::WouldBlock) => {
            if from_timer {
                // The shard is mid-pass, hence not idle; try the steal tick
                // again later (tick_pending stays true, by design).
                locked(&shared.timers).schedule_after(shared.steal_poll, TimerEvent::Tick(shard));
            }
            return Ok(());
        }
        Err(std::sync::TryLockError::Poisoned(_)) => {
            // Reactor passes never unwind through the guard (the pass body
            // is caught below), so poison here is a bug, not a shard death.
            return Err(TensorError::InvalidArgument(
                "shard state lock poisoned".into(),
            ));
        }
    };
    shared.rerun[shard].store(false, Ordering::SeqCst);
    if shared.failover.board.is_dead(shard) {
        // A late wake or tick for a dead shard: the carcass in the slot
        // belongs to its standby, not to us.
        return Ok(());
    }
    let outcome = {
        let Some(state) = guard.as_mut() else {
            // The shard already finished; a late wake or tick is harmless.
            return Ok(());
        };
        if from_timer {
            state.tick_pending = false;
            state.timer_fires += 1;
        } else {
            state.poll_wakeups += 1;
        }
        // A shard death under the reactor must not take the hosting OS
        // thread (and every other shard it would have run) down with it:
        // catch the unwind, publish the death, and hand the carcass to the
        // standby. The guard is released normally, so no poison.
        let pass = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            state.run_pass(&shared.failover)
        }));
        let outcome = match pass {
            Ok(outcome) => outcome?,
            Err(payload) => {
                shared
                    .failover
                    .board
                    .mark_dead(shard, panic_message(payload.as_ref()));
                if shared.failover.replicas.is_some() {
                    // Wake the standby so its next pass runs the takeover.
                    let standby = (shard + 1) % shared.failover.states.len();
                    shared.shard_wakers[standby].wake();
                } else {
                    // No standby to adopt the shard: stop the pool; join()
                    // surfaces the death as WorkerFailed.
                    shared.aborted.store(true, Ordering::SeqCst);
                    shared.poller.close();
                }
                return Ok(());
            }
        };
        if outcome.done {
            let Some(state) = guard.take() else {
                unreachable!("shard state present: matched Some above")
            };
            shared.failover.board.mark_finished(shard);
            outputs.push(state.finish());
            if shared.failover.board.note_finished() == shared.failover.states.len() {
                // Release every worker parked in poll_one.
                shared.poller.close();
            }
            return Ok(());
        }
        // Arm the steal tick while still holding the state lock so a racing
        // dispatcher sees a consistent `tick_pending`.
        if outcome.idle_stealing && !state.tick_pending {
            state.tick_pending = true;
            locked(&shared.timers).schedule_after(shared.steal_poll, TimerEvent::Tick(shard));
        }
        outcome
    };
    drop(guard);
    if shared.rerun[shard].swap(false, Ordering::SeqCst) {
        // A wake token for this shard was consumed (and dropped) while we
        // were mid-pass; re-issue it.
        shared.shard_wakers[shard].wake();
    }
    for (stream_id, frame_index) in &outcome.need_frames {
        locked(&shared.timers).schedule_after(
            NEED_FRAME_RETRY,
            TimerEvent::NeedFrameRetry {
                shard,
                stream_id: *stream_id,
                frame_index: *frame_index,
            },
        );
    }
    if outcome.backlog || outcome.disconnected {
        // Queued jobs (or a shutdown drain in progress): hand the shard
        // straight back to the worker set instead of waiting for traffic.
        shared.shard_wakers[shard].wake();
    }
    Ok(())
}

/// Deliver a `NeedFrameRetry` timer to its shard, re-arming it while the
/// job stays parked (or while the shard is too busy to answer).
fn dispatch_need_frame_retry<T: Teacher>(
    shared: &ReactorShared<T>,
    shard: usize,
    stream_id: StreamId,
    frame_index: usize,
) {
    let still_waiting = match shared.failover.states[shard].try_lock() {
        Ok(mut guard) => match guard.as_mut() {
            Some(state) => state.on_need_frame_retry(stream_id, frame_index),
            None => false,
        },
        // Mid-pass: the pass may well deliver the re-share; check again
        // next period.
        Err(_) => true,
    };
    if still_waiting {
        locked(&shared.timers).schedule_after(
            NEED_FRAME_RETRY,
            TimerEvent::NeedFrameRetry {
                shard,
                stream_id,
                frame_index,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_nn::student::StudentConfig;
    use st_teacher::OracleTeacher;
    use st_video::dataset::tiny_stream as frames_for;
    use st_video::SceneKind;

    fn shard() -> ServeShard<OracleTeacher> {
        ServeShard::new(
            ShadowTutorConfig::paper(),
            StudentNet::new(StudentConfig::tiny()).unwrap(),
            OracleTeacher::perfect(5),
            0.013,
        )
    }

    fn at(offset_ms: u64) -> Instant {
        Instant::now() + Duration::from_millis(offset_ms)
    }

    #[test]
    fn pool_config_validates_and_routes() {
        assert!(PoolConfig::default_pool().validate().is_ok());
        assert!(PoolConfig {
            shards: 0,
            ..PoolConfig::default_pool()
        }
        .validate()
        .is_err());
        assert!(PoolConfig {
            max_batch: 0,
            ..PoolConfig::default_pool()
        }
        .validate()
        .is_err());
        assert!(PoolConfig {
            max_in_flight: 0,
            ..PoolConfig::default_pool()
        }
        .validate()
        .is_err());
        assert!(PoolConfig {
            quantum: 0,
            ..PoolConfig::default_pool()
        }
        .validate()
        .is_err());
        assert!(PoolConfig {
            frame_budget_bytes: Some(0),
            ..PoolConfig::default_pool()
        }
        .validate()
        .is_err());
        assert!(PoolConfig {
            steal_poll: Duration::ZERO,
            ..PoolConfig::default_pool()
        }
        .validate()
        .is_err());
        let p = PoolConfig::with_shards(3);
        assert_eq!(p.shard_of(0), 0);
        assert_eq!(p.shard_of(4), 1);
        assert_eq!(p.shard_of(5), 2);
        assert!(!p.stealing());
        assert!(PoolConfig {
            placement: PlacementPolicy::Rebalance,
            ..PoolConfig::default_pool()
        }
        .stealing());
    }

    #[test]
    fn fair_scheduler_round_robins_across_streams() {
        let mut s = FairScheduler::new(1);
        // A hot stream with a deep backlog and two cold streams with one
        // job each.
        for i in 0..6 {
            s.push(1, i, at(0));
        }
        s.push(2, 100, at(1));
        s.push(3, 200, at(2));
        assert_eq!(s.len(), 8);
        assert_eq!(s.queued_for(1), 6);
        assert_eq!(s.active_streams(), 3);
        // A batch of 3 serves every stream once — the hot stream cannot
        // monopolize the slots.
        let batch = s.next_batch(3);
        let streams: Vec<StreamId> = batch.iter().map(|j| j.job.stream_id).collect();
        assert_eq!(streams, vec![1, 2, 3]);
        // The cold streams are drained; the rest of the backlog belongs to
        // the hot stream.
        let batch = s.next_batch(3);
        assert!(batch.iter().all(|j| j.job.stream_id == 1));
        assert_eq!(s.len(), 2);
        let rest = s.next_batch(10);
        assert_eq!(rest.len(), 2);
        assert!(s.is_empty());
        // FIFO order within the stream.
        let indices: Vec<usize> = rest.iter().map(|j| j.job.frame_index).collect();
        assert_eq!(indices, vec![4, 5]);
    }

    #[test]
    fn fair_scheduler_removal_returns_fifo_backlog() {
        let mut s = FairScheduler::new(2);
        s.push(7, 0, at(0));
        s.push(7, 1, at(1));
        s.push(8, 9, at(2));
        let removed = s.remove_stream(7);
        assert_eq!(
            removed
                .iter()
                .map(|j| j.job.frame_index)
                .collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.queued_for(7), 0);
        // The ring no longer visits the removed stream.
        let batch = s.next_batch(4);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].job.stream_id, 8);
        assert!(s.remove_stream(99).is_empty());
    }

    #[test]
    fn adaptive_batch_tracks_backlog_within_bounds() {
        let mut b = AdaptiveBatch::new(8, true);
        assert_eq!(b.limit(), 1);
        assert_eq!(b.ceiling(), 8);
        // Pressure grows the window multiplicatively, up to the ceiling.
        b.observe(10, true);
        assert_eq!(b.limit(), 2);
        b.observe(10, true);
        b.observe(10, true);
        assert_eq!(b.limit(), 8);
        b.observe(100, true);
        assert_eq!(b.limit(), 8, "never exceeds the ceiling");
        // An idle queue shrinks it back down.
        b.observe(0, true);
        b.observe(0, true);
        b.observe(0, true);
        assert_eq!(b.limit(), 1);
        // Growth is gated on the teacher's marginal cost still amortizing.
        b.observe(10, false);
        assert_eq!(b.limit(), 1);
        // Disabled: pinned to the ceiling regardless of observations.
        let mut pinned = AdaptiveBatch::new(4, false);
        assert_eq!(pinned.limit(), 4);
        pinned.observe(0, true);
        pinned.observe(0, true);
        assert_eq!(pinned.limit(), 4);
    }

    #[test]
    fn cost_profile_judges_growth_on_measured_slope() {
        let mut p = TeacherCostProfile::new();
        // No data: the caller must fall back to the virtual model.
        assert_eq!(p.growth_pays(1), None);
        p.record(1, 10e-3);
        assert_eq!(p.growth_pays(1), None, "one size is not a slope");
        // Sub-linear batching: going 1 -> 4 costs 2 ms/slot vs 10 ms solo.
        p.record(4, 16e-3);
        assert_eq!(p.growth_pays(4), Some(true));
        assert!(p.estimate(4).unwrap() > p.estimate(1).unwrap());
        assert!(p.per_frame_at_or_below(4).unwrap() < p.estimate(1).unwrap());
        // Super-linear batching (thrashing teacher): growth must stop.
        let mut bad = TeacherCostProfile::new();
        bad.record(1, 10e-3);
        bad.record(2, 25e-3);
        assert_eq!(bad.growth_pays(2), Some(false));
        // Unmeasurably fast forwards (oracle teacher): no measured verdict.
        let mut fast = TeacherCostProfile::new();
        fast.record(1, 1e-6);
        fast.record(2, 2e-6);
        assert_eq!(fast.growth_pays(2), None);
        // EMA smooths rather than replaces.
        let mut ema = TeacherCostProfile::new();
        ema.record(1, 10e-3);
        ema.record(1, 20e-3);
        let est = ema.estimate(1).unwrap();
        assert!(est > 10e-3 && est < 20e-3, "EMA {est}");
        // Degenerate observations are ignored.
        ema.record(0, 1.0);
        ema.record(3, f64::NAN);
        assert_eq!(ema.estimate(0), None);
        assert_eq!(ema.estimate(3), None);
    }

    #[test]
    fn shard_records_measured_teacher_cost() {
        let mut s = shard();
        let people = frames_for(SceneKind::People, 91, 2);
        s.register(1, FrameStore::from_frames(&people, None), false);
        s.process_batch(&[ShardJob {
            stream_id: 1,
            frame_index: people[0].index,
        }])
        .unwrap();
        // A real forward happened, so wall time was measured and the cost
        // profile has a batch-1 sample.
        assert!(s.stats().teacher_wall_time > Duration::ZERO);
        assert!(s.stats().mean_teacher_wall_secs() > 0.0);
        assert!(s.measured_costs().estimate(1).is_some());
        // The oracle teacher is microsecond-fast, so the measured profile
        // abstains and growth falls back to the virtual model (which pays).
        assert!(s.batch_growth_pays(1));
    }

    #[test]
    fn shard_keeps_streams_isolated() {
        let mut s = shard();
        let people = frames_for(SceneKind::People, 11, 2);
        let animals = frames_for(SceneKind::Animals, 12, 2);
        let init_a = s.register(1, FrameStore::from_frames(&people, None), false);
        let init_b = s.register(2, FrameStore::from_frames(&animals, None), false);
        // Both sessions start from the same template checkpoint.
        assert!(init_a.distance(&init_b).unwrap() < 1e-9);
        assert_eq!(s.stream_count(), 2);

        // Distill stream 1 only; stream 2's weights must not move.
        let outcome = s
            .process_batch(&[ShardJob {
                stream_id: 1,
                frame_index: people[0].index,
            }])
            .unwrap();
        assert_eq!(outcome.responses.len(), 1);
        assert!(outcome.dropped.is_empty());
        assert!(outcome.responses[0].2.outcome.steps >= 1);
        let (ckpt_b, stats_b) = s.finish(2).unwrap();
        assert_eq!(stats_b.key_frames, 0);
        assert!(ckpt_b.distance(&init_b).unwrap() < 1e-9);
        let (ckpt_a, stats_a) = s.finish(1).unwrap();
        assert_eq!(stats_a.key_frames, 1);
        assert!(ckpt_a.distance(&init_a).unwrap() > 0.0);
    }

    #[test]
    fn duplicate_register_does_not_clobber_the_session() {
        let mut s = shard();
        let people = frames_for(SceneKind::People, 13, 2);
        s.register(1, FrameStore::from_frames(&people, None), false);
        let outcome = s
            .process_batch(&[ShardJob {
                stream_id: 1,
                frame_index: people[0].index,
            }])
            .unwrap();
        assert_eq!(outcome.responses.len(), 1);
        // A duplicate register with *empty* frames must neither reset the
        // session nor lose the pre-shared frames.
        let ckpt = s.register(1, FrameStore::new(None), false);
        assert!(s.has_frame(1, people[1].index), "frames clobbered");
        let (final_ckpt, stats) = s.finish(1).unwrap();
        assert_eq!(stats.key_frames, 1, "session reset by duplicate register");
        assert!(ckpt.distance(&final_ckpt).unwrap() < 1e-9);
    }

    #[test]
    fn batched_labels_amortize_teacher_time() {
        let mut s = shard();
        let people = frames_for(SceneKind::People, 21, 2);
        let street = frames_for(SceneKind::Street, 22, 2);
        s.register(1, FrameStore::from_frames(&people, None), false);
        s.register(2, FrameStore::from_frames(&street, None), false);
        let outcome = s
            .process_batch(&[
                ShardJob {
                    stream_id: 1,
                    frame_index: people[0].index,
                },
                ShardJob {
                    stream_id: 2,
                    frame_index: street[0].index,
                },
            ])
            .unwrap();
        assert_eq!(outcome.responses.len(), 2);
        let stats = s.stats();
        assert_eq!(stats.teacher_batches, 1);
        assert_eq!(stats.key_frames, 2);
        assert_eq!(stats.max_batch_observed, 2);
        // Batching two frames must be cheaper than two solo forwards.
        assert!(stats.teacher_time_saved > 0.0);
        // The amortized teacher share charged per response is below t_ti.
        let solo = OracleTeacher::perfect(0).inference_latency();
        for (_, _, r) in &outcome.responses {
            assert!(r.server_time < solo + r.outcome.steps as f64 * 0.013 + 1e-12);
        }
        // The default teacher's sub-linear batch cost keeps growth paying.
        assert!(s.batch_growth_pays(2));
        assert!(s.marginal_batch_cost(2) > 0.0);
    }

    #[test]
    fn unknown_jobs_are_acked_not_silently_skipped() {
        let mut s = shard();
        let people = frames_for(SceneKind::People, 31, 1);
        s.register(1, FrameStore::from_frames(&people, None), false);
        let outcome = s
            .process_batch(&[
                ShardJob {
                    stream_id: 9,
                    frame_index: 0,
                }, // unknown stream
                ShardJob {
                    stream_id: 1,
                    frame_index: 999,
                }, // unknown frame
            ])
            .unwrap();
        assert!(outcome.responses.is_empty());
        assert_eq!(outcome.dropped.len(), 2);
        assert_eq!(outcome.dropped[0].1, DropReason::UnknownStream);
        assert_eq!(outcome.dropped[1].1, DropReason::UnknownFrame);
        assert_eq!(s.stats().teacher_batches, 0);
        // The silent-drop bug: the shard now counts every dropped job.
        assert_eq!(s.stats().dropped_jobs, 2);
        assert!(s.finish(9).is_none());
    }

    #[test]
    fn pool_serves_two_streams_end_to_end() {
        let pool = ServerPool::spawn(
            ShadowTutorConfig::paper(),
            PoolConfig {
                shards: 2,
                recv_timeout: Duration::from_millis(200),
                ..PoolConfig::default_pool()
            },
            StudentNet::new(StudentConfig::tiny()).unwrap(),
            0.013,
            |shard| OracleTeacher::perfect(100 + shard as u64),
        )
        .unwrap();
        let streams: Vec<(StreamId, Vec<Frame>)> = vec![
            (0, frames_for(SceneKind::People, 41, 3)),
            (1, frames_for(SceneKind::Animals, 42, 3)),
        ];
        let mut clients: Vec<StreamClient> = streams
            .iter()
            .map(|(id, frames)| pool.connect(*id, frames).unwrap())
            .collect();
        // Least-loaded placement spread the two streams over the two shards.
        assert_eq!(pool.shard_loads(), vec![1, 1]);
        for (client, (_, frames)) in clients.iter_mut().zip(&streams) {
            // Initial checkpoint arrives first.
            let initial = client.recv_timeout(Duration::from_secs(10)).unwrap();
            assert!(matches!(initial, ServerToClient::InitialStudent { .. }));
            // One key frame each.
            let payload = Payload::sized(frames[0].raw_rgb_bytes());
            let bytes = payload.bytes;
            client
                .send(
                    ClientToServer::KeyFrame {
                        frame_index: frames[0].index,
                        payload,
                    },
                    bytes,
                )
                .unwrap();
            let update = client.recv_timeout(Duration::from_secs(10)).unwrap();
            match update {
                ServerToClient::StudentUpdate {
                    frame_index,
                    metric,
                    distill_steps,
                    ..
                } => {
                    assert_eq!(frame_index, frames[0].index);
                    assert!((0.0..=1.0).contains(&metric));
                    assert!(distill_steps <= ShadowTutorConfig::paper().max_updates);
                }
                other => panic!("expected StudentUpdate, got {other:?}"),
            }
            client.send(ClientToServer::Shutdown, 1).unwrap();
        }
        drop(clients);
        let stats = pool.join().unwrap();
        assert_eq!(stats.total_key_frames(), 2);
        assert_eq!(stats.streams.len(), 2);
        assert_eq!(stats.final_checkpoints.len(), 2);
        assert!(stats.streams.values().all(|s| s.key_frames == 1));
        // Streams 0 and 1 land on different shards.
        assert!(stats.shards.iter().all(|s| s.key_frames == 1));
        // Nothing was silently lost in the clean scenario.
        assert_eq!(stats.dropped_jobs(), 0);
        assert_eq!(stats.throttled(), 0);
        // The operator report reflects the run.
        let report = stats.snapshot();
        assert_eq!(report.shards.len(), 2);
        assert_eq!(report.total_key_frames, 2);
        assert_eq!(report.streams_stolen, 0);
        assert_eq!(report.frame_evictions, 0);
        assert!(report.queue_p50_ms >= 0.0 && report.queue_p99_ms >= report.queue_p50_ms);
        assert!(report.to_json().contains("\"totals\""));
    }

    #[test]
    fn pool_rejects_duplicate_connect() {
        let pool = ServerPool::spawn(
            ShadowTutorConfig::paper(),
            PoolConfig {
                shards: 1,
                recv_timeout: Duration::from_millis(100),
                ..PoolConfig::default_pool()
            },
            StudentNet::new(StudentConfig::tiny()).unwrap(),
            0.013,
            |_| OracleTeacher::perfect(1),
        )
        .unwrap();
        let frames = frames_for(SceneKind::People, 61, 1);
        let client = pool.connect(5, &frames).unwrap();
        let Err(err) = pool.connect(5, &frames) else {
            panic!("duplicate connect must be rejected");
        };
        assert!(format!("{err:?}").contains("already connected"));
        drop(client);
        pool.join().unwrap();
    }

    #[test]
    fn least_loaded_placement_follows_departures() {
        let pool = ServerPool::spawn(
            ShadowTutorConfig::paper(),
            PoolConfig {
                shards: 2,
                recv_timeout: Duration::from_millis(100),
                ..PoolConfig::default_pool()
            },
            StudentNet::new(StudentConfig::tiny()).unwrap(),
            0.013,
            |shard| OracleTeacher::perfect(300 + shard as u64),
        )
        .unwrap();
        let frames = frames_for(SceneKind::People, 62, 1);
        // Sequential connects alternate shards...
        let mut a = pool.connect(10, &frames).unwrap();
        let _b = pool.connect(11, &frames).unwrap();
        let _c = pool.connect(12, &frames).unwrap();
        assert_eq!(pool.shard_loads().iter().sum::<usize>(), 3);
        assert_eq!(pool.shard_loads(), vec![2, 1]);
        // ...and a departure frees the slot, steering the next connect to
        // the drained shard. (Wait for the shutdown to be processed.)
        a.recv_timeout(Duration::from_secs(10)).unwrap();
        a.send(ClientToServer::Shutdown, 1).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.shard_loads()[0] != 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.shard_loads(), vec![1, 1]);
        let _d = pool.connect(13, &frames).unwrap();
        assert_eq!(pool.shard_loads(), vec![2, 1]);
        drop((a, _b, _c, _d));
        let stats = pool.join().unwrap();
        // Every connected stream is accounted for, with or without Shutdown.
        assert_eq!(stats.streams.len(), 4);
        assert_eq!(stats.final_checkpoints.len(), 4);
    }

    #[test]
    fn frame_store_evicts_lru_within_budget() {
        let frames = frames_for(SceneKind::People, 71, 4);
        let cost = FrameStore::frame_cost(&frames[0]);
        // Budget for exactly two frames.
        let mut store = FrameStore::from_frames(&frames, Some(2 * cost));
        assert_eq!(store.resident_count(), 2);
        assert!(store.resident_bytes() <= 2 * cost);
        assert_eq!(store.peak_bytes(), 2 * cost);
        assert_eq!(store.evictions(), 2);
        // Insertion order was index order, so the two oldest were evicted —
        // but their indices are still *known*.
        assert!(!store.resident(frames[0].index) && store.knows(frames[0].index));
        assert!(!store.resident(frames[1].index) && store.knows(frames[1].index));
        assert!(store.resident(frames[2].index) && store.resident(frames[3].index));
        assert!(!store.knows(999));
        // Touching frame 2 makes frame 3 the LRU victim of the next insert.
        assert!(store.touch(frames[2].index));
        assert!(
            !store.touch(frames[0].index),
            "evicted frames cannot be touched"
        );
        store.insert(frames[0].clone());
        assert!(store.resident(frames[0].index));
        assert!(store.resident(frames[2].index));
        assert!(!store.resident(frames[3].index), "LRU frame evicted");
        assert_eq!(store.evictions(), 3);
        // The budget invariant held throughout.
        assert!(store.peak_bytes() <= 2 * cost);
        // Re-inserting a resident frame only refreshes recency.
        store.insert(frames[0].clone());
        assert_eq!(store.resident_count(), 2);
        // An unbounded store never evicts.
        let unbounded = FrameStore::from_frames(&frames, None);
        assert_eq!(unbounded.resident_count(), 4);
        assert_eq!(unbounded.evictions(), 0);
        // A frame bigger than the whole budget is never admitted.
        let mut tiny = FrameStore::new(Some(cost / 2));
        tiny.insert(frames[0].clone());
        assert!(tiny.knows(frames[0].index) && !tiny.resident(frames[0].index));
        assert_eq!(tiny.evictions(), 1);
        assert_eq!(tiny.resident_bytes(), 0);
    }

    #[test]
    fn fair_scheduler_reports_the_busiest_stream() {
        let mut s = FairScheduler::new(1);
        assert_eq!(s.busiest_stream(), None);
        s.push(5, 0, at(0));
        s.push(2, 0, at(1));
        s.push(2, 1, at(2));
        assert_eq!(s.busiest_stream(), Some((2, 2)));
        // Ties break toward the smaller stream id, deterministically.
        s.push(5, 1, at(3));
        assert_eq!(s.busiest_stream(), Some((2, 2)));
    }

    #[test]
    fn evicted_frame_parks_the_job_instead_of_dropping_it() {
        let mut s = shard();
        let people = frames_for(SceneKind::People, 72, 3);
        let cost = FrameStore::frame_cost(&people[0]);
        // Budget for one frame: only the last pre-shared frame is resident.
        s.register(1, FrameStore::from_frames(&people, Some(cost)), false);
        let outcome = s
            .process_batch(&[ShardJob {
                stream_id: 1,
                frame_index: people[0].index,
            }])
            .unwrap();
        assert!(outcome.responses.is_empty());
        assert!(outcome.dropped.is_empty(), "evicted is not unknown");
        assert_eq!(outcome.needs_frame.len(), 1);
        assert_eq!(s.stats().need_frame_requests, 1);
        assert_eq!(s.stats().dropped_jobs, 0);
        // The client re-shares the frame; the job now serves normally.
        assert!(s.reshare(1, people[0].clone()));
        let outcome = s
            .process_batch(&[ShardJob {
                stream_id: 1,
                frame_index: people[0].index,
            }])
            .unwrap();
        assert_eq!(outcome.responses.len(), 1);
        assert_eq!(s.stats().reshared_frames, 1);
        // Re-sharing a frame that was never shared is refused (a re-share is
        // recovery, not a side door for new frames).
        let foreign = frames_for(SceneKind::Street, 73, 5).pop().unwrap();
        assert!(!s.reshare(1, foreign));
        assert!(!s.reshare(9, people[0].clone()), "unknown stream");
        // Cache counters fold into the shard stats when the stream finishes.
        let (_ckpt, _stats) = s.finish(1).unwrap();
        let stats = s.stats();
        assert!(stats.frame_evictions >= 2);
        assert!(stats.frame_bytes_peak > 0 && stats.frame_bytes_peak <= cost);
    }

    #[test]
    fn migrated_session_continues_bit_for_bit() {
        // Distilling on shard A, migrating, then distilling on shard B must
        // produce exactly the weights (and counters) of never migrating.
        let people = frames_for(SceneKind::People, 74, 2);
        let mut control = shard();
        control.register(1, FrameStore::from_frames(&people, None), false);
        let mut a = shard();
        a.register(1, FrameStore::from_frames(&people, None), false);
        let job0 = ShardJob {
            stream_id: 1,
            frame_index: people[0].index,
        };
        let job1 = ShardJob {
            stream_id: 1,
            frame_index: people[1].index,
        };
        control.process_batch(&[job0]).unwrap();
        a.process_batch(&[job0]).unwrap();
        // Migrate A → B between batches (the only point migrations happen).
        let mut b = shard();
        let entry = a.evict_stream(1).expect("stream lives on A");
        assert!(!a.has_stream(1));
        b.adopt_stream(1, entry);
        assert_eq!(a.stats().streams_donated, 1);
        assert_eq!(b.stats().streams_stolen_in, 1);
        control.process_batch(&[job1]).unwrap();
        b.process_batch(&[job1]).unwrap();
        let (ckpt_control, stats_control) = control.finish(1).unwrap();
        let (ckpt_b, stats_b) = b.finish(1).unwrap();
        assert!(ckpt_control.distance(&ckpt_b).unwrap() < 1e-12);
        assert_eq!(stats_control.key_frames, stats_b.key_frames);
        assert_eq!(stats_control.distill_steps, stats_b.distill_steps);
        // The work is attributed where it ran: one key frame each.
        assert_eq!(a.stats().key_frames, 1);
        assert_eq!(b.stats().key_frames, 1);
    }

    #[test]
    fn rebalance_pool_steals_a_backlogged_stream() {
        // Two shards, three streams. Least-loaded placement puts the hot
        // stream (id 0) and a cold shard-mate (id 2) on shard 0, and an
        // inactive stream (id 1) on shard 1. The hot backlog plus the cold
        // mate's queued jobs make shard 0 donatable, while shard 1 idles and
        // asks for work: with Rebalance, a steal must happen.
        let pool = ServerPool::spawn(
            ShadowTutorConfig::paper(),
            PoolConfig {
                shards: 2,
                max_batch: 1,
                quantum: 1,
                adaptive_batch: false,
                max_in_flight: 64,
                placement: PlacementPolicy::Rebalance,
                recv_timeout: Duration::from_millis(200),
                steal_poll: Duration::from_millis(1),
                ..PoolConfig::default_pool()
            },
            StudentNet::new(StudentConfig::tiny()).unwrap(),
            0.013,
            // A real wall-clock pause per forward so a backlog actually
            // builds at shard 0 while shard 1 goes idle.
            |shard| {
                crate::loadgen::PacedTeacher::new(
                    OracleTeacher::perfect(600 + shard as u64),
                    Duration::from_millis(8),
                )
            },
        )
        .unwrap();
        let hot_frames = frames_for(SceneKind::People, 75, 12);
        let idle_frames = frames_for(SceneKind::Street, 77, 1);
        let mate_frames = frames_for(SceneKind::Animals, 76, 3);
        let mut hot = pool.connect(0, &hot_frames).unwrap();
        let mut idle = pool.connect(1, &idle_frames).unwrap();
        let mut mate = pool.connect(2, &mate_frames).unwrap();
        assert_eq!(pool.shard_loads(), vec![2, 1]);
        hot.recv_timeout(Duration::from_secs(10)).unwrap();
        idle.recv_timeout(Duration::from_secs(10)).unwrap();
        mate.recv_timeout(Duration::from_secs(10)).unwrap();
        // Blast the hot stream's whole backlog at shard 0, with the mate's
        // jobs queued alongside so donation is legal; stream 1 sends
        // nothing, so shard 1 has only stolen work to do.
        let send_key = |client: &mut StreamClient, frame: &Frame| {
            let payload = Payload::sized(frame.raw_rgb_bytes());
            let bytes = payload.bytes;
            client
                .send(
                    ClientToServer::KeyFrame {
                        frame_index: frame.index,
                        payload,
                    },
                    bytes,
                )
                .unwrap();
        };
        for frame in &hot_frames {
            send_key(&mut hot, frame);
        }
        for frame in &mate_frames {
            send_key(&mut mate, frame);
        }
        idle.send(ClientToServer::Shutdown, 1).unwrap();
        drop(idle);
        for _ in &hot_frames {
            let update = hot.recv_timeout(Duration::from_secs(30)).unwrap();
            assert!(matches!(update, ServerToClient::StudentUpdate { .. }));
        }
        for _ in &mate_frames {
            let update = mate.recv_timeout(Duration::from_secs(30)).unwrap();
            assert!(matches!(update, ServerToClient::StudentUpdate { .. }));
        }
        hot.send(ClientToServer::Shutdown, 1).unwrap();
        mate.send(ClientToServer::Shutdown, 1).unwrap();
        drop((hot, mate));
        let stats = pool.join().unwrap();
        assert_eq!(stats.total_key_frames(), 15);
        assert_eq!(stats.dropped_jobs(), 0);
        assert!(
            stats.streams_stolen() >= 1,
            "the idle shard never stole the backlog: {:?}",
            stats
                .shards
                .iter()
                .map(|s| (s.key_frames, s.streams_stolen_in, s.streams_donated))
                .collect::<Vec<_>>()
        );
        // Both shards ended up doing real work.
        assert!(stats.shards.iter().all(|s| s.key_frames >= 1));
        // Every steal has a matching donation, and every stream finished
        // with a checkpoint wherever it ended up.
        let donated: usize = stats.shards.iter().map(|s| s.streams_donated).sum();
        assert_eq!(donated, stats.streams_stolen());
        assert_eq!(stats.final_checkpoints.len(), 3);
        assert_eq!(stats.streams.len(), 3);
        assert_eq!(
            stats.streams[&0].key_frames + stats.streams[&2].key_frames,
            15
        );
    }

    #[test]
    fn static_modulo_placement_is_a_pure_function_of_the_id() {
        let pool = ServerPool::spawn(
            ShadowTutorConfig::paper(),
            PoolConfig {
                shards: 2,
                placement: PlacementPolicy::StaticModulo,
                recv_timeout: Duration::from_millis(100),
                ..PoolConfig::default_pool()
            },
            StudentNet::new(StudentConfig::tiny()).unwrap(),
            0.013,
            |shard| OracleTeacher::perfect(400 + shard as u64),
        )
        .unwrap();
        let frames = frames_for(SceneKind::People, 63, 1);
        // Both even ids land on shard 0 even though shard 1 is empty.
        let a = pool.connect(0, &frames).unwrap();
        let b = pool.connect(2, &frames).unwrap();
        assert_eq!(pool.shard_loads(), vec![2, 0]);
        drop((a, b));
        pool.join().unwrap();
    }

    /// Spawn a pool, pipeline `key_frames` key frames per stream through
    /// `streams` clients, shut down cleanly and return the final stats.
    /// Shared by the reactor tests so the legacy and reactor drivers run
    /// byte-identical workloads.
    fn run_pipelined_pool(pool_config: PoolConfig, streams: usize, key_frames: usize) -> PoolStats {
        let pool = ServerPool::spawn(
            ShadowTutorConfig::paper(),
            pool_config,
            StudentNet::new(StudentConfig::tiny()).unwrap(),
            0.013,
            |shard| OracleTeacher::perfect(500 + shard as u64),
        )
        .unwrap();
        let stream_frames: Vec<(StreamId, Vec<Frame>)> = (0..streams)
            .map(|id| {
                (
                    id as StreamId,
                    frames_for(SceneKind::People, 70 + id as u64, key_frames),
                )
            })
            .collect();
        let mut clients: Vec<StreamClient> = stream_frames
            .iter()
            .map(|(id, frames)| pool.connect(*id, frames).unwrap())
            .collect();
        for (client, (_, frames)) in clients.iter_mut().zip(&stream_frames) {
            let initial = client.recv_timeout(Duration::from_secs(10)).unwrap();
            assert!(matches!(initial, ServerToClient::InitialStudent { .. }));
            // Pipeline every key frame without waiting for updates, so the
            // server sees real per-stream backlog and batches freely.
            for frame in frames {
                let payload = Payload::sized(frame.raw_rgb_bytes());
                let bytes = payload.bytes;
                client
                    .send(
                        ClientToServer::KeyFrame {
                            frame_index: frame.index,
                            payload,
                        },
                        bytes,
                    )
                    .unwrap();
            }
            client.send(ClientToServer::Shutdown, 1).unwrap();
        }
        drop(clients);
        pool.join().unwrap()
    }

    #[test]
    fn reactor_pool_hosts_more_shards_than_threads() {
        // The decoupling the reactor exists for: 8 shards on 2 threads.
        let stats = run_pipelined_pool(
            PoolConfig {
                shards: 8,
                reactor_threads: Some(2),
                placement: PlacementPolicy::StaticModulo,
                max_in_flight: 64,
                recv_timeout: Duration::from_millis(100),
                ..PoolConfig::default_pool()
            },
            8,
            2,
        );
        assert_eq!(stats.streams.len(), 8);
        assert_eq!(stats.final_checkpoints.len(), 8);
        assert_eq!(stats.total_key_frames(), 16);
        assert_eq!(stats.dropped_jobs(), 0);
        assert_eq!(stats.throttled(), 0);
        assert!(stats.streams.values().all(|s| s.key_frames == 2));
        // The reactor's own accounting made it into the operator report.
        let report = stats.snapshot();
        assert_eq!(report.shards.len(), 8);
        assert!(report.poll_wakeups > 0, "no readiness wakeups recorded");
        // Register + 2 key frames + shutdown per stream, at minimum.
        assert!(report.events_dispatched >= 8 * 4);
    }

    #[test]
    fn reactor_distillation_is_bit_identical_to_thread_per_shard() {
        let base = PoolConfig {
            shards: 4,
            placement: PlacementPolicy::StaticModulo,
            max_in_flight: 64,
            recv_timeout: Duration::from_millis(100),
            ..PoolConfig::default_pool()
        };
        let threaded = run_pipelined_pool(base, 4, 4);
        let reactor = run_pipelined_pool(
            PoolConfig {
                reactor_threads: Some(2),
                ..base
            },
            4,
            4,
        );
        assert_eq!(threaded.total_key_frames(), 16);
        assert_eq!(reactor.total_key_frames(), 16);
        assert_eq!(threaded.dropped_jobs() + reactor.dropped_jobs(), 0);
        // Same workload, same shard assignment, same teachers: every
        // stream's final student must match to the byte even though the
        // reactor ran 4 shards on 2 threads with different batching timing.
        for id in 0..4u64 {
            let a = threaded.final_checkpoints[&id].encode();
            let b = reactor.final_checkpoints[&id].encode();
            assert_eq!(a, b, "stream {id} diverged between drivers");
        }
        // Per-stream serving counters agree too (waits and batch shapes may
        // differ; the distillation outcome may not).
        for id in 0..4u64 {
            assert_eq!(
                threaded.streams[&id].key_frames,
                reactor.streams[&id].key_frames
            );
            assert_eq!(
                threaded.streams[&id].distill_steps,
                reactor.streams[&id].distill_steps
            );
        }
    }

    #[test]
    fn reactor_pool_steals_work_like_the_threaded_pool() {
        // The same topology as rebalance_pool_steals_a_backlogged_stream —
        // hot + mate on shard 0, an idle stream on shard 1 — but both
        // shards hosted by ONE reactor thread: the steal protocol must flow
        // through timer ticks and mailbox wakes instead of parallel loops.
        let pool = ServerPool::spawn(
            ShadowTutorConfig::paper(),
            PoolConfig {
                shards: 2,
                reactor_threads: Some(1),
                max_batch: 1,
                quantum: 1,
                adaptive_batch: false,
                max_in_flight: 64,
                placement: PlacementPolicy::Rebalance,
                recv_timeout: Duration::from_millis(200),
                steal_poll: Duration::from_millis(1),
                ..PoolConfig::default_pool()
            },
            StudentNet::new(StudentConfig::tiny()).unwrap(),
            0.013,
            // A real wall-clock pause per forward so a backlog actually
            // builds at shard 0 while shard 1 goes idle.
            |shard| {
                crate::loadgen::PacedTeacher::new(
                    OracleTeacher::perfect(600 + shard as u64),
                    Duration::from_millis(8),
                )
            },
        )
        .unwrap();
        let hot_frames = frames_for(SceneKind::People, 80, 12);
        let idle_frames = frames_for(SceneKind::Street, 82, 1);
        let mate_frames = frames_for(SceneKind::Animals, 81, 3);
        let mut hot = pool.connect(0, &hot_frames).unwrap();
        let mut idle = pool.connect(1, &idle_frames).unwrap();
        let mut mate = pool.connect(2, &mate_frames).unwrap();
        assert_eq!(pool.shard_loads(), vec![2, 1]);
        hot.recv_timeout(Duration::from_secs(10)).unwrap();
        idle.recv_timeout(Duration::from_secs(10)).unwrap();
        mate.recv_timeout(Duration::from_secs(10)).unwrap();
        let send_key = |client: &mut StreamClient, frame: &Frame| {
            let payload = Payload::sized(frame.raw_rgb_bytes());
            let bytes = payload.bytes;
            client
                .send(
                    ClientToServer::KeyFrame {
                        frame_index: frame.index,
                        payload,
                    },
                    bytes,
                )
                .unwrap();
        };
        for frame in &hot_frames {
            send_key(&mut hot, frame);
        }
        for frame in &mate_frames {
            send_key(&mut mate, frame);
        }
        idle.send(ClientToServer::Shutdown, 1).unwrap();
        drop(idle);
        // Drain updates BEFORE shutdown so the backlog sits in the
        // scheduler (one batch per pass) long enough to be stolen.
        for _ in &hot_frames {
            let update = hot.recv_timeout(Duration::from_secs(30)).unwrap();
            assert!(matches!(update, ServerToClient::StudentUpdate { .. }));
        }
        for _ in &mate_frames {
            let update = mate.recv_timeout(Duration::from_secs(30)).unwrap();
            assert!(matches!(update, ServerToClient::StudentUpdate { .. }));
        }
        hot.send(ClientToServer::Shutdown, 1).unwrap();
        mate.send(ClientToServer::Shutdown, 1).unwrap();
        drop((hot, mate));
        let stats = pool.join().unwrap();
        assert_eq!(stats.total_key_frames(), 15);
        assert_eq!(stats.dropped_jobs(), 0);
        assert_eq!(stats.streams.len(), 3);
        assert_eq!(stats.final_checkpoints.len(), 3);
        let report = stats.snapshot();
        assert!(
            report.streams_stolen >= 1,
            "no steal happened under the reactor: {report:?}"
        );
        let donated: usize = stats.shards.iter().map(|s| s.streams_donated).sum();
        assert_eq!(donated, stats.streams_stolen());
        // Steal-poll ticks flow through the timer wheel under the reactor.
        assert!(report.timer_fires > 0, "no timer-driven passes recorded");
    }
}
