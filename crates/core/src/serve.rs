//! The multi-stream server runtime: a sharded pool of distillation workers.
//!
//! The paper evaluates one client per server, but the server is the shared,
//! expensive side of the system. This module turns the single-stream
//! [`crate::server::ServerState`] into a multi-tenant service:
//!
//! * [`ServeShard`] owns one teacher and one [`DistillSession`] per client
//!   stream assigned to it. Key frames from different streams that arrive
//!   close together are *co-scheduled*: the teacher labels them in one
//!   batched forward pass ([`st_teacher::Teacher::pseudo_label_batch`]) whose
//!   virtual cost is amortized across the batch, and then each stream's
//!   session distills its own student on its own pseudo-label. Streams never
//!   share weights — isolation is structural.
//! * [`ServerPool`] spawns one worker thread per shard, places streams on
//!   shards per [`PlacementPolicy`] (least-loaded by default, static
//!   `id % shards` for reproducibility), and funnels each client's uplink
//!   into the owning shard's queue as [`st_net::StreamTagged`] traffic.
//!   Clients talk to the pool through [`StreamClient`], which implements the
//!   same [`st_net::ClientEndpoint`] surface as the single-stream transport,
//!   so the client-side state machine is byte-for-byte the one Algorithm 4
//!   uses.
//!
//! The pool does **not** trust clients to be well behaved. Three mechanisms
//! keep a hot stream from starving its shard-mates:
//!
//! * **Fair batching** — arriving key frames land in per-stream FIFO queues
//!   and are drained by deficit round-robin ([`FairScheduler`]): every
//!   co-scheduled teacher batch takes at most `quantum` jobs per stream per
//!   round, so batch slots are shared even when one stream has a deep
//!   backlog.
//! * **Admission control** — each stream may have at most `max_in_flight`
//!   key frames queued; excess arrivals are rejected immediately with
//!   [`st_net::ServerToClient::Throttle`], which the client answers by
//!   serving the frame with its local (slightly stale) student — the
//!   fallback the paper's partial/full modes make natural.
//! * **Adaptive co-scheduling** — the batching window grows and shrinks with
//!   the observed backlog ([`AdaptiveBatch`]) instead of sitting at the
//!   static `max_batch`, bounded above by it, and growth stops when the
//!   teacher's marginal batched-inference cost no longer amortizes. Every
//!   batched teacher forward is wall-clock timed ([`TeacherCostProfile`]),
//!   so once real data exists the growth decision runs on *measured*
//!   marginal cost and only falls back to the virtual latency model before
//!   that (or when forwards are too fast to time).
//!
//! The pool reports [`PoolStats`]: per-shard queueing/batching/latency
//! counters plus per-stream key-frame totals, waits, throttles, drops,
//! measured teacher wall time and final server-side checkpoints, which the
//! contention experiments compare against the analytic
//! [`st_sim::ContentionModel`].

use crate::config::{PlacementPolicy, ShadowTutorConfig};
pub use crate::server::StreamServerStats;
use crate::server::{DistillSession, KeyFrameResponse};
use crate::Result;
use st_net::message::MESSAGE_OVERHEAD_BYTES;
use st_net::transport::ClientEndpoint;
use st_net::{
    ClientToServer, DropReason, Payload, ServerToClient, StreamId, StreamTagged, TransportError,
};
use st_nn::snapshot::WeightSnapshot;
use st_nn::student::StudentNet;
use st_teacher::Teacher;
use st_tensor::TensorError;
use st_video::Frame;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a [`ServerPool`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolConfig {
    /// Number of shards (worker threads).
    pub shards: usize,
    /// Ceiling on key frames co-scheduled into one batched teacher forward.
    /// With `adaptive_batch` the live window starts at 1 and moves with the
    /// backlog, never exceeding this.
    pub max_batch: usize,
    /// How long a worker blocks waiting for traffic before re-checking for
    /// shutdown (also the bound on how stale a dead client can leave a shard).
    pub recv_timeout: Duration,
    /// How new streams are assigned to shards.
    pub placement: PlacementPolicy,
    /// Per-stream admission cap: at most this many key frames of one stream
    /// may be queued at its shard; excess arrivals are answered with
    /// [`ServerToClient::Throttle`] instead of being queued.
    pub max_in_flight: usize,
    /// Deficit-round-robin quantum: key frames one stream may contribute to
    /// a co-scheduled batch per scheduling round.
    pub quantum: usize,
    /// Adapt the co-scheduling window to the observed backlog instead of
    /// always draining up to `max_batch`.
    pub adaptive_batch: bool,
}

impl PoolConfig {
    /// A small pool: two shards, up to four co-scheduled key frames, fair
    /// batching and admission control on.
    pub fn default_pool() -> Self {
        PoolConfig {
            shards: 2,
            max_batch: 4,
            recv_timeout: Duration::from_secs(30),
            placement: PlacementPolicy::default(),
            max_in_flight: 4,
            quantum: 1,
            adaptive_batch: true,
        }
    }

    /// A pool with a given shard count and the default batching.
    pub fn with_shards(shards: usize) -> Self {
        PoolConfig {
            shards,
            ..Self::default_pool()
        }
    }

    /// Validate parameter consistency.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(TensorError::InvalidArgument(
                "pool needs at least one shard".into(),
            ));
        }
        if self.max_batch == 0 {
            return Err(TensorError::InvalidArgument(
                "max_batch must be at least 1".into(),
            ));
        }
        if self.max_in_flight == 0 {
            return Err(TensorError::InvalidArgument(
                "max_in_flight must be at least 1 (a stream must be able to queue a key frame)"
                    .into(),
            ));
        }
        if self.quantum == 0 {
            return Err(TensorError::InvalidArgument(
                "quantum must be at least 1".into(),
            ));
        }
        Ok(())
    }

    /// The shard a stream id maps to under static-modulo placement.
    pub fn shard_of(&self, stream_id: StreamId) -> usize {
        (stream_id % self.shards as u64) as usize
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self::default_pool()
    }
}

/// Queueing/batching/latency counters of one shard worker.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShardStats {
    /// Key frames processed by this shard.
    pub key_frames: usize,
    /// Total distillation steps across the shard's streams.
    pub distill_steps: usize,
    /// Batched teacher forward passes taken.
    pub teacher_batches: usize,
    /// Largest co-scheduled batch observed.
    pub max_batch_observed: usize,
    /// Total wall-clock time key frames spent queued before processing began.
    pub queue_wait_total: Duration,
    /// Largest single queue wait observed.
    pub queue_wait_max: Duration,
    /// Wall-clock time the worker spent actively processing batches.
    pub busy_time: Duration,
    /// Total stream-tagged uplink bytes this shard received.
    pub uplink_bytes: usize,
    /// Sum of virtual `server_time` charged to responses (teacher share +
    /// distillation steps).
    pub virtual_server_time: f64,
    /// Virtual teacher time saved by batching, versus labelling every key
    /// frame with a solo forward pass.
    pub teacher_time_saved: f64,
    /// Key-frame jobs that could not be served (unknown stream or frame,
    /// e.g. a key frame arriving after its stream's `Shutdown`). Each one
    /// was answered with [`ServerToClient::Dropped`] when a downlink existed.
    pub dropped_jobs: usize,
    /// Key frames rejected by per-stream admission control.
    pub throttled: usize,
    /// `Register` messages with no connect-time registry entry (register
    /// without connect, or a duplicate register racing a finished stream).
    pub unknown_registers: usize,
    /// Largest co-scheduling window the adaptive batcher reached.
    pub batch_limit_peak: usize,
    /// Measured wall-clock time spent inside batched teacher forwards
    /// ([`st_teacher::Teacher::pseudo_label_batch`]). Unlike
    /// [`ShardStats::virtual_server_time`], this is real compute, so
    /// `teacher_wall_time / key_frames` is the *measured* amortized
    /// per-frame teacher cost batching is supposed to drive down.
    pub teacher_wall_time: Duration,
}

impl ShardStats {
    /// Mean co-scheduled batch size (0.0 when the shard never processed a
    /// batch; at least 1.0 otherwise).
    pub fn mean_batch_size(&self) -> f64 {
        if self.teacher_batches == 0 {
            0.0
        } else {
            self.key_frames as f64 / self.teacher_batches as f64
        }
    }

    /// Mean wall-clock queue wait per key frame in seconds.
    pub fn mean_queue_wait_secs(&self) -> f64 {
        if self.key_frames == 0 {
            0.0
        } else {
            self.queue_wait_total.as_secs_f64() / self.key_frames as f64
        }
    }

    /// Measured amortized teacher cost per key frame in seconds (wall clock,
    /// not the virtual model; 0.0 before any key frame was served).
    pub fn mean_teacher_wall_secs(&self) -> f64 {
        if self.key_frames == 0 {
            0.0
        } else {
            self.teacher_wall_time.as_secs_f64() / self.key_frames as f64
        }
    }
}

/// Aggregate statistics of a pool run, collected at [`ServerPool::join`].
#[derive(Debug)]
pub struct PoolStats {
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Per-stream counters (including per-stream queue waits, throttles and
    /// drops).
    pub streams: HashMap<StreamId, StreamServerStats>,
    /// Final full server-side checkpoint of every finished stream.
    pub final_checkpoints: HashMap<StreamId, WeightSnapshot>,
}

impl PoolStats {
    /// Key frames processed across all shards.
    pub fn total_key_frames(&self) -> usize {
        self.shards.iter().map(|s| s.key_frames).sum()
    }

    /// Distillation steps across all shards.
    pub fn total_distill_steps(&self) -> usize {
        self.shards.iter().map(|s| s.distill_steps).sum()
    }

    /// Key-frame jobs dropped (and acked as such) across all shards.
    pub fn dropped_jobs(&self) -> usize {
        self.shards.iter().map(|s| s.dropped_jobs).sum()
    }

    /// Key frames rejected by admission control across all shards.
    pub fn throttled(&self) -> usize {
        self.shards.iter().map(|s| s.throttled).sum()
    }

    /// Mean co-scheduled batch size across shards (0.0 when no batch was
    /// ever processed; at least 1.0 otherwise).
    pub fn mean_batch_size(&self) -> f64 {
        let batches: usize = self.shards.iter().map(|s| s.teacher_batches).sum();
        if batches == 0 {
            0.0
        } else {
            self.total_key_frames() as f64 / batches as f64
        }
    }

    /// Mean wall-clock queue wait per key frame in seconds.
    pub fn mean_queue_wait_secs(&self) -> f64 {
        let total: f64 = self
            .shards
            .iter()
            .map(|s| s.queue_wait_total.as_secs_f64())
            .sum();
        let k = self.total_key_frames();
        if k == 0 {
            0.0
        } else {
            total / k as f64
        }
    }

    /// Virtual teacher time saved by batching across all shards.
    pub fn teacher_time_saved(&self) -> f64 {
        self.shards.iter().map(|s| s.teacher_time_saved).sum()
    }

    /// Measured wall-clock teacher time across all shards.
    pub fn teacher_wall_time(&self) -> Duration {
        self.shards.iter().map(|s| s.teacher_wall_time).sum()
    }

    /// Measured amortized teacher cost per key frame in seconds across the
    /// pool (wall clock, not the virtual model).
    pub fn mean_teacher_wall_secs(&self) -> f64 {
        let k = self.total_key_frames();
        if k == 0 {
            0.0
        } else {
            self.teacher_wall_time().as_secs_f64() / k as f64
        }
    }
}

/// One stream's registration state inside a shard.
struct StreamEntry {
    session: DistillSession,
    /// The pre-shared frame content, keyed by frame index (the key-frame
    /// message carries encoded pixels for realistic wire sizes; the
    /// in-process shard resolves content by index, as the single-stream live
    /// runtime does).
    frames: HashMap<usize, Frame>,
}

/// A key-frame job drained from the shard queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardJob {
    /// The stream the key frame belongs to.
    pub stream_id: StreamId,
    /// Index of the frame in that stream.
    pub frame_index: usize,
}

/// A queued key-frame job with its arrival timestamp, as handed out by the
/// [`FairScheduler`].
#[derive(Debug, Clone, Copy)]
pub struct ScheduledJob {
    /// The job itself.
    pub job: ShardJob,
    /// When the job entered the shard queue (for wait accounting).
    pub enqueued_at: Instant,
}

/// Per-stream FIFO queues drained by deficit round-robin.
///
/// Every stream with queued key frames sits in a ring; each scheduling round
/// grants a stream `quantum` units of deficit and pops at most that many of
/// its jobs into the batch. A hot stream with a deep backlog therefore gets
/// the same per-round slot count as everyone else, and any queued stream is
/// served within `ceil(streams / max_batch)` batches — no starvation.
///
/// Invariant: `ring` contains exactly the streams with non-empty queues
/// (maintained by `push`/`next_batch`/`remove_stream`; the structure is
/// driven by one worker thread).
pub struct FairScheduler {
    queues: HashMap<StreamId, VecDeque<ScheduledJob>>,
    ring: VecDeque<StreamId>,
    deficits: HashMap<StreamId, usize>,
    quantum: usize,
    queued: usize,
}

impl FairScheduler {
    /// A scheduler granting `quantum` jobs per stream per round (clamped to
    /// at least 1).
    pub fn new(quantum: usize) -> Self {
        FairScheduler {
            queues: HashMap::new(),
            ring: VecDeque::new(),
            deficits: HashMap::new(),
            quantum: quantum.max(1),
            queued: 0,
        }
    }

    /// Queue a key-frame job for its stream.
    pub fn push(&mut self, stream_id: StreamId, frame_index: usize, enqueued_at: Instant) {
        let queue = self.queues.entry(stream_id).or_default();
        if queue.is_empty() {
            self.ring.push_back(stream_id);
        }
        queue.push_back(ScheduledJob {
            job: ShardJob {
                stream_id,
                frame_index,
            },
            enqueued_at,
        });
        self.queued += 1;
    }

    /// Jobs currently queued for one stream (the admission-control signal).
    pub fn queued_for(&self, stream_id: StreamId) -> usize {
        self.queues.get(&stream_id).map_or(0, |q| q.len())
    }

    /// Total queued jobs across all streams.
    pub fn len(&self) -> usize {
        self.queued
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Streams that currently have at least one queued job.
    pub fn active_streams(&self) -> usize {
        self.queues.len()
    }

    /// Pop the next co-scheduled batch: at most `max_batch` jobs, drained
    /// round-robin with per-stream deficits. Returns an empty vector when
    /// nothing is queued or `max_batch == 0`.
    pub fn next_batch(&mut self, max_batch: usize) -> Vec<ScheduledJob> {
        let mut out = Vec::new();
        while out.len() < max_batch && self.queued > 0 {
            let Some(stream_id) = self.ring.pop_front() else {
                break;
            };
            let Some(queue) = self.queues.get_mut(&stream_id) else {
                self.deficits.remove(&stream_id);
                continue;
            };
            let deficit = self.deficits.entry(stream_id).or_insert(0);
            // A fresh turn is granted the quantum (capped at what is
            // actually poppable); an interrupted turn resumes its unspent
            // deficit without a new grant, so it cannot bank credit and hold
            // the ring head indefinitely.
            if *deficit == 0 {
                *deficit = self.quantum.min(queue.len());
            }
            while *deficit > 0 && out.len() < max_batch {
                let Some(job) = queue.pop_front() else {
                    break;
                };
                *deficit -= 1;
                self.queued -= 1;
                out.push(job);
            }
            let unspent = *deficit;
            if queue.is_empty() {
                self.queues.remove(&stream_id);
                self.deficits.remove(&stream_id);
            } else if out.len() >= max_batch && unspent > 0 {
                // Batch filled mid-quantum: the stream keeps its remaining
                // deficit and its place at the head of the ring.
                self.ring.push_front(stream_id);
            } else {
                // Quantum spent (jobs left): back of the ring, so the next
                // batch starts with someone else even when this batch could
                // not look past the head.
                self.ring.push_back(stream_id);
            }
        }
        out
    }

    /// Remove a stream entirely (on `Shutdown`), returning its still-queued
    /// jobs in FIFO order so the caller can flush them before retiring the
    /// session.
    pub fn remove_stream(&mut self, stream_id: StreamId) -> Vec<ScheduledJob> {
        let jobs: Vec<ScheduledJob> = self
            .queues
            .remove(&stream_id)
            .map(|q| q.into_iter().collect())
            .unwrap_or_default();
        self.queued -= jobs.len();
        self.deficits.remove(&stream_id);
        self.ring.retain(|s| *s != stream_id);
        jobs
    }
}

impl Default for FairScheduler {
    fn default() -> Self {
        Self::new(1)
    }
}

/// Load-adaptive co-scheduling window.
///
/// Multiplicative increase/decrease between 1 and the configured `max_batch`
/// ceiling: the window doubles while the observed backlog exceeds it *and*
/// the teacher's marginal batched-inference cost still amortizes, and halves
/// when the backlog falls below half the window (deep windows buy teacher
/// amortization at the price of per-frame latency, so they are only worth
/// holding under real queue pressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveBatch {
    ceiling: usize,
    current: usize,
    enabled: bool,
}

impl AdaptiveBatch {
    /// A window bounded by `ceiling`; when `enabled` it starts at 1 and
    /// adapts, otherwise it is pinned to the ceiling (the static behaviour).
    pub fn new(ceiling: usize, enabled: bool) -> Self {
        let ceiling = ceiling.max(1);
        AdaptiveBatch {
            ceiling,
            current: if enabled { 1 } else { ceiling },
            enabled,
        }
    }

    /// The current co-scheduling window.
    pub fn limit(&self) -> usize {
        self.current
    }

    /// The configured ceiling.
    pub fn ceiling(&self) -> usize {
        self.ceiling
    }

    /// Feed one observation: the backlog remaining after a batch completed,
    /// and whether growing the window would still amortize teacher time
    /// (the marginal batched cost of one more slot is below a solo forward).
    pub fn observe(&mut self, backlog: usize, growth_pays: bool) {
        if !self.enabled {
            return;
        }
        if backlog > self.current && growth_pays {
            self.current = (self.current * 2).min(self.ceiling);
        } else if backlog < self.current / 2 {
            self.current = (self.current / 2).max(1);
        }
    }
}

/// Outcome of one co-scheduled batch: per-stream responses plus the jobs
/// that could not be served (each with its reason).
#[derive(Debug)]
pub struct BatchOutcome {
    /// `(stream, frame index, response)` per serviced key frame, in
    /// scheduling order.
    pub responses: Vec<(StreamId, usize, KeyFrameResponse)>,
    /// Jobs whose stream or frame was unknown. Counted in
    /// [`ShardStats::dropped_jobs`].
    pub dropped: Vec<(ShardJob, DropReason)>,
}

/// Measured wall-clock cost of batched teacher forwards, by batch size.
///
/// The shard records the duration of every
/// [`st_teacher::Teacher::pseudo_label_batch`] call into a per-batch-size
/// exponential moving average. [`ServeShard::batch_growth_pays`] then judges
/// window growth on this *measured* marginal-cost data — the slope between
/// the two largest observed batch sizes — instead of the teacher's virtual
/// latency model, so the adaptive co-scheduling window tracks what batching
/// actually buys on the hardware at hand. Until enough sizes have been
/// observed (or when forwards are too fast to time meaningfully, e.g. the
/// oracle teacher), the caller falls back to the virtual model.
#[derive(Debug, Clone)]
pub struct TeacherCostProfile {
    /// EMA of batched-forward wall seconds, indexed by batch size.
    ema: Vec<Option<f64>>,
}

/// EMA smoothing factor for new batched-forward cost observations.
const COST_EMA_ALPHA: f64 = 0.3;
/// Forwards faster than this (seconds) are considered unmeasurable: timer
/// noise would dominate any marginal-cost estimate.
const COST_MEASURABLE_FLOOR: f64 = 1e-4;

impl TeacherCostProfile {
    /// An empty profile.
    pub fn new() -> Self {
        TeacherCostProfile { ema: Vec::new() }
    }

    /// Record one batched forward of `batch` frames that took `secs`.
    pub fn record(&mut self, batch: usize, secs: f64) {
        if batch == 0 || !secs.is_finite() || secs < 0.0 {
            return;
        }
        if self.ema.len() <= batch {
            self.ema.resize(batch + 1, None);
        }
        self.ema[batch] = Some(match self.ema[batch] {
            Some(prev) => (1.0 - COST_EMA_ALPHA) * prev + COST_EMA_ALPHA * secs,
            None => secs,
        });
    }

    /// Smoothed wall cost of a batched forward of exactly `batch` frames
    /// (`None` when that size has not been observed).
    pub fn estimate(&self, batch: usize) -> Option<f64> {
        self.ema.get(batch).copied().flatten()
    }

    /// Measured per-frame cost at the largest observed batch size not above
    /// `batch` (`None` when nothing relevant was observed).
    pub fn per_frame_at_or_below(&self, batch: usize) -> Option<f64> {
        self.ema
            .iter()
            .enumerate()
            .take(batch + 1)
            .rev()
            .find_map(|(size, ema)| ema.map(|cost| cost / size as f64))
    }

    /// Whether growing the window beyond `batch` still amortizes, judged on
    /// measured data: the marginal cost per extra slot — the slope between
    /// the two largest observed sizes at or below `batch + 1` — must be
    /// below the measured solo-forward cost. `None` when fewer than two
    /// sizes have been observed or the forwards are too fast to time
    /// ([`COST_MEASURABLE_FLOOR`]), in which case the caller should fall
    /// back to the teacher's virtual latency model.
    pub fn growth_pays(&self, batch: usize) -> Option<bool> {
        let solo = self.estimate(1)?;
        if solo < COST_MEASURABLE_FLOOR {
            return None;
        }
        let mut observed = self
            .ema
            .iter()
            .enumerate()
            .take(batch + 2)
            .filter_map(|(size, ema)| ema.map(|cost| (size, cost)));
        let (mut lo_size, mut lo_cost) = observed.next()?;
        let (mut hi_size, mut hi_cost) = (lo_size, lo_cost);
        for (size, cost) in observed {
            lo_size = hi_size;
            lo_cost = hi_cost;
            hi_size = size;
            hi_cost = cost;
        }
        if hi_size == lo_size {
            return None;
        }
        let marginal = (hi_cost - lo_cost) / (hi_size - lo_size) as f64;
        Some(marginal < solo)
    }
}

impl Default for TeacherCostProfile {
    fn default() -> Self {
        Self::new()
    }
}

/// One shard: a shared teacher plus one distillation session per stream.
///
/// The shard is a synchronous state machine — the worker thread in
/// [`ServerPool`] drives it from a queue, and tests can drive it directly.
pub struct ServeShard<T: Teacher> {
    config: ShadowTutorConfig,
    distill_step_latency: f64,
    template: StudentNet,
    teacher: T,
    sessions: HashMap<StreamId, StreamEntry>,
    stats: ShardStats,
    costs: TeacherCostProfile,
}

impl<T: Teacher> ServeShard<T> {
    /// Create a shard serving sessions cloned from `template`.
    pub fn new(
        config: ShadowTutorConfig,
        template: StudentNet,
        teacher: T,
        distill_step_latency: f64,
    ) -> Self {
        ServeShard {
            config,
            distill_step_latency,
            template,
            teacher,
            sessions: HashMap::new(),
            stats: ShardStats::default(),
            costs: TeacherCostProfile::new(),
        }
    }

    /// Register a stream: create its session and return the initial full
    /// checkpoint (Algorithm 3, line 1, per stream).
    ///
    /// A duplicate register does **not** clobber the live session or its
    /// pre-shared frames (the pool rejects duplicate connects before they
    /// reach the shard); it returns the session's current checkpoint.
    pub fn register(
        &mut self,
        stream_id: StreamId,
        frames: HashMap<usize, Frame>,
    ) -> WeightSnapshot {
        use std::collections::hash_map::Entry;
        match self.sessions.entry(stream_id) {
            Entry::Occupied(mut occupied) => occupied.get_mut().session.initial_checkpoint(),
            Entry::Vacant(vacant) => {
                let entry = vacant.insert(StreamEntry {
                    session: DistillSession::new(
                        self.config,
                        self.template.clone(),
                        self.distill_step_latency,
                    ),
                    frames,
                });
                entry.session.initial_checkpoint()
            }
        }
    }

    /// Number of streams currently registered.
    pub fn stream_count(&self) -> usize {
        self.sessions.len()
    }

    /// Whether a stream has a registered session.
    pub fn has_stream(&self, stream_id: StreamId) -> bool {
        self.sessions.contains_key(&stream_id)
    }

    /// Whether a stream has a registered session *and* the frame was
    /// pre-shared.
    pub fn has_frame(&self, stream_id: StreamId, frame_index: usize) -> bool {
        self.sessions
            .get(&stream_id)
            .is_some_and(|e| e.frames.contains_key(&frame_index))
    }

    /// Ids of all currently registered streams.
    pub fn session_ids(&self) -> Vec<StreamId> {
        self.sessions.keys().copied().collect()
    }

    /// Virtual cost of adding one more slot to a co-scheduled batch of
    /// `batch` frames.
    pub fn marginal_batch_cost(&self, batch: usize) -> f64 {
        self.teacher.batched_inference_latency(batch + 1)
            - self.teacher.batched_inference_latency(batch)
    }

    /// Whether growing the co-scheduling window beyond `batch` still
    /// amortizes teacher time.
    ///
    /// Judged on the *measured* marginal batched-forward cost when the shard
    /// has timed enough batched forwards ([`TeacherCostProfile`]); until
    /// then — or when forwards are too fast to time — on the teacher's
    /// virtual latency model (marginal virtual cost below a solo forward).
    pub fn batch_growth_pays(&self, batch: usize) -> bool {
        match self.costs.growth_pays(batch) {
            Some(pays) => pays,
            None => self.marginal_batch_cost(batch) < self.teacher.inference_latency(),
        }
    }

    /// The measured batched-forward cost profile collected so far.
    pub fn measured_costs(&self) -> &TeacherCostProfile {
        &self.costs
    }

    /// Process a co-scheduled batch of key frames: one batched teacher
    /// forward across the batch, then per-stream distillation in scheduling
    /// order. Jobs whose stream or frame is unknown are returned in
    /// [`BatchOutcome::dropped`] and counted in
    /// [`ShardStats::dropped_jobs`] — never silently discarded.
    pub fn process_batch(&mut self, jobs: &[ShardJob]) -> Result<BatchOutcome> {
        // Resolve which jobs are known. Frames stay where they are — they
        // are borrowed for labelling and distillation, never copied (a frame
        // is the whole RGB tensor plus its ground truth).
        let mut dropped: Vec<(ShardJob, DropReason)> = Vec::new();
        let mut resolved: Vec<ShardJob> = Vec::new();
        for job in jobs {
            match self.sessions.get(&job.stream_id) {
                None => dropped.push((*job, DropReason::UnknownStream)),
                Some(entry) if !entry.frames.contains_key(&job.frame_index) => {
                    dropped.push((*job, DropReason::UnknownFrame))
                }
                Some(_) => resolved.push(*job),
            }
        }
        self.stats.dropped_jobs += dropped.len();
        if resolved.is_empty() {
            return Ok(BatchOutcome {
                responses: Vec::new(),
                dropped,
            });
        }

        // One teacher forward pass amortized over the co-scheduled frames,
        // timed so the adaptive batcher grows on measured marginal cost.
        let batch = resolved.len();
        let teacher_started = Instant::now();
        let labels = {
            let frame_refs: Vec<&Frame> = resolved
                .iter()
                .map(|job| &self.sessions[&job.stream_id].frames[&job.frame_index])
                .collect();
            self.teacher.pseudo_label_batch(&frame_refs)?
        };
        let teacher_elapsed = teacher_started.elapsed();
        self.stats.teacher_wall_time += teacher_elapsed;
        self.costs.record(batch, teacher_elapsed.as_secs_f64());
        let solo_cost = batch as f64 * self.teacher.inference_latency();
        let batched_cost = self.teacher.batched_inference_latency(batch);
        let teacher_share = batched_cost / batch as f64;
        self.stats.teacher_batches += 1;
        self.stats.max_batch_observed = self.stats.max_batch_observed.max(batch);
        self.stats.teacher_time_saved += solo_cost - batched_cost;

        let mut out = Vec::with_capacity(batch);
        for (job, label) in resolved.into_iter().zip(labels) {
            let entry = self
                .sessions
                .get_mut(&job.stream_id)
                .expect("session present: resolved above");
            // Split the entry so the frame borrow and the mutable session
            // borrow coexist.
            let StreamEntry { session, frames } = entry;
            let frame = frames
                .get(&job.frame_index)
                .expect("frame present: resolved above");
            let response = session.distill(frame, &label, teacher_share)?;
            self.stats.key_frames += 1;
            self.stats.distill_steps += response.outcome.steps;
            self.stats.virtual_server_time += response.server_time;
            out.push((job.stream_id, job.frame_index, response));
        }
        Ok(BatchOutcome {
            responses: out,
            dropped,
        })
    }

    /// Finish a stream: remove its session, returning the final full
    /// checkpoint and the stream's counters (distillation half only — the
    /// pool worker merges in waits/throttles/drops).
    pub fn finish(&mut self, stream_id: StreamId) -> Option<(WeightSnapshot, StreamServerStats)> {
        self.sessions.remove(&stream_id).map(|mut entry| {
            let checkpoint = entry.session.initial_checkpoint();
            let stats = entry.session.stats();
            (checkpoint, stats)
        })
    }

    /// The shard's counters so far.
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// The teacher shared by this shard's streams.
    pub fn teacher_mut(&mut self) -> &mut T {
        &mut self.teacher
    }
}

/// A stream-tagged uplink message queued at a shard.
#[derive(Clone)]
struct Envelope {
    tagged: StreamTagged<ClientToServer>,
    bytes: usize,
    enqueued_at: Instant,
}

/// The sending half of one stream's downlink (wire size + message).
type Downlink = crossbeam::channel::Sender<(usize, ServerToClient)>;

/// Per-stream connection state the worker looks up when a `Register`
/// message arrives: the downlink back to the client and the pre-shared
/// frame content.
struct StreamLink {
    downlink: Downlink,
    frames: HashMap<usize, Frame>,
}

type Registry = Arc<Mutex<HashMap<StreamId, StreamLink>>>;

/// What one worker thread hands back when the pool joins.
struct ShardOutput {
    stats: ShardStats,
    streams: HashMap<StreamId, StreamServerStats>,
    final_checkpoints: HashMap<StreamId, WeightSnapshot>,
}

/// The client's endpoint onto the pool: same surface as the single-stream
/// transport, but every uplink message is stream-tagged and lands in the
/// owning shard's queue.
pub struct StreamClient {
    stream_id: StreamId,
    uplink: crossbeam::channel::Sender<Envelope>,
    downlink: crossbeam::channel::Receiver<(usize, ServerToClient)>,
}

impl StreamClient {
    /// The stream this client speaks for.
    pub fn stream_id(&self) -> StreamId {
        self.stream_id
    }
}

impl ClientEndpoint for StreamClient {
    fn send(
        &mut self,
        message: ClientToServer,
        bytes: usize,
    ) -> std::result::Result<(), TransportError> {
        self.uplink
            .send(Envelope {
                tagged: StreamTagged::new(self.stream_id, message),
                bytes: StreamTagged::<ClientToServer>::tagged_bytes(bytes),
                enqueued_at: Instant::now(),
            })
            .map_err(|_| TransportError::Disconnected)
    }

    fn try_recv(&mut self) -> std::result::Result<Option<ServerToClient>, TransportError> {
        match self.downlink.try_recv() {
            Ok((_bytes, msg)) => Ok(Some(msg)),
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => {
                Err(TransportError::Disconnected)
            }
        }
    }

    fn recv_timeout(
        &mut self,
        timeout: Duration,
    ) -> std::result::Result<ServerToClient, TransportError> {
        match self.downlink.recv_timeout(timeout) {
            Ok((_bytes, msg)) => Ok(msg),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(TransportError::Disconnected)
            }
        }
    }
}

/// A sharded pool of distillation workers serving many client streams.
pub struct ServerPool {
    pool_config: PoolConfig,
    uplinks: Vec<crossbeam::channel::Sender<Envelope>>,
    registries: Vec<Registry>,
    /// Registered-session count per shard, shared with the workers (who
    /// decrement when a stream finishes) — the least-loaded placement signal.
    loads: Vec<Arc<AtomicUsize>>,
    /// Stream → shard placements made so far. A stream id stays reserved for
    /// the pool's lifetime; reconnecting a finished id needs a new pool.
    placements: Mutex<HashMap<StreamId, usize>>,
    workers: Vec<std::thread::JoinHandle<Result<ShardOutput>>>,
}

impl ServerPool {
    /// Spawn `pool_config.shards` worker threads. Each shard gets its own
    /// teacher from `teacher_factory(shard_index)` and serves sessions cloned
    /// from `template`.
    pub fn spawn<T, F>(
        config: ShadowTutorConfig,
        pool_config: PoolConfig,
        template: StudentNet,
        distill_step_latency: f64,
        mut teacher_factory: F,
    ) -> Result<ServerPool>
    where
        T: Teacher + Send + 'static,
        F: FnMut(usize) -> T,
    {
        config.validate()?;
        pool_config.validate()?;
        let mut uplinks = Vec::with_capacity(pool_config.shards);
        let mut registries = Vec::with_capacity(pool_config.shards);
        let mut loads = Vec::with_capacity(pool_config.shards);
        let mut workers = Vec::with_capacity(pool_config.shards);
        for shard_index in 0..pool_config.shards {
            let (tx, rx) = crossbeam::channel::unbounded::<Envelope>();
            let registry: Registry = Arc::new(Mutex::new(HashMap::new()));
            let load = Arc::new(AtomicUsize::new(0));
            let shard = ServeShard::new(
                config,
                template.clone(),
                teacher_factory(shard_index),
                distill_step_latency,
            );
            let worker_registry = Arc::clone(&registry);
            let worker_load = Arc::clone(&load);
            workers.push(std::thread::spawn(move || {
                run_worker(shard, rx, worker_registry, pool_config, worker_load)
            }));
            uplinks.push(tx);
            registries.push(registry);
            loads.push(load);
        }
        Ok(ServerPool {
            pool_config,
            uplinks,
            registries,
            loads,
            placements: Mutex::new(HashMap::new()),
            workers,
        })
    }

    /// The pool's configuration.
    pub fn config(&self) -> PoolConfig {
        self.pool_config
    }

    /// Current registered-session count of each shard.
    pub fn shard_loads(&self) -> Vec<usize> {
        self.loads
            .iter()
            .map(|l| l.load(Ordering::SeqCst))
            .collect()
    }

    /// Connect a new stream: choose its shard per the placement policy,
    /// pre-share its frame content with that shard, enqueue its `Register`
    /// message, and return the client's endpoint. The first downlink message
    /// is the initial student checkpoint.
    ///
    /// Errors if the stream id is already connected to this pool — a second
    /// connect would silently clobber the first session's downlink and
    /// pre-shared frames mid-flight.
    pub fn connect(&self, stream_id: StreamId, frames: &[Frame]) -> Result<StreamClient> {
        let shard = {
            let mut placements = self.placements.lock().expect("placements lock");
            if placements.contains_key(&stream_id) {
                return Err(TensorError::InvalidArgument(format!(
                    "stream {stream_id} is already connected to this pool"
                )));
            }
            let shard = match self.pool_config.placement {
                PlacementPolicy::StaticModulo => self.pool_config.shard_of(stream_id),
                PlacementPolicy::LeastLoaded => self
                    .loads
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, load)| load.load(Ordering::SeqCst))
                    .map(|(index, _)| index)
                    .unwrap_or(0),
            };
            self.loads[shard].fetch_add(1, Ordering::SeqCst);
            placements.insert(stream_id, shard);
            shard
        };
        let (down_tx, down_rx) = crossbeam::channel::unbounded();
        let content: HashMap<usize, Frame> = frames.iter().map(|f| (f.index, f.clone())).collect();
        self.registries[shard]
            .lock()
            .expect("registry lock")
            .insert(
                stream_id,
                StreamLink {
                    downlink: down_tx,
                    frames: content,
                },
            );
        let mut client = StreamClient {
            stream_id,
            uplink: self.uplinks[shard].clone(),
            downlink: down_rx,
        };
        // Registration is the client's first uplink message; sending it here
        // lets callers immediately block on the initial checkpoint. A failed
        // send (the shard worker died) must roll the placement back, or the
        // id would be burned and the shard's load over-counted forever.
        if client
            .send(ClientToServer::Register, MESSAGE_OVERHEAD_BYTES)
            .is_err()
        {
            self.registries[shard]
                .lock()
                .expect("registry lock")
                .remove(&stream_id);
            self.loads[shard].fetch_sub(1, Ordering::SeqCst);
            self.placements
                .lock()
                .expect("placements lock")
                .remove(&stream_id);
            return Err(TensorError::InvalidArgument(
                "server pool worker is not accepting connections".into(),
            ));
        }
        Ok(client)
    }

    /// Drop the pool's uplink handles and join every worker, collecting the
    /// aggregate statistics. Clients must have dropped (or finished with)
    /// their `StreamClient`s for the workers' queues to disconnect.
    pub fn join(self) -> Result<PoolStats> {
        drop(self.uplinks);
        drop(self.registries);
        let mut stats = PoolStats {
            shards: Vec::with_capacity(self.workers.len()),
            streams: HashMap::new(),
            final_checkpoints: HashMap::new(),
        };
        for worker in self.workers {
            let output = worker
                .join()
                .map_err(|_| TensorError::InvalidArgument("shard worker panicked".into()))??;
            stats.shards.push(output.stats);
            stats.streams.extend(output.streams);
            stats.final_checkpoints.extend(output.final_checkpoints);
        }
        Ok(stats)
    }
}

/// Per-stream wall-clock accounting the worker keeps alongside the shard
/// (waits and admission decisions are only visible at the worker).
#[derive(Debug, Default, Clone, Copy)]
struct StreamMeter {
    wait_total: Duration,
    wait_max: Duration,
    throttled: usize,
    dropped: usize,
}

/// Wall-clock accumulators merged into [`ShardStats`] when the worker exits.
#[derive(Debug, Default)]
struct WorkerClock {
    queue_wait_total: Duration,
    queue_wait_max: Duration,
    busy_time: Duration,
}

/// Run one fair co-scheduled batch through the shard and route every
/// response (update or drop ack) to its stream's downlink.
fn process_scheduled<T: Teacher>(
    shard: &mut ServeShard<T>,
    batch: &[ScheduledJob],
    downlinks: &HashMap<StreamId, Downlink>,
    meters: &mut HashMap<StreamId, StreamMeter>,
    clock: &mut WorkerClock,
) -> Result<()> {
    if batch.is_empty() {
        return Ok(());
    }
    let started = Instant::now();
    for scheduled in batch {
        let wait = started.saturating_duration_since(scheduled.enqueued_at);
        clock.queue_wait_total += wait;
        clock.queue_wait_max = clock.queue_wait_max.max(wait);
        let meter = meters.entry(scheduled.job.stream_id).or_default();
        meter.wait_total += wait;
        meter.wait_max = meter.wait_max.max(wait);
    }
    let jobs: Vec<ShardJob> = batch.iter().map(|s| s.job).collect();
    let outcome = shard.process_batch(&jobs)?;
    for (stream_id, frame_index, response) in outcome.responses {
        let Some(downlink) = downlinks.get(&stream_id) else {
            continue;
        };
        let payload = Payload::with_data(response.update.encode());
        let bytes = payload.bytes;
        let msg = ServerToClient::StudentUpdate {
            frame_index,
            metric: response.metric,
            distill_steps: response.outcome.steps,
            payload,
        };
        // A client that hung up mid-stream only loses its own updates.
        let _ = downlink.send((bytes, msg));
    }
    for (job, reason) in outcome.dropped {
        meters.entry(job.stream_id).or_default().dropped += 1;
        if let Some(downlink) = downlinks.get(&job.stream_id) {
            let _ = downlink.send((
                MESSAGE_OVERHEAD_BYTES,
                ServerToClient::Dropped {
                    frame_index: job.frame_index,
                    reason,
                },
            ));
        }
    }
    clock.busy_time += started.elapsed();
    Ok(())
}

/// Credit a door-rejected key frame to the stream's live meter — or, when
/// the stream has already been retired (the post-`Shutdown` race), directly
/// to its final [`StreamServerStats`], so the per-stream drop count cannot
/// silently stay at zero for exactly the frames the accounting exists for.
fn note_drop(
    streams: &mut HashMap<StreamId, StreamServerStats>,
    meters: &mut HashMap<StreamId, StreamMeter>,
    stream_id: StreamId,
) {
    if let Some(stats) = streams.get_mut(&stream_id) {
        stats.dropped += 1;
    } else {
        meters.entry(stream_id).or_default().dropped += 1;
    }
}

/// As [`note_drop`], for admission-control throttles.
fn note_throttle(
    streams: &mut HashMap<StreamId, StreamServerStats>,
    meters: &mut HashMap<StreamId, StreamMeter>,
    stream_id: StreamId,
) {
    if let Some(stats) = streams.get_mut(&stream_id) {
        stats.throttled += 1;
    } else {
        meters.entry(stream_id).or_default().throttled += 1;
    }
}

/// Retire one stream: pull its session out of the shard, merge the worker's
/// wait/throttle/drop meter into the stream stats, and release its load slot.
fn retire<T: Teacher>(
    shard: &mut ServeShard<T>,
    stream_id: StreamId,
    meters: &mut HashMap<StreamId, StreamMeter>,
    load: &AtomicUsize,
) -> Option<(WeightSnapshot, StreamServerStats)> {
    shard.finish(stream_id).map(|(checkpoint, mut stats)| {
        if let Some(meter) = meters.remove(&stream_id) {
            stats.queue_wait_total = meter.wait_total;
            stats.queue_wait_max = meter.wait_max;
            stats.throttled = meter.throttled;
            stats.dropped = meter.dropped;
        }
        load.fetch_sub(1, Ordering::SeqCst);
        (checkpoint, stats)
    })
}

/// The shard worker loop: fair-queue incoming key frames per stream, handle
/// registrations and shutdowns in arrival order, drain deficit-round-robin
/// batches through the shard, and push responses onto each stream's
/// downlink.
fn run_worker<T: Teacher>(
    mut shard: ServeShard<T>,
    rx: crossbeam::channel::Receiver<Envelope>,
    registry: Registry,
    pool_config: PoolConfig,
    load: Arc<AtomicUsize>,
) -> Result<ShardOutput> {
    let mut scheduler = FairScheduler::new(pool_config.quantum);
    let mut batcher = AdaptiveBatch::new(pool_config.max_batch, pool_config.adaptive_batch);
    let mut downlinks: HashMap<StreamId, Downlink> = HashMap::new();
    let mut meters: HashMap<StreamId, StreamMeter> = HashMap::new();
    let mut streams: HashMap<StreamId, StreamServerStats> = HashMap::new();
    let mut final_checkpoints: HashMap<StreamId, WeightSnapshot> = HashMap::new();
    let mut clock = WorkerClock::default();
    let mut uplink_bytes = 0usize;
    let mut throttled = 0usize;
    let mut enqueue_drops = 0usize;
    let mut unknown_registers = 0usize;
    let mut batch_limit_peak = batcher.limit();
    let mut disconnected = false;
    loop {
        // Gather traffic. Block only when there is no backlog to work on;
        // with queued jobs, poll so service keeps flowing between arrivals.
        let mut incoming: Vec<Envelope> = Vec::new();
        if scheduler.is_empty() {
            if disconnected {
                break;
            }
            match rx.recv_timeout(pool_config.recv_timeout) {
                Ok(envelope) => incoming.push(envelope),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    disconnected = true;
                    continue;
                }
            }
        }
        loop {
            match rx.try_recv() {
                Ok(envelope) => incoming.push(envelope),
                // Empty only means "no more traffic right now"; Disconnected
                // means every uplink handle is gone and the worker should
                // flush its backlog and exit. (The seed conflated the two,
                // deferring shutdown detection to the next recv_timeout
                // tick.)
                Err(crossbeam::channel::TryRecvError::Empty) => break,
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }

        // Control messages in arrival order; key frames into the fair
        // per-stream queues, gated by admission control.
        for envelope in incoming {
            uplink_bytes += envelope.bytes;
            let stream_id = envelope.tagged.stream_id;
            match envelope.tagged.message {
                ClientToServer::Register => {
                    let Some(link) = registry.lock().expect("registry lock").remove(&stream_id)
                    else {
                        // Register without a connect-time registry entry —
                        // counted instead of silently ignored.
                        unknown_registers += 1;
                        continue;
                    };
                    let initial = shard.register(stream_id, link.frames);
                    let payload = Payload::with_data(initial.encode());
                    let bytes = payload.bytes;
                    let _ = link
                        .downlink
                        .send((bytes, ServerToClient::InitialStudent { payload }));
                    downlinks.insert(stream_id, link.downlink);
                }
                ClientToServer::KeyFrame {
                    frame_index,
                    payload: _,
                } => {
                    // Unservable jobs are refused at the door with an
                    // explicit ack instead of being silently filtered later.
                    let reject = if !shard.has_stream(stream_id) {
                        Some(DropReason::UnknownStream)
                    } else if !shard.has_frame(stream_id, frame_index) {
                        Some(DropReason::UnknownFrame)
                    } else {
                        None
                    };
                    if let Some(reason) = reject {
                        enqueue_drops += 1;
                        note_drop(&mut streams, &mut meters, stream_id);
                        if let Some(downlink) = downlinks.get(&stream_id) {
                            let _ = downlink.send((
                                MESSAGE_OVERHEAD_BYTES,
                                ServerToClient::Dropped {
                                    frame_index,
                                    reason,
                                },
                            ));
                        }
                        continue;
                    }
                    // Admission control: per-stream in-flight cap.
                    if scheduler.queued_for(stream_id) >= pool_config.max_in_flight {
                        throttled += 1;
                        note_throttle(&mut streams, &mut meters, stream_id);
                        if let Some(downlink) = downlinks.get(&stream_id) {
                            let _ = downlink.send((
                                MESSAGE_OVERHEAD_BYTES,
                                ServerToClient::Throttle { frame_index },
                            ));
                        }
                        continue;
                    }
                    scheduler.push(stream_id, frame_index, envelope.enqueued_at);
                }
                ClientToServer::Shutdown => {
                    // Flush the stream's still-queued key frames so its last
                    // updates are not lost, then retire the session.
                    let remaining = scheduler.remove_stream(stream_id);
                    for chunk in remaining.chunks(batcher.limit().max(1)) {
                        process_scheduled(&mut shard, chunk, &downlinks, &mut meters, &mut clock)?;
                    }
                    if let Some((checkpoint, stream_stats)) =
                        retire(&mut shard, stream_id, &mut meters, &load)
                    {
                        streams.insert(stream_id, stream_stats);
                        final_checkpoints.insert(stream_id, checkpoint);
                    }
                    // The downlink stays open so late key frames of this
                    // stream still receive an explicit Dropped ack.
                }
            }
        }

        // One fair co-scheduled batch per pass; the loop re-polls the uplink
        // between batches so new arrivals join the next scheduling round.
        let batch = scheduler.next_batch(batcher.limit());
        if !batch.is_empty() {
            process_scheduled(&mut shard, &batch, &downlinks, &mut meters, &mut clock)?;
            batcher.observe(scheduler.len(), shard.batch_growth_pays(batcher.limit()));
            batch_limit_peak = batch_limit_peak.max(batcher.limit());
        }
    }
    // Clients that vanished without Shutdown still get their sessions
    // retired so their checkpoints and counters are reported. (The backlog
    // is already drained: the loop only exits when the scheduler is empty.)
    for stream_id in shard.session_ids() {
        if let Some((checkpoint, stream_stats)) = retire(&mut shard, stream_id, &mut meters, &load)
        {
            streams.insert(stream_id, stream_stats);
            final_checkpoints.insert(stream_id, checkpoint);
        }
    }
    let mut stats = shard.stats();
    stats.queue_wait_total = clock.queue_wait_total;
    stats.queue_wait_max = clock.queue_wait_max;
    stats.busy_time = clock.busy_time;
    stats.uplink_bytes = uplink_bytes;
    stats.throttled = throttled;
    stats.dropped_jobs += enqueue_drops;
    stats.unknown_registers = unknown_registers;
    stats.batch_limit_peak = batch_limit_peak;
    Ok(ShardOutput {
        stats,
        streams,
        final_checkpoints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_nn::student::StudentConfig;
    use st_teacher::OracleTeacher;
    use st_video::dataset::tiny_stream as frames_for;
    use st_video::SceneKind;

    fn shard() -> ServeShard<OracleTeacher> {
        ServeShard::new(
            ShadowTutorConfig::paper(),
            StudentNet::new(StudentConfig::tiny()).unwrap(),
            OracleTeacher::perfect(5),
            0.013,
        )
    }

    fn at(offset_ms: u64) -> Instant {
        Instant::now() + Duration::from_millis(offset_ms)
    }

    #[test]
    fn pool_config_validates_and_routes() {
        assert!(PoolConfig::default_pool().validate().is_ok());
        assert!(PoolConfig {
            shards: 0,
            ..PoolConfig::default_pool()
        }
        .validate()
        .is_err());
        assert!(PoolConfig {
            max_batch: 0,
            ..PoolConfig::default_pool()
        }
        .validate()
        .is_err());
        assert!(PoolConfig {
            max_in_flight: 0,
            ..PoolConfig::default_pool()
        }
        .validate()
        .is_err());
        assert!(PoolConfig {
            quantum: 0,
            ..PoolConfig::default_pool()
        }
        .validate()
        .is_err());
        let p = PoolConfig::with_shards(3);
        assert_eq!(p.shard_of(0), 0);
        assert_eq!(p.shard_of(4), 1);
        assert_eq!(p.shard_of(5), 2);
    }

    #[test]
    fn fair_scheduler_round_robins_across_streams() {
        let mut s = FairScheduler::new(1);
        // A hot stream with a deep backlog and two cold streams with one
        // job each.
        for i in 0..6 {
            s.push(1, i, at(0));
        }
        s.push(2, 100, at(1));
        s.push(3, 200, at(2));
        assert_eq!(s.len(), 8);
        assert_eq!(s.queued_for(1), 6);
        assert_eq!(s.active_streams(), 3);
        // A batch of 3 serves every stream once — the hot stream cannot
        // monopolize the slots.
        let batch = s.next_batch(3);
        let streams: Vec<StreamId> = batch.iter().map(|j| j.job.stream_id).collect();
        assert_eq!(streams, vec![1, 2, 3]);
        // The cold streams are drained; the rest of the backlog belongs to
        // the hot stream.
        let batch = s.next_batch(3);
        assert!(batch.iter().all(|j| j.job.stream_id == 1));
        assert_eq!(s.len(), 2);
        let rest = s.next_batch(10);
        assert_eq!(rest.len(), 2);
        assert!(s.is_empty());
        // FIFO order within the stream.
        let indices: Vec<usize> = rest.iter().map(|j| j.job.frame_index).collect();
        assert_eq!(indices, vec![4, 5]);
    }

    #[test]
    fn fair_scheduler_removal_returns_fifo_backlog() {
        let mut s = FairScheduler::new(2);
        s.push(7, 0, at(0));
        s.push(7, 1, at(1));
        s.push(8, 9, at(2));
        let removed = s.remove_stream(7);
        assert_eq!(
            removed
                .iter()
                .map(|j| j.job.frame_index)
                .collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.queued_for(7), 0);
        // The ring no longer visits the removed stream.
        let batch = s.next_batch(4);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].job.stream_id, 8);
        assert!(s.remove_stream(99).is_empty());
    }

    #[test]
    fn adaptive_batch_tracks_backlog_within_bounds() {
        let mut b = AdaptiveBatch::new(8, true);
        assert_eq!(b.limit(), 1);
        assert_eq!(b.ceiling(), 8);
        // Pressure grows the window multiplicatively, up to the ceiling.
        b.observe(10, true);
        assert_eq!(b.limit(), 2);
        b.observe(10, true);
        b.observe(10, true);
        assert_eq!(b.limit(), 8);
        b.observe(100, true);
        assert_eq!(b.limit(), 8, "never exceeds the ceiling");
        // An idle queue shrinks it back down.
        b.observe(0, true);
        b.observe(0, true);
        b.observe(0, true);
        assert_eq!(b.limit(), 1);
        // Growth is gated on the teacher's marginal cost still amortizing.
        b.observe(10, false);
        assert_eq!(b.limit(), 1);
        // Disabled: pinned to the ceiling regardless of observations.
        let mut pinned = AdaptiveBatch::new(4, false);
        assert_eq!(pinned.limit(), 4);
        pinned.observe(0, true);
        pinned.observe(0, true);
        assert_eq!(pinned.limit(), 4);
    }

    #[test]
    fn cost_profile_judges_growth_on_measured_slope() {
        let mut p = TeacherCostProfile::new();
        // No data: the caller must fall back to the virtual model.
        assert_eq!(p.growth_pays(1), None);
        p.record(1, 10e-3);
        assert_eq!(p.growth_pays(1), None, "one size is not a slope");
        // Sub-linear batching: going 1 -> 4 costs 2 ms/slot vs 10 ms solo.
        p.record(4, 16e-3);
        assert_eq!(p.growth_pays(4), Some(true));
        assert!(p.estimate(4).unwrap() > p.estimate(1).unwrap());
        assert!(p.per_frame_at_or_below(4).unwrap() < p.estimate(1).unwrap());
        // Super-linear batching (thrashing teacher): growth must stop.
        let mut bad = TeacherCostProfile::new();
        bad.record(1, 10e-3);
        bad.record(2, 25e-3);
        assert_eq!(bad.growth_pays(2), Some(false));
        // Unmeasurably fast forwards (oracle teacher): no measured verdict.
        let mut fast = TeacherCostProfile::new();
        fast.record(1, 1e-6);
        fast.record(2, 2e-6);
        assert_eq!(fast.growth_pays(2), None);
        // EMA smooths rather than replaces.
        let mut ema = TeacherCostProfile::new();
        ema.record(1, 10e-3);
        ema.record(1, 20e-3);
        let est = ema.estimate(1).unwrap();
        assert!(est > 10e-3 && est < 20e-3, "EMA {est}");
        // Degenerate observations are ignored.
        ema.record(0, 1.0);
        ema.record(3, f64::NAN);
        assert_eq!(ema.estimate(0), None);
        assert_eq!(ema.estimate(3), None);
    }

    #[test]
    fn shard_records_measured_teacher_cost() {
        let mut s = shard();
        let people = frames_for(SceneKind::People, 91, 2);
        s.register(1, people.iter().map(|f| (f.index, f.clone())).collect());
        s.process_batch(&[ShardJob {
            stream_id: 1,
            frame_index: people[0].index,
        }])
        .unwrap();
        // A real forward happened, so wall time was measured and the cost
        // profile has a batch-1 sample.
        assert!(s.stats().teacher_wall_time > Duration::ZERO);
        assert!(s.stats().mean_teacher_wall_secs() > 0.0);
        assert!(s.measured_costs().estimate(1).is_some());
        // The oracle teacher is microsecond-fast, so the measured profile
        // abstains and growth falls back to the virtual model (which pays).
        assert!(s.batch_growth_pays(1));
    }

    #[test]
    fn shard_keeps_streams_isolated() {
        let mut s = shard();
        let people = frames_for(SceneKind::People, 11, 2);
        let animals = frames_for(SceneKind::Animals, 12, 2);
        let init_a = s.register(1, people.iter().map(|f| (f.index, f.clone())).collect());
        let init_b = s.register(2, animals.iter().map(|f| (f.index, f.clone())).collect());
        // Both sessions start from the same template checkpoint.
        assert!(init_a.distance(&init_b).unwrap() < 1e-9);
        assert_eq!(s.stream_count(), 2);

        // Distill stream 1 only; stream 2's weights must not move.
        let outcome = s
            .process_batch(&[ShardJob {
                stream_id: 1,
                frame_index: people[0].index,
            }])
            .unwrap();
        assert_eq!(outcome.responses.len(), 1);
        assert!(outcome.dropped.is_empty());
        assert!(outcome.responses[0].2.outcome.steps >= 1);
        let (ckpt_b, stats_b) = s.finish(2).unwrap();
        assert_eq!(stats_b.key_frames, 0);
        assert!(ckpt_b.distance(&init_b).unwrap() < 1e-9);
        let (ckpt_a, stats_a) = s.finish(1).unwrap();
        assert_eq!(stats_a.key_frames, 1);
        assert!(ckpt_a.distance(&init_a).unwrap() > 0.0);
    }

    #[test]
    fn duplicate_register_does_not_clobber_the_session() {
        let mut s = shard();
        let people = frames_for(SceneKind::People, 13, 2);
        s.register(1, people.iter().map(|f| (f.index, f.clone())).collect());
        let outcome = s
            .process_batch(&[ShardJob {
                stream_id: 1,
                frame_index: people[0].index,
            }])
            .unwrap();
        assert_eq!(outcome.responses.len(), 1);
        // A duplicate register with *empty* frames must neither reset the
        // session nor lose the pre-shared frames.
        let ckpt = s.register(1, HashMap::new());
        assert!(s.has_frame(1, people[1].index), "frames clobbered");
        let (final_ckpt, stats) = s.finish(1).unwrap();
        assert_eq!(stats.key_frames, 1, "session reset by duplicate register");
        assert!(ckpt.distance(&final_ckpt).unwrap() < 1e-9);
    }

    #[test]
    fn batched_labels_amortize_teacher_time() {
        let mut s = shard();
        let people = frames_for(SceneKind::People, 21, 2);
        let street = frames_for(SceneKind::Street, 22, 2);
        s.register(1, people.iter().map(|f| (f.index, f.clone())).collect());
        s.register(2, street.iter().map(|f| (f.index, f.clone())).collect());
        let outcome = s
            .process_batch(&[
                ShardJob {
                    stream_id: 1,
                    frame_index: people[0].index,
                },
                ShardJob {
                    stream_id: 2,
                    frame_index: street[0].index,
                },
            ])
            .unwrap();
        assert_eq!(outcome.responses.len(), 2);
        let stats = s.stats();
        assert_eq!(stats.teacher_batches, 1);
        assert_eq!(stats.key_frames, 2);
        assert_eq!(stats.max_batch_observed, 2);
        // Batching two frames must be cheaper than two solo forwards.
        assert!(stats.teacher_time_saved > 0.0);
        // The amortized teacher share charged per response is below t_ti.
        let solo = OracleTeacher::perfect(0).inference_latency();
        for (_, _, r) in &outcome.responses {
            assert!(r.server_time < solo + r.outcome.steps as f64 * 0.013 + 1e-12);
        }
        // The default teacher's sub-linear batch cost keeps growth paying.
        assert!(s.batch_growth_pays(2));
        assert!(s.marginal_batch_cost(2) > 0.0);
    }

    #[test]
    fn unknown_jobs_are_acked_not_silently_skipped() {
        let mut s = shard();
        let people = frames_for(SceneKind::People, 31, 1);
        s.register(1, people.iter().map(|f| (f.index, f.clone())).collect());
        let outcome = s
            .process_batch(&[
                ShardJob {
                    stream_id: 9,
                    frame_index: 0,
                }, // unknown stream
                ShardJob {
                    stream_id: 1,
                    frame_index: 999,
                }, // unknown frame
            ])
            .unwrap();
        assert!(outcome.responses.is_empty());
        assert_eq!(outcome.dropped.len(), 2);
        assert_eq!(outcome.dropped[0].1, DropReason::UnknownStream);
        assert_eq!(outcome.dropped[1].1, DropReason::UnknownFrame);
        assert_eq!(s.stats().teacher_batches, 0);
        // The silent-drop bug: the shard now counts every dropped job.
        assert_eq!(s.stats().dropped_jobs, 2);
        assert!(s.finish(9).is_none());
    }

    #[test]
    fn pool_serves_two_streams_end_to_end() {
        let pool = ServerPool::spawn(
            ShadowTutorConfig::paper(),
            PoolConfig {
                shards: 2,
                recv_timeout: Duration::from_millis(200),
                ..PoolConfig::default_pool()
            },
            StudentNet::new(StudentConfig::tiny()).unwrap(),
            0.013,
            |shard| OracleTeacher::perfect(100 + shard as u64),
        )
        .unwrap();
        let streams: Vec<(StreamId, Vec<Frame>)> = vec![
            (0, frames_for(SceneKind::People, 41, 3)),
            (1, frames_for(SceneKind::Animals, 42, 3)),
        ];
        let mut clients: Vec<StreamClient> = streams
            .iter()
            .map(|(id, frames)| pool.connect(*id, frames).unwrap())
            .collect();
        // Least-loaded placement spread the two streams over the two shards.
        assert_eq!(pool.shard_loads(), vec![1, 1]);
        for (client, (_, frames)) in clients.iter_mut().zip(&streams) {
            // Initial checkpoint arrives first.
            let initial = client.recv_timeout(Duration::from_secs(10)).unwrap();
            assert!(matches!(initial, ServerToClient::InitialStudent { .. }));
            // One key frame each.
            let payload = Payload::sized(frames[0].raw_rgb_bytes());
            let bytes = payload.bytes;
            client
                .send(
                    ClientToServer::KeyFrame {
                        frame_index: frames[0].index,
                        payload,
                    },
                    bytes,
                )
                .unwrap();
            let update = client.recv_timeout(Duration::from_secs(10)).unwrap();
            match update {
                ServerToClient::StudentUpdate {
                    frame_index,
                    metric,
                    distill_steps,
                    ..
                } => {
                    assert_eq!(frame_index, frames[0].index);
                    assert!((0.0..=1.0).contains(&metric));
                    assert!(distill_steps <= ShadowTutorConfig::paper().max_updates);
                }
                other => panic!("expected StudentUpdate, got {other:?}"),
            }
            client.send(ClientToServer::Shutdown, 1).unwrap();
        }
        drop(clients);
        let stats = pool.join().unwrap();
        assert_eq!(stats.total_key_frames(), 2);
        assert_eq!(stats.streams.len(), 2);
        assert_eq!(stats.final_checkpoints.len(), 2);
        assert!(stats.streams.values().all(|s| s.key_frames == 1));
        // Streams 0 and 1 land on different shards.
        assert!(stats.shards.iter().all(|s| s.key_frames == 1));
        // Nothing was silently lost in the clean scenario.
        assert_eq!(stats.dropped_jobs(), 0);
        assert_eq!(stats.throttled(), 0);
    }

    #[test]
    fn pool_rejects_duplicate_connect() {
        let pool = ServerPool::spawn(
            ShadowTutorConfig::paper(),
            PoolConfig {
                shards: 1,
                recv_timeout: Duration::from_millis(100),
                ..PoolConfig::default_pool()
            },
            StudentNet::new(StudentConfig::tiny()).unwrap(),
            0.013,
            |_| OracleTeacher::perfect(1),
        )
        .unwrap();
        let frames = frames_for(SceneKind::People, 61, 1);
        let client = pool.connect(5, &frames).unwrap();
        let Err(err) = pool.connect(5, &frames) else {
            panic!("duplicate connect must be rejected");
        };
        assert!(format!("{err:?}").contains("already connected"));
        drop(client);
        pool.join().unwrap();
    }

    #[test]
    fn least_loaded_placement_follows_departures() {
        let pool = ServerPool::spawn(
            ShadowTutorConfig::paper(),
            PoolConfig {
                shards: 2,
                recv_timeout: Duration::from_millis(100),
                ..PoolConfig::default_pool()
            },
            StudentNet::new(StudentConfig::tiny()).unwrap(),
            0.013,
            |shard| OracleTeacher::perfect(300 + shard as u64),
        )
        .unwrap();
        let frames = frames_for(SceneKind::People, 62, 1);
        // Sequential connects alternate shards...
        let mut a = pool.connect(10, &frames).unwrap();
        let _b = pool.connect(11, &frames).unwrap();
        let _c = pool.connect(12, &frames).unwrap();
        assert_eq!(pool.shard_loads().iter().sum::<usize>(), 3);
        assert_eq!(pool.shard_loads(), vec![2, 1]);
        // ...and a departure frees the slot, steering the next connect to
        // the drained shard. (Wait for the shutdown to be processed.)
        a.recv_timeout(Duration::from_secs(10)).unwrap();
        a.send(ClientToServer::Shutdown, 1).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.shard_loads()[0] != 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.shard_loads(), vec![1, 1]);
        let _d = pool.connect(13, &frames).unwrap();
        assert_eq!(pool.shard_loads(), vec![2, 1]);
        drop((a, _b, _c, _d));
        let stats = pool.join().unwrap();
        // Every connected stream is accounted for, with or without Shutdown.
        assert_eq!(stats.streams.len(), 4);
        assert_eq!(stats.final_checkpoints.len(), 4);
    }

    #[test]
    fn static_modulo_placement_is_a_pure_function_of_the_id() {
        let pool = ServerPool::spawn(
            ShadowTutorConfig::paper(),
            PoolConfig {
                shards: 2,
                placement: PlacementPolicy::StaticModulo,
                recv_timeout: Duration::from_millis(100),
                ..PoolConfig::default_pool()
            },
            StudentNet::new(StudentConfig::tiny()).unwrap(),
            0.013,
            |shard| OracleTeacher::perfect(400 + shard as u64),
        )
        .unwrap();
        let frames = frames_for(SceneKind::People, 63, 1);
        // Both even ids land on shard 0 even though shard 1 is empty.
        let a = pool.connect(0, &frames).unwrap();
        let b = pool.connect(2, &frames).unwrap();
        assert_eq!(pool.shard_loads(), vec![2, 0]);
        drop((a, b));
        pool.join().unwrap();
    }
}
