//! The multi-stream server runtime: a sharded pool of distillation workers.
//!
//! The paper evaluates one client per server, but the server is the shared,
//! expensive side of the system. This module turns the single-stream
//! [`crate::server::ServerState`] into a multi-tenant service:
//!
//! * [`ServeShard`] owns one teacher and one [`DistillSession`] per client
//!   stream assigned to it. Key frames from different streams that arrive
//!   close together are *co-scheduled*: the teacher labels them in one
//!   batched forward pass ([`st_teacher::Teacher::pseudo_label_batch`]) whose
//!   virtual cost is amortized across the batch, and then each stream's
//!   session distills its own student on its own pseudo-label. Streams never
//!   share weights — isolation is structural.
//! * [`ServerPool`] spawns one worker thread per shard, assigns streams to
//!   shards round-robin by stream id, and funnels each client's uplink into
//!   the owning shard's queue as [`st_net::StreamTagged`] traffic. Clients
//!   talk to the pool through [`StreamClient`], which implements the same
//!   [`st_net::ClientEndpoint`] surface as the single-stream transport, so
//!   the client-side state machine is byte-for-byte the one Algorithm 4 uses.
//!
//! The pool reports [`PoolStats`]: per-shard queueing/batching/latency
//! counters plus per-stream key-frame totals and final server-side
//! checkpoints, which the contention experiments compare against the
//! analytic [`st_sim::ContentionModel`].

use crate::config::ShadowTutorConfig;
use crate::server::{DistillSession, KeyFrameResponse};
use crate::Result;
use st_net::transport::ClientEndpoint;
use st_net::{ClientToServer, Payload, ServerToClient, StreamId, StreamTagged, TransportError};
use st_nn::snapshot::WeightSnapshot;
use st_nn::student::StudentNet;
use st_teacher::Teacher;
use st_tensor::TensorError;
use st_video::Frame;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a [`ServerPool`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolConfig {
    /// Number of shards (worker threads). Streams are assigned to shard
    /// `stream_id % shards`.
    pub shards: usize,
    /// Maximum key frames co-scheduled into one batched teacher forward.
    pub max_batch: usize,
    /// How long a worker blocks waiting for traffic before re-checking for
    /// shutdown (also the bound on how stale a dead client can leave a shard).
    pub recv_timeout: Duration,
}

impl PoolConfig {
    /// A small pool: two shards, up to four co-scheduled key frames.
    pub fn default_pool() -> Self {
        PoolConfig {
            shards: 2,
            max_batch: 4,
            recv_timeout: Duration::from_secs(30),
        }
    }

    /// A pool with a given shard count and the default batching.
    pub fn with_shards(shards: usize) -> Self {
        PoolConfig {
            shards,
            ..Self::default_pool()
        }
    }

    /// Validate parameter consistency.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(TensorError::InvalidArgument(
                "pool needs at least one shard".into(),
            ));
        }
        if self.max_batch == 0 {
            return Err(TensorError::InvalidArgument(
                "max_batch must be at least 1".into(),
            ));
        }
        Ok(())
    }

    /// The shard a stream id maps to.
    pub fn shard_of(&self, stream_id: StreamId) -> usize {
        (stream_id % self.shards as u64) as usize
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self::default_pool()
    }
}

/// Server-side counters for one stream, reported when the stream finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamServerStats {
    /// Key frames the stream's session processed.
    pub key_frames: usize,
    /// Total distillation steps the session took.
    pub distill_steps: usize,
}

/// Queueing/batching/latency counters of one shard worker.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShardStats {
    /// Key frames processed by this shard.
    pub key_frames: usize,
    /// Total distillation steps across the shard's streams.
    pub distill_steps: usize,
    /// Batched teacher forward passes taken.
    pub teacher_batches: usize,
    /// Largest co-scheduled batch observed.
    pub max_batch_observed: usize,
    /// Total wall-clock time messages spent queued before processing began.
    pub queue_wait_total: Duration,
    /// Largest single queue wait observed.
    pub queue_wait_max: Duration,
    /// Wall-clock time the worker spent actively processing batches.
    pub busy_time: Duration,
    /// Total stream-tagged uplink bytes this shard received.
    pub uplink_bytes: usize,
    /// Sum of virtual `server_time` charged to responses (teacher share +
    /// distillation steps).
    pub virtual_server_time: f64,
    /// Virtual teacher time saved by batching, versus labelling every key
    /// frame with a solo forward pass.
    pub teacher_time_saved: f64,
}

impl ShardStats {
    /// Mean co-scheduled batch size (0.0 when the shard never processed a
    /// batch; at least 1.0 otherwise).
    pub fn mean_batch_size(&self) -> f64 {
        if self.teacher_batches == 0 {
            0.0
        } else {
            self.key_frames as f64 / self.teacher_batches as f64
        }
    }

    /// Mean wall-clock queue wait per key frame in seconds.
    pub fn mean_queue_wait_secs(&self) -> f64 {
        if self.key_frames == 0 {
            0.0
        } else {
            self.queue_wait_total.as_secs_f64() / self.key_frames as f64
        }
    }
}

/// Aggregate statistics of a pool run, collected at [`ServerPool::join`].
#[derive(Debug)]
pub struct PoolStats {
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Per-stream counters.
    pub streams: HashMap<StreamId, StreamServerStats>,
    /// Final full server-side checkpoint of every finished stream.
    pub final_checkpoints: HashMap<StreamId, WeightSnapshot>,
}

impl PoolStats {
    /// Key frames processed across all shards.
    pub fn total_key_frames(&self) -> usize {
        self.shards.iter().map(|s| s.key_frames).sum()
    }

    /// Distillation steps across all shards.
    pub fn total_distill_steps(&self) -> usize {
        self.shards.iter().map(|s| s.distill_steps).sum()
    }

    /// Mean co-scheduled batch size across shards (0.0 when no batch was
    /// ever processed; at least 1.0 otherwise).
    pub fn mean_batch_size(&self) -> f64 {
        let batches: usize = self.shards.iter().map(|s| s.teacher_batches).sum();
        if batches == 0 {
            0.0
        } else {
            self.total_key_frames() as f64 / batches as f64
        }
    }

    /// Mean wall-clock queue wait per key frame in seconds.
    pub fn mean_queue_wait_secs(&self) -> f64 {
        let total: f64 = self
            .shards
            .iter()
            .map(|s| s.queue_wait_total.as_secs_f64())
            .sum();
        let k = self.total_key_frames();
        if k == 0 {
            0.0
        } else {
            total / k as f64
        }
    }

    /// Virtual teacher time saved by batching across all shards.
    pub fn teacher_time_saved(&self) -> f64 {
        self.shards.iter().map(|s| s.teacher_time_saved).sum()
    }
}

/// One stream's registration state inside a shard.
struct StreamEntry {
    session: DistillSession,
    /// The pre-shared frame content, keyed by frame index (the key-frame
    /// message carries encoded pixels for realistic wire sizes; the
    /// in-process shard resolves content by index, as the single-stream live
    /// runtime does).
    frames: HashMap<usize, Frame>,
}

/// A key-frame job drained from the shard queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardJob {
    /// The stream the key frame belongs to.
    pub stream_id: StreamId,
    /// Index of the frame in that stream.
    pub frame_index: usize,
}

/// One shard: a shared teacher plus one distillation session per stream.
///
/// The shard is a synchronous state machine — the worker thread in
/// [`ServerPool`] drives it from a queue, and tests can drive it directly.
pub struct ServeShard<T: Teacher> {
    config: ShadowTutorConfig,
    distill_step_latency: f64,
    template: StudentNet,
    teacher: T,
    sessions: HashMap<StreamId, StreamEntry>,
    stats: ShardStats,
}

impl<T: Teacher> ServeShard<T> {
    /// Create a shard serving sessions cloned from `template`.
    pub fn new(
        config: ShadowTutorConfig,
        template: StudentNet,
        teacher: T,
        distill_step_latency: f64,
    ) -> Self {
        ServeShard {
            config,
            distill_step_latency,
            template,
            teacher,
            sessions: HashMap::new(),
            stats: ShardStats::default(),
        }
    }

    /// Register a stream: create its session and return the initial full
    /// checkpoint (Algorithm 3, line 1, per stream).
    pub fn register(
        &mut self,
        stream_id: StreamId,
        frames: HashMap<usize, Frame>,
    ) -> WeightSnapshot {
        let entry = self
            .sessions
            .entry(stream_id)
            .or_insert_with(|| StreamEntry {
                session: DistillSession::new(
                    self.config,
                    self.template.clone(),
                    self.distill_step_latency,
                ),
                frames: HashMap::new(),
            });
        entry.frames = frames;
        entry.session.initial_checkpoint()
    }

    /// Number of streams currently registered.
    pub fn stream_count(&self) -> usize {
        self.sessions.len()
    }

    /// Process a co-scheduled batch of key frames: one batched teacher
    /// forward across the batch, then per-stream distillation in arrival
    /// order. Jobs whose stream or frame is unknown are skipped.
    pub fn process_batch(
        &mut self,
        jobs: &[ShardJob],
    ) -> Result<Vec<(StreamId, usize, KeyFrameResponse)>> {
        // Resolve which jobs are known; drop the rest. Frames stay where
        // they are — they are borrowed for labelling and distillation, never
        // copied (a frame is the whole RGB tensor plus its ground truth).
        let resolved: Vec<ShardJob> = jobs
            .iter()
            .filter(|job| {
                self.sessions
                    .get(&job.stream_id)
                    .is_some_and(|e| e.frames.contains_key(&job.frame_index))
            })
            .copied()
            .collect();
        if resolved.is_empty() {
            return Ok(Vec::new());
        }

        // One teacher forward pass amortized over the co-scheduled frames.
        let batch = resolved.len();
        let labels = {
            let frame_refs: Vec<&Frame> = resolved
                .iter()
                .map(|job| &self.sessions[&job.stream_id].frames[&job.frame_index])
                .collect();
            self.teacher.pseudo_label_batch(&frame_refs)?
        };
        let solo_cost = batch as f64 * self.teacher.inference_latency();
        let batched_cost = self.teacher.batched_inference_latency(batch);
        let teacher_share = batched_cost / batch as f64;
        self.stats.teacher_batches += 1;
        self.stats.max_batch_observed = self.stats.max_batch_observed.max(batch);
        self.stats.teacher_time_saved += solo_cost - batched_cost;

        let mut out = Vec::with_capacity(batch);
        for (job, label) in resolved.into_iter().zip(labels) {
            let entry = self
                .sessions
                .get_mut(&job.stream_id)
                .expect("session present: resolved above");
            // Split the entry so the frame borrow and the mutable session
            // borrow coexist.
            let StreamEntry { session, frames } = entry;
            let frame = frames
                .get(&job.frame_index)
                .expect("frame present: resolved above");
            let response = session.distill(frame, &label, teacher_share)?;
            self.stats.key_frames += 1;
            self.stats.distill_steps += response.outcome.steps;
            self.stats.virtual_server_time += response.server_time;
            out.push((job.stream_id, job.frame_index, response));
        }
        Ok(out)
    }

    /// Finish a stream: remove its session, returning the final full
    /// checkpoint and the stream's counters.
    pub fn finish(&mut self, stream_id: StreamId) -> Option<(WeightSnapshot, StreamServerStats)> {
        self.sessions.remove(&stream_id).map(|mut entry| {
            let checkpoint = entry.session.initial_checkpoint();
            let stats = StreamServerStats {
                key_frames: entry.session.key_frames_processed(),
                distill_steps: entry.session.distill_steps_taken(),
            };
            (checkpoint, stats)
        })
    }

    /// The shard's counters so far.
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// The teacher shared by this shard's streams.
    pub fn teacher_mut(&mut self) -> &mut T {
        &mut self.teacher
    }
}

/// A stream-tagged uplink message queued at a shard.
#[derive(Clone)]
struct Envelope {
    tagged: StreamTagged<ClientToServer>,
    bytes: usize,
    enqueued_at: Instant,
}

/// The sending half of one stream's downlink (wire size + message).
type Downlink = crossbeam::channel::Sender<(usize, ServerToClient)>;

/// Per-stream connection state the worker looks up when a `Register`
/// message arrives: the downlink back to the client and the pre-shared
/// frame content.
struct StreamLink {
    downlink: Downlink,
    frames: HashMap<usize, Frame>,
}

type Registry = Arc<Mutex<HashMap<StreamId, StreamLink>>>;

/// What one worker thread hands back when the pool joins.
struct ShardOutput {
    stats: ShardStats,
    streams: HashMap<StreamId, StreamServerStats>,
    final_checkpoints: HashMap<StreamId, WeightSnapshot>,
}

/// The client's endpoint onto the pool: same surface as the single-stream
/// transport, but every uplink message is stream-tagged and lands in the
/// owning shard's queue.
pub struct StreamClient {
    stream_id: StreamId,
    uplink: crossbeam::channel::Sender<Envelope>,
    downlink: crossbeam::channel::Receiver<(usize, ServerToClient)>,
}

impl StreamClient {
    /// The stream this client speaks for.
    pub fn stream_id(&self) -> StreamId {
        self.stream_id
    }
}

impl ClientEndpoint for StreamClient {
    fn send(
        &mut self,
        message: ClientToServer,
        bytes: usize,
    ) -> std::result::Result<(), TransportError> {
        self.uplink
            .send(Envelope {
                tagged: StreamTagged::new(self.stream_id, message),
                bytes: StreamTagged::<ClientToServer>::tagged_bytes(bytes),
                enqueued_at: Instant::now(),
            })
            .map_err(|_| TransportError::Disconnected)
    }

    fn try_recv(&mut self) -> std::result::Result<Option<ServerToClient>, TransportError> {
        match self.downlink.try_recv() {
            Ok((_bytes, msg)) => Ok(Some(msg)),
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => {
                Err(TransportError::Disconnected)
            }
        }
    }

    fn recv_timeout(
        &mut self,
        timeout: Duration,
    ) -> std::result::Result<ServerToClient, TransportError> {
        match self.downlink.recv_timeout(timeout) {
            Ok((_bytes, msg)) => Ok(msg),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(TransportError::Disconnected)
            }
        }
    }
}

/// A sharded pool of distillation workers serving many client streams.
pub struct ServerPool {
    pool_config: PoolConfig,
    uplinks: Vec<crossbeam::channel::Sender<Envelope>>,
    registries: Vec<Registry>,
    workers: Vec<std::thread::JoinHandle<Result<ShardOutput>>>,
}

impl ServerPool {
    /// Spawn `pool_config.shards` worker threads. Each shard gets its own
    /// teacher from `teacher_factory(shard_index)` and serves sessions cloned
    /// from `template`.
    pub fn spawn<T, F>(
        config: ShadowTutorConfig,
        pool_config: PoolConfig,
        template: StudentNet,
        distill_step_latency: f64,
        mut teacher_factory: F,
    ) -> Result<ServerPool>
    where
        T: Teacher + Send + 'static,
        F: FnMut(usize) -> T,
    {
        config.validate()?;
        pool_config.validate()?;
        let mut uplinks = Vec::with_capacity(pool_config.shards);
        let mut registries = Vec::with_capacity(pool_config.shards);
        let mut workers = Vec::with_capacity(pool_config.shards);
        for shard_index in 0..pool_config.shards {
            let (tx, rx) = crossbeam::channel::unbounded::<Envelope>();
            let registry: Registry = Arc::new(Mutex::new(HashMap::new()));
            let shard = ServeShard::new(
                config,
                template.clone(),
                teacher_factory(shard_index),
                distill_step_latency,
            );
            let worker_registry = Arc::clone(&registry);
            let max_batch = pool_config.max_batch;
            let recv_timeout = pool_config.recv_timeout;
            workers.push(std::thread::spawn(move || {
                run_worker(shard, rx, worker_registry, max_batch, recv_timeout)
            }));
            uplinks.push(tx);
            registries.push(registry);
        }
        Ok(ServerPool {
            pool_config,
            uplinks,
            registries,
            workers,
        })
    }

    /// The pool's configuration.
    pub fn config(&self) -> PoolConfig {
        self.pool_config
    }

    /// Connect a new stream: pre-share its frame content with the owning
    /// shard, enqueue its `Register` message, and return the client's
    /// endpoint. The first downlink message is the initial student
    /// checkpoint.
    pub fn connect(&self, stream_id: StreamId, frames: &[Frame]) -> StreamClient {
        let shard = self.pool_config.shard_of(stream_id);
        let (down_tx, down_rx) = crossbeam::channel::unbounded();
        let content: HashMap<usize, Frame> = frames.iter().map(|f| (f.index, f.clone())).collect();
        self.registries[shard]
            .lock()
            .expect("registry lock")
            .insert(
                stream_id,
                StreamLink {
                    downlink: down_tx,
                    frames: content,
                },
            );
        let mut client = StreamClient {
            stream_id,
            uplink: self.uplinks[shard].clone(),
            downlink: down_rx,
        };
        // Registration is the client's first uplink message; sending it here
        // lets callers immediately block on the initial checkpoint.
        client
            .send(
                ClientToServer::Register,
                st_net::message::MESSAGE_OVERHEAD_BYTES,
            )
            .expect("worker alive at connect time");
        client
    }

    /// Drop the pool's uplink handles and join every worker, collecting the
    /// aggregate statistics. Clients must have dropped (or finished with)
    /// their `StreamClient`s for the workers' queues to disconnect.
    pub fn join(self) -> Result<PoolStats> {
        drop(self.uplinks);
        drop(self.registries);
        let mut stats = PoolStats {
            shards: Vec::with_capacity(self.workers.len()),
            streams: HashMap::new(),
            final_checkpoints: HashMap::new(),
        };
        for worker in self.workers {
            let output = worker
                .join()
                .map_err(|_| TensorError::InvalidArgument("shard worker panicked".into()))??;
            stats.shards.push(output.stats);
            stats.streams.extend(output.streams);
            stats.final_checkpoints.extend(output.final_checkpoints);
        }
        Ok(stats)
    }
}

/// The shard worker loop: drain a co-scheduled batch from the queue, handle
/// registrations and shutdowns in arrival order, batch the key frames
/// through the shard, and push responses onto each stream's downlink.
fn run_worker<T: Teacher>(
    mut shard: ServeShard<T>,
    rx: crossbeam::channel::Receiver<Envelope>,
    registry: Registry,
    max_batch: usize,
    recv_timeout: Duration,
) -> Result<ShardOutput> {
    let mut downlinks: HashMap<StreamId, Downlink> = HashMap::new();
    let mut streams: HashMap<StreamId, StreamServerStats> = HashMap::new();
    let mut final_checkpoints: HashMap<StreamId, WeightSnapshot> = HashMap::new();
    // Wall-clock accounting lives here, not in the shard: the shard only
    // tracks what it can see (batching and virtual time), and the two sets
    // of counters are merged once on exit.
    let mut queue_wait_total = Duration::ZERO;
    let mut queue_wait_max = Duration::ZERO;
    let mut busy_time = Duration::ZERO;
    let mut uplink_bytes = 0usize;
    loop {
        let first = match rx.recv_timeout(recv_timeout) {
            Ok(envelope) => envelope,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
        };
        // `max_batch` bounds the *key frames* co-scheduled into one teacher
        // forward; control messages (Register/Shutdown) ride along without
        // consuming batch slots.
        let is_key_frame =
            |e: &Envelope| matches!(e.tagged.message, ClientToServer::KeyFrame { .. });
        let mut key_frames_drained = usize::from(is_key_frame(&first));
        let mut batch = vec![first];
        while key_frames_drained < max_batch {
            match rx.try_recv() {
                Ok(envelope) => {
                    key_frames_drained += usize::from(is_key_frame(&envelope));
                    batch.push(envelope);
                }
                Err(_) => break,
            }
        }

        let started = Instant::now();
        let mut jobs: Vec<ShardJob> = Vec::new();
        for envelope in &batch {
            let wait = started.saturating_duration_since(envelope.enqueued_at);
            uplink_bytes += envelope.bytes;
            if matches!(envelope.tagged.message, ClientToServer::KeyFrame { .. }) {
                queue_wait_total += wait;
                queue_wait_max = queue_wait_max.max(wait);
            }
        }
        for envelope in batch {
            let stream_id = envelope.tagged.stream_id;
            match envelope.tagged.message {
                ClientToServer::Register => {
                    let Some(link) = registry.lock().expect("registry lock").remove(&stream_id)
                    else {
                        continue; // register without connect: ignore
                    };
                    let initial = shard.register(stream_id, link.frames);
                    let payload = Payload::with_data(initial.encode());
                    let bytes = payload.bytes;
                    let _ = link
                        .downlink
                        .send((bytes, ServerToClient::InitialStudent { payload }));
                    downlinks.insert(stream_id, link.downlink);
                }
                ClientToServer::KeyFrame {
                    frame_index,
                    payload: _,
                } => {
                    jobs.push(ShardJob {
                        stream_id,
                        frame_index,
                    });
                }
                ClientToServer::Shutdown => {
                    // Flush any key frames queued ahead of the shutdown so the
                    // stream's last updates are not lost.
                    flush_jobs(&mut shard, &mut jobs, &downlinks)?;
                    if let Some((checkpoint, stream_stats)) = shard.finish(stream_id) {
                        streams.insert(stream_id, stream_stats);
                        final_checkpoints.insert(stream_id, checkpoint);
                    }
                    downlinks.remove(&stream_id);
                }
            }
        }
        flush_jobs(&mut shard, &mut jobs, &downlinks)?;
        busy_time += started.elapsed();
    }
    let mut stats = shard.stats();
    stats.queue_wait_total = queue_wait_total;
    stats.queue_wait_max = queue_wait_max;
    stats.busy_time = busy_time;
    stats.uplink_bytes = uplink_bytes;
    Ok(ShardOutput {
        stats,
        streams,
        final_checkpoints,
    })
}

/// Run the queued key-frame jobs through the shard and send each response to
/// its stream's downlink. Clears `jobs`.
fn flush_jobs<T: Teacher>(
    shard: &mut ServeShard<T>,
    jobs: &mut Vec<ShardJob>,
    downlinks: &HashMap<StreamId, Downlink>,
) -> Result<()> {
    if jobs.is_empty() {
        return Ok(());
    }
    let responses = shard.process_batch(jobs)?;
    jobs.clear();
    for (stream_id, frame_index, response) in responses {
        let Some(downlink) = downlinks.get(&stream_id) else {
            continue;
        };
        let payload = Payload::with_data(response.update.encode());
        let bytes = payload.bytes;
        let msg = ServerToClient::StudentUpdate {
            frame_index,
            metric: response.metric,
            distill_steps: response.outcome.steps,
            payload,
        };
        // A client that hung up mid-stream only loses its own updates.
        let _ = downlink.send((bytes, msg));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_nn::student::StudentConfig;
    use st_teacher::OracleTeacher;
    use st_video::dataset::tiny_stream as frames_for;
    use st_video::SceneKind;

    fn shard() -> ServeShard<OracleTeacher> {
        ServeShard::new(
            ShadowTutorConfig::paper(),
            StudentNet::new(StudentConfig::tiny()).unwrap(),
            OracleTeacher::perfect(5),
            0.013,
        )
    }

    #[test]
    fn pool_config_validates_and_routes() {
        assert!(PoolConfig::default_pool().validate().is_ok());
        assert!(PoolConfig {
            shards: 0,
            ..PoolConfig::default_pool()
        }
        .validate()
        .is_err());
        assert!(PoolConfig {
            max_batch: 0,
            ..PoolConfig::default_pool()
        }
        .validate()
        .is_err());
        let p = PoolConfig::with_shards(3);
        assert_eq!(p.shard_of(0), 0);
        assert_eq!(p.shard_of(4), 1);
        assert_eq!(p.shard_of(5), 2);
    }

    #[test]
    fn shard_keeps_streams_isolated() {
        let mut s = shard();
        let people = frames_for(SceneKind::People, 11, 2);
        let animals = frames_for(SceneKind::Animals, 12, 2);
        let init_a = s.register(1, people.iter().map(|f| (f.index, f.clone())).collect());
        let init_b = s.register(2, animals.iter().map(|f| (f.index, f.clone())).collect());
        // Both sessions start from the same template checkpoint.
        assert!(init_a.distance(&init_b).unwrap() < 1e-9);
        assert_eq!(s.stream_count(), 2);

        // Distill stream 1 only; stream 2's weights must not move.
        let responses = s
            .process_batch(&[ShardJob {
                stream_id: 1,
                frame_index: people[0].index,
            }])
            .unwrap();
        assert_eq!(responses.len(), 1);
        assert!(responses[0].2.outcome.steps >= 1);
        let (ckpt_b, stats_b) = s.finish(2).unwrap();
        assert_eq!(stats_b.key_frames, 0);
        assert!(ckpt_b.distance(&init_b).unwrap() < 1e-9);
        let (ckpt_a, stats_a) = s.finish(1).unwrap();
        assert_eq!(stats_a.key_frames, 1);
        assert!(ckpt_a.distance(&init_a).unwrap() > 0.0);
    }

    #[test]
    fn batched_labels_amortize_teacher_time() {
        let mut s = shard();
        let people = frames_for(SceneKind::People, 21, 2);
        let street = frames_for(SceneKind::Street, 22, 2);
        s.register(1, people.iter().map(|f| (f.index, f.clone())).collect());
        s.register(2, street.iter().map(|f| (f.index, f.clone())).collect());
        let responses = s
            .process_batch(&[
                ShardJob {
                    stream_id: 1,
                    frame_index: people[0].index,
                },
                ShardJob {
                    stream_id: 2,
                    frame_index: street[0].index,
                },
            ])
            .unwrap();
        assert_eq!(responses.len(), 2);
        let stats = s.stats();
        assert_eq!(stats.teacher_batches, 1);
        assert_eq!(stats.key_frames, 2);
        assert_eq!(stats.max_batch_observed, 2);
        // Batching two frames must be cheaper than two solo forwards.
        assert!(stats.teacher_time_saved > 0.0);
        // The amortized teacher share charged per response is below t_ti.
        let solo = OracleTeacher::perfect(0).inference_latency();
        for (_, _, r) in &responses {
            assert!(r.server_time < solo + r.outcome.steps as f64 * 0.013 + 1e-12);
        }
    }

    #[test]
    fn unknown_jobs_are_skipped() {
        let mut s = shard();
        let people = frames_for(SceneKind::People, 31, 1);
        s.register(1, people.iter().map(|f| (f.index, f.clone())).collect());
        let responses = s
            .process_batch(&[
                ShardJob {
                    stream_id: 9,
                    frame_index: 0,
                }, // unknown stream
                ShardJob {
                    stream_id: 1,
                    frame_index: 999,
                }, // unknown frame
            ])
            .unwrap();
        assert!(responses.is_empty());
        assert_eq!(s.stats().teacher_batches, 0);
        assert!(s.finish(9).is_none());
    }

    #[test]
    fn pool_serves_two_streams_end_to_end() {
        let pool = ServerPool::spawn(
            ShadowTutorConfig::paper(),
            PoolConfig {
                shards: 2,
                max_batch: 4,
                recv_timeout: Duration::from_millis(200),
            },
            StudentNet::new(StudentConfig::tiny()).unwrap(),
            0.013,
            |shard| OracleTeacher::perfect(100 + shard as u64),
        )
        .unwrap();
        let streams: Vec<(StreamId, Vec<Frame>)> = vec![
            (0, frames_for(SceneKind::People, 41, 3)),
            (1, frames_for(SceneKind::Animals, 42, 3)),
        ];
        let mut clients: Vec<StreamClient> = streams
            .iter()
            .map(|(id, frames)| pool.connect(*id, frames))
            .collect();
        for (client, (_, frames)) in clients.iter_mut().zip(&streams) {
            // Initial checkpoint arrives first.
            let initial = client.recv_timeout(Duration::from_secs(10)).unwrap();
            assert!(matches!(initial, ServerToClient::InitialStudent { .. }));
            // One key frame each.
            let payload = Payload::sized(frames[0].raw_rgb_bytes());
            let bytes = payload.bytes;
            client
                .send(
                    ClientToServer::KeyFrame {
                        frame_index: frames[0].index,
                        payload,
                    },
                    bytes,
                )
                .unwrap();
            let update = client.recv_timeout(Duration::from_secs(10)).unwrap();
            match update {
                ServerToClient::StudentUpdate {
                    frame_index,
                    metric,
                    distill_steps,
                    ..
                } => {
                    assert_eq!(frame_index, frames[0].index);
                    assert!((0.0..=1.0).contains(&metric));
                    assert!(distill_steps <= ShadowTutorConfig::paper().max_updates);
                }
                other => panic!("expected StudentUpdate, got {other:?}"),
            }
            client.send(ClientToServer::Shutdown, 1).unwrap();
        }
        drop(clients);
        let stats = pool.join().unwrap();
        assert_eq!(stats.total_key_frames(), 2);
        assert_eq!(stats.streams.len(), 2);
        assert_eq!(stats.final_checkpoints.len(), 2);
        assert!(stats.streams.values().all(|s| s.key_frames == 1));
        // Streams 0 and 1 land on different shards.
        assert!(stats.shards.iter().all(|s| s.key_frames == 1));
    }
}
