//! The ShadowTutor student network (Fig. 3b) with partial backward.
//!
//! Architecture (spatial sizes relative to the input `H × W`, which must be
//! divisible by 4):
//!
//! ```text
//! input (3, H, W)
//!   in1  Conv3×3 -> c_stem               (H,   W)
//!   in2  Conv3×3 stride 2 -> c_enc1      (H/2, W/2)
//!   SB1  block c_enc1 -> c_enc1          (H/2, W/2)   --+ skip to SB6
//!   SB2  block c_enc1 -> c_enc2 stride 2 (H/4, W/4)   --+ skip to SB5
//!   SB3  block c_enc2 -> c_enc2          (H/4, W/4)
//!   SB4  block c_enc2 -> c_enc2          (H/4, W/4)
//!   SB5  block (c_enc2 + c_enc2) -> c_dec1  after concat with SB2 output
//!   upsample ×2                          (H/2, W/2)
//!   SB6  block (c_dec1 + c_enc1) -> c_dec2  after concat with SB1 output
//!   out1 Conv3×3 -> c_head, ReLU
//!   out2 Conv3×3 -> c_head, ReLU
//!   out3 Conv1×1 -> num_classes
//!   upsample ×2                          (H,   W)  -> per-pixel class logits
//! ```
//!
//! *Partial distillation* (§4.2 of the paper) freezes the front of the
//! network — everything up to and including SB4 in the paper's configuration
//! — and trains only the decoder/head. Here the freeze boundary is the
//! [`FreezePoint`], expressed in terms of [`Stage`]s; the backward pass stops
//! descending as soon as every remaining stage is frozen, which is exactly
//! the latency/memory saving the paper describes.

use crate::block::StudentBlock;
use crate::layers::{Conv2d, Relu};
use crate::param::{Param, ParamVisitor};
use crate::Result;
use st_tensor::conv::Conv2dSpec;
use st_tensor::{pool, Shape, Tensor, TensorError};

/// The network stages, in forward order. Used to express freeze points and
/// to tag parameters for partial snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Stem convolution 1 (full resolution).
    In1,
    /// Stem convolution 2 (downsamples to half resolution).
    In2,
    /// Student block 1.
    Sb1,
    /// Student block 2 (downsamples to quarter resolution).
    Sb2,
    /// Student block 3.
    Sb3,
    /// Student block 4.
    Sb4,
    /// Student block 5 (first decoder block, receives the SB2 skip).
    Sb5,
    /// Student block 6 (second decoder block, receives the SB1 skip).
    Sb6,
    /// Head convolution 1.
    Out1,
    /// Head convolution 2.
    Out2,
    /// Head convolution 3 (classifier).
    Out3,
}

impl Stage {
    /// All stages in forward order.
    pub const ALL: [Stage; 11] = [
        Stage::In1,
        Stage::In2,
        Stage::Sb1,
        Stage::Sb2,
        Stage::Sb3,
        Stage::Sb4,
        Stage::Sb5,
        Stage::Sb6,
        Stage::Out1,
        Stage::Out2,
        Stage::Out3,
    ];

    /// Position of the stage in forward order.
    pub fn index(self) -> usize {
        Stage::ALL
            .iter()
            .position(|&s| s == self)
            .expect("stage in ALL")
    }
}

/// Which part of the student is trained during distillation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreezePoint {
    /// Train every parameter (the paper's *full distillation* baseline).
    None,
    /// Freeze all stages strictly before `first_trainable`; train the rest.
    /// The paper's *partial distillation* uses `TrainFrom(Stage::Sb5)`:
    /// "we freeze the student from the first layer to SB4, only computing
    /// gradients until SB5".
    TrainFrom(Stage),
}

impl FreezePoint {
    /// The paper's default partial-distillation freeze point.
    pub fn paper_partial() -> Self {
        FreezePoint::TrainFrom(Stage::Sb5)
    }

    /// Whether a stage is trainable under this freeze point.
    pub fn trainable(&self, stage: Stage) -> bool {
        match self {
            FreezePoint::None => true,
            FreezePoint::TrainFrom(first) => stage.index() >= first.index(),
        }
    }
}

/// Width configuration of the student network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StudentConfig {
    /// Input channels (3 for RGB video frames).
    pub in_channels: usize,
    /// Number of segmentation classes (8 LVS object classes + background).
    pub num_classes: usize,
    /// Stem width (`in1` output channels).
    pub c_stem: usize,
    /// Encoder width at half resolution.
    pub c_enc1: usize,
    /// Encoder width at quarter resolution.
    pub c_enc2: usize,
    /// Decoder width after SB5.
    pub c_dec1: usize,
    /// Decoder width after SB6.
    pub c_dec2: usize,
    /// Head width.
    pub c_head: usize,
    /// Seed for weight initialisation.
    pub seed: u64,
}

impl StudentConfig {
    /// Paper-scale widths (≈ 0.5 M parameters, cf. the paper's 0.48 M).
    pub fn paper() -> Self {
        StudentConfig {
            in_channels: 3,
            num_classes: 9,
            c_stem: 8,
            c_enc1: 48,
            c_enc2: 80,
            c_dec1: 56,
            c_dec2: 32,
            c_head: 32,
            seed: 20,
        }
    }

    /// Tiny widths used for the CPU-scale accuracy experiments and tests.
    pub fn tiny() -> Self {
        StudentConfig {
            in_channels: 3,
            num_classes: 9,
            c_stem: 4,
            c_enc1: 8,
            c_enc2: 16,
            c_dec1: 12,
            c_dec2: 8,
            c_head: 8,
            seed: 20,
        }
    }

    /// Small widths: a middle ground for longer-running experiments.
    pub fn small() -> Self {
        StudentConfig {
            in_channels: 3,
            num_classes: 9,
            c_stem: 6,
            c_enc1: 16,
            c_enc2: 32,
            c_dec1: 24,
            c_dec2: 16,
            c_head: 16,
            seed: 20,
        }
    }
}

/// Cached activations a training-mode forward pass leaves behind for the
/// backward pass (skip-connection outputs and layer input shapes).
#[derive(Debug, Clone)]
struct ForwardCache {
    sb1_out_channels: usize,
    sb2_out_channels: usize,
    head_h: usize,
    head_w: usize,
}

/// The ShadowTutor student network.
#[derive(Debug, Clone)]
pub struct StudentNet {
    /// Width configuration.
    pub config: StudentConfig,
    /// Current freeze configuration used by [`StudentNet::backward`] and the
    /// parameter visitors.
    pub freeze: FreezePoint,
    in1: Conv2d,
    relu_in1: Relu,
    in2: Conv2d,
    relu_in2: Relu,
    sb1: StudentBlock,
    sb2: StudentBlock,
    sb3: StudentBlock,
    sb4: StudentBlock,
    sb5: StudentBlock,
    sb6: StudentBlock,
    out1: Conv2d,
    relu_out1: Relu,
    out2: Conv2d,
    relu_out2: Relu,
    out3: Conv2d,
    cache: Option<ForwardCache>,
}

impl StudentNet {
    /// Build a student network from a width configuration.
    pub fn new(config: StudentConfig) -> Result<Self> {
        let s = config.seed;
        let in1 = Conv2d::new(
            "in1",
            Conv2dSpec::square(config.in_channels, config.c_stem, 3, 1),
            s + 1,
        )?;
        let in2 = Conv2d::new(
            "in2",
            Conv2dSpec::square(config.c_stem, config.c_enc1, 3, 2),
            s + 2,
        )?;
        let sb1 = StudentBlock::new("sb1", config.c_enc1, config.c_enc1, 1, s + 3)?;
        let sb2 = StudentBlock::new("sb2", config.c_enc1, config.c_enc2, 2, s + 4)?;
        let sb3 = StudentBlock::new("sb3", config.c_enc2, config.c_enc2, 1, s + 5)?;
        let sb4 = StudentBlock::new("sb4", config.c_enc2, config.c_enc2, 1, s + 6)?;
        let sb5 = StudentBlock::new(
            "sb5",
            config.c_enc2 + config.c_enc2,
            config.c_dec1,
            1,
            s + 7,
        )?;
        let sb6 = StudentBlock::new(
            "sb6",
            config.c_dec1 + config.c_enc1,
            config.c_dec2,
            1,
            s + 8,
        )?;
        let out1 = Conv2d::new(
            "out1",
            Conv2dSpec::square(config.c_dec2, config.c_head, 3, 1),
            s + 9,
        )?;
        let out2 = Conv2d::new(
            "out2",
            Conv2dSpec::square(config.c_head, config.c_head, 3, 1),
            s + 10,
        )?;
        let mut out3 = Conv2d::new(
            "out3",
            Conv2dSpec::square(config.c_head, config.num_classes, 1, 1),
            s + 11,
        )?;
        // Zero-init the classifier head (standard for segmentation heads):
        // training then starts from uniform class probabilities instead of
        // large random logits. With Kaiming init here, the first ~30-50
        // distillation steps are spent just unlearning the random logits,
        // which is longer than one whole key-frame budget (MAX_UPDATES = 8)
        // and stalls shadow education on every stream.
        out3.weight.value = Tensor::zeros(out3.weight.value.shape().clone());
        Ok(StudentNet {
            config,
            freeze: FreezePoint::paper_partial(),
            in1,
            relu_in1: Relu::new(),
            in2,
            relu_in2: Relu::new(),
            sb1,
            sb2,
            sb3,
            sb4,
            sb5,
            sb6,
            out1,
            relu_out1: Relu::new(),
            out2,
            relu_out2: Relu::new(),
            out3,
            cache: None,
        })
    }

    /// Validate a forward input. Training is per-frame (`allow_batch` false:
    /// batch-norm batch statistics are per-image instance statistics here);
    /// inference accepts any non-empty batch.
    fn check_input(&self, input: &Tensor, allow_batch: bool) -> Result<(usize, usize)> {
        let (n, c, h, w) = input.shape().as_nchw()?;
        let batch_ok = if allow_batch { n >= 1 } else { n == 1 };
        if !batch_ok || c != self.config.in_channels {
            return Err(TensorError::ShapeMismatch {
                op: "student_forward",
                lhs: input.shape().dims().to_vec(),
                rhs: vec![1, self.config.in_channels, 0, 0],
            });
        }
        if h % 4 != 0 || w % 4 != 0 {
            return Err(TensorError::InvalidArgument(format!(
                "student input must be divisible by 4, got {h}x{w}"
            )));
        }
        Ok((h, w))
    }

    /// Training-mode forward pass producing per-pixel class logits of the
    /// same spatial size as the input.
    ///
    /// Stages frozen under the current freeze point run in *inference* mode:
    /// freezing is prefix-contiguous, so no gradient ever reaches them, and
    /// running their batch-norms with batch statistics would (a) keep
    /// perturbing the running statistics every training forward and (b) make
    /// the trained (batch-stat) features diverge from the served (eval-mode)
    /// features the client actually uses. Frozen means frozen: fixed
    /// statistics, identical activations in training and inference mode.
    pub fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        let (h, w) = self.check_input(input, false)?;
        let freeze = self.freeze;
        let t = |s: Stage| freeze.trainable(s);
        let x = self.in1.forward_mode(input, t(Stage::In1))?;
        let x = self.relu_in1.forward_mode(&x, t(Stage::In1));
        let x = self.in2.forward_mode(&x, t(Stage::In2))?;
        let x = self.relu_in2.forward_mode(&x, t(Stage::In2));
        let sb1_out = self.sb1.forward_mode(&x, t(Stage::Sb1))?;
        let sb2_out = self.sb2.forward_mode(&sb1_out, t(Stage::Sb2))?;
        let x = self.sb3.forward_mode(&sb2_out, t(Stage::Sb3))?;
        let x = self.sb4.forward_mode(&x, t(Stage::Sb4))?;
        let cat5 = Tensor::concat_channels(&[&x, &sb2_out])?;
        let x = self.sb5.forward_mode(&cat5, t(Stage::Sb5))?;
        let x = pool::upsample_nearest(&x, 2)?;
        let cat6 = Tensor::concat_channels(&[&x, &sb1_out])?;
        let x = self.sb6.forward_mode(&cat6, t(Stage::Sb6))?;
        let x = self.out1.forward_mode(&x, t(Stage::Out1))?;
        let x = self.relu_out1.forward_mode(&x, t(Stage::Out1));
        let x = self.out2.forward_mode(&x, t(Stage::Out2))?;
        let x = self.relu_out2.forward_mode(&x, t(Stage::Out2));
        let logits_half = self.out3.forward_mode(&x, t(Stage::Out3))?;
        self.cache = Some(ForwardCache {
            sb1_out_channels: sb1_out.shape().dim(1),
            sb2_out_channels: sb2_out.shape().dim(1),
            head_h: h / 2,
            head_w: w / 2,
        });
        pool::upsample_nearest(&logits_half, 2)
    }

    /// Inference-mode forward pass (running batch-norm statistics, no
    /// caches).
    ///
    /// Accepts a batch: an `(N, C, H, W)` input runs all `N` frames through
    /// one batched im2col + GEMM per convolution, producing `(N, classes,
    /// H, W)` logits bit-for-bit identical to `N` single-frame calls — this
    /// is the forward the batched teacher pool amortizes across co-scheduled
    /// key frames.
    pub fn forward_inference(&self, input: &Tensor) -> Result<Tensor> {
        self.check_input(input, true)?;
        let x = self.in1.forward_inference(input)?;
        let x = self.relu_in1.forward_inference(&x);
        let x = self.in2.forward_inference(&x)?;
        let x = self.relu_in2.forward_inference(&x);
        let sb1_out = self.sb1.forward_inference(&x)?;
        let sb2_out = self.sb2.forward_inference(&sb1_out)?;
        let x = self.sb3.forward_inference(&sb2_out)?;
        let x = self.sb4.forward_inference(&x)?;
        let cat5 = Tensor::concat_channels(&[&x, &sb2_out])?;
        let x = self.sb5.forward_inference(&cat5)?;
        let x = pool::upsample_nearest(&x, 2)?;
        let cat6 = Tensor::concat_channels(&[&x, &sb1_out])?;
        let x = self.sb6.forward_inference(&cat6)?;
        let x = self.out1.forward_inference(&x)?;
        let x = self.relu_out1.forward_inference(&x);
        let x = self.out2.forward_inference(&x)?;
        let x = self.relu_out2.forward_inference(&x);
        let logits_half = self.out3.forward_inference(&x)?;
        pool::upsample_nearest(&logits_half, 2)
    }

    /// Backward pass from the loss gradient w.r.t. the full-resolution
    /// logits. Only stages at or after the freeze point accumulate parameter
    /// gradients; the pass stops descending once every remaining stage is
    /// frozen (this is the paper's *partial backward*).
    pub fn backward(&mut self, grad_logits: &Tensor) -> Result<()> {
        let cache = self.cache.clone().ok_or_else(|| {
            TensorError::InvalidArgument("StudentNet::backward called before forward_train".into())
        })?;
        let freeze = self.freeze;
        let trainable = |s: Stage| freeze.trainable(s);
        // Earliest stage we must reach with gradient propagation.
        let stop_at = match freeze {
            FreezePoint::None => 0,
            FreezePoint::TrainFrom(s) => s.index(),
        };
        // Whether gradient needs to flow below a given stage index.
        let need_below = |idx: usize| idx > stop_at;

        // Head (full-res logits were produced by upsampling the half-res head output).
        let g = pool::upsample_nearest_backward(grad_logits, 2)?;
        debug_assert_eq!(g.shape().dim(2), cache.head_h);
        debug_assert_eq!(g.shape().dim(3), cache.head_w);

        let g =
            self.out3
                .backward_if(&g, trainable(Stage::Out3), need_below(Stage::Out3.index()))?;
        let g = match g {
            Some(g) => g,
            None => return Ok(()),
        };
        let g = self.relu_out2.backward(&g)?;
        let g =
            self.out2
                .backward_if(&g, trainable(Stage::Out2), need_below(Stage::Out2.index()))?;
        let g = match g {
            Some(g) => g,
            None => return Ok(()),
        };
        let g = self.relu_out1.backward(&g)?;
        let g =
            self.out1
                .backward_if(&g, trainable(Stage::Out1), need_below(Stage::Out1.index()))?;
        let g = match g {
            Some(g) => g,
            None => return Ok(()),
        };

        // SB6: input was concat(upsampled SB5 output, SB1 output).
        let g = if trainable(Stage::Sb6) || need_below(Stage::Sb6.index()) {
            self.sb6.backward(&g, need_below(Stage::Sb6.index()))?
        } else {
            None
        };
        let g = match g {
            Some(g) => g,
            None => return Ok(()),
        };
        let c_sb5_up = g.shape().dim(1) - cache.sb1_out_channels;
        let g_sb5_up = g.slice_channels(0, c_sb5_up)?;
        let g_sb1_skip = g.slice_channels(c_sb5_up, cache.sb1_out_channels)?;
        let g_sb5 = pool::upsample_nearest_backward(&g_sb5_up, 2)?;

        // SB5: input was concat(SB4 output, SB2 output).
        let g = if trainable(Stage::Sb5) || need_below(Stage::Sb5.index()) {
            self.sb5.backward(&g_sb5, need_below(Stage::Sb5.index()))?
        } else {
            None
        };
        let g = match g {
            Some(g) => g,
            None => return Ok(()),
        };
        let c_sb4 = g.shape().dim(1) - cache.sb2_out_channels;
        let g_sb4 = g.slice_channels(0, c_sb4)?;
        let g_sb2_skip = g.slice_channels(c_sb4, cache.sb2_out_channels)?;

        // SB4, SB3: guarded like every other stage — under e.g.
        // TrainFrom(Sb4) the pass must stop here (sb3 is frozen, ran in
        // inference mode, and has no caches to backprop through).
        let g = if trainable(Stage::Sb4) || need_below(Stage::Sb4.index()) {
            self.sb4.backward(&g_sb4, need_below(Stage::Sb4.index()))?
        } else {
            None
        };
        let g = match g {
            Some(g) => g,
            None => return Ok(()),
        };
        let g = if trainable(Stage::Sb3) || need_below(Stage::Sb3.index()) {
            self.sb3.backward(&g, need_below(Stage::Sb3.index()))?
        } else {
            None
        };
        let mut g = match g {
            Some(g) => g,
            None => return Ok(()),
        };
        // Merge the SB2 skip gradient with the main-path gradient into SB2.
        g.add_assign(&g_sb2_skip)?;

        let g = if trainable(Stage::Sb2) || need_below(Stage::Sb2.index()) {
            self.sb2.backward(&g, need_below(Stage::Sb2.index()))?
        } else {
            None
        };
        let mut g = match g {
            Some(g) => g,
            None => return Ok(()),
        };
        g.add_assign(&g_sb1_skip)?;

        let g = if trainable(Stage::Sb1) || need_below(Stage::Sb1.index()) {
            self.sb1.backward(&g, need_below(Stage::Sb1.index()))?
        } else {
            None
        };
        let g = match g {
            Some(g) => g,
            None => return Ok(()),
        };
        let g = self.relu_in2.backward(&g)?;
        let g = self
            .in2
            .backward_if(&g, trainable(Stage::In2), need_below(Stage::In2.index()))?;
        let g = match g {
            Some(g) => g,
            None => return Ok(()),
        };
        let g = self.relu_in1.backward(&g)?;
        self.in1.backward_if(&g, trainable(Stage::In1), false)?;
        Ok(())
    }

    /// Visit every parameter with its stage's trainability under the current
    /// freeze point, in a stable order (forward stage order).
    pub fn visit_params(&mut self, visitor: &mut dyn ParamVisitor) {
        let f = self.freeze;
        self.in1.visit_params(visitor, f.trainable(Stage::In1));
        self.in2.visit_params(visitor, f.trainable(Stage::In2));
        self.sb1.visit_params(visitor, f.trainable(Stage::Sb1));
        self.sb2.visit_params(visitor, f.trainable(Stage::Sb2));
        self.sb3.visit_params(visitor, f.trainable(Stage::Sb3));
        self.sb4.visit_params(visitor, f.trainable(Stage::Sb4));
        self.sb5.visit_params(visitor, f.trainable(Stage::Sb5));
        self.sb6.visit_params(visitor, f.trainable(Stage::Sb6));
        self.out1.visit_params(visitor, f.trainable(Stage::Out1));
        self.out2.visit_params(visitor, f.trainable(Stage::Out2));
        self.out3.visit_params(visitor, f.trainable(Stage::Out3));
    }

    /// Visit every non-parameter buffer (batch-norm running statistics) with
    /// its stage's trainability, in forward stage order.
    pub fn visit_buffers(&mut self, visitor: &mut dyn FnMut(&str, &mut Tensor, bool)) {
        let f = self.freeze;
        self.sb1.visit_buffers(visitor, f.trainable(Stage::Sb1));
        self.sb2.visit_buffers(visitor, f.trainable(Stage::Sb2));
        self.sb3.visit_buffers(visitor, f.trainable(Stage::Sb3));
        self.sb4.visit_buffers(visitor, f.trainable(Stage::Sb4));
        self.sb5.visit_buffers(visitor, f.trainable(Stage::Sb5));
        self.sb6.visit_buffers(visitor, f.trainable(Stage::Sb6));
    }

    /// Clone this network with every parameter, gradient, and buffer
    /// storage eagerly materialized as a private copy.
    ///
    /// A plain `clone()` shares tensor storage copy-on-write (the memory
    /// win behind multi-stream pools); `deep_clone` reproduces the
    /// pre-CoW behaviour of paying full bytes per session up front — the
    /// A/B baseline the differential tests and `table13_weight_dedup`
    /// compare against.
    pub fn deep_clone(&mut self) -> StudentNet {
        let mut copy = self.clone();
        let mut v = |p: &mut Param, _t: bool| {
            let _ = p.value.data_mut();
            let _ = p.grad.data_mut();
        };
        copy.visit_params(&mut v);
        let mut b = |_name: &str, t: &mut Tensor, _tr: bool| {
            let _ = t.data_mut();
        };
        copy.visit_buffers(&mut b);
        copy
    }

    /// Total parameter count.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0usize;
        let mut v = |p: &mut Param, _t: bool| n += p.numel();
        self.visit_params(&mut v);
        n
    }

    /// Trainable parameter count under the current freeze point.
    pub fn trainable_param_count(&mut self) -> usize {
        let mut n = 0usize;
        let mut v = |p: &mut Param, t: bool| {
            if t {
                n += p.numel()
            }
        };
        self.visit_params(&mut v);
        n
    }

    /// Reset all accumulated gradients to zero.
    pub fn zero_grads(&mut self) {
        let mut v = |p: &mut Param, _t: bool| p.zero_grad();
        self.visit_params(&mut v);
    }

    /// Per-pixel predicted class map from full-resolution logits for
    /// `input` (frame-major `N*H*W` indices when the input is batched).
    pub fn predict(&self, input: &Tensor) -> Result<Vec<usize>> {
        let logits = self.forward_inference(input)?;
        logits.argmax_channels()
    }

    /// Logits shape for an `(h, w)` input.
    pub fn output_shape(&self, h: usize, w: usize) -> Shape {
        Shape::nchw(1, self.config.num_classes, h, w)
    }
}

impl Conv2d {
    /// Backward helper: accumulate parameter gradients only when `train` is
    /// true, and compute the input gradient only when `need_input` is true.
    ///
    /// Even when `train` is false, the input gradient may still be needed to
    /// keep propagating towards *earlier* trainable stages — in the student
    /// network that situation never arises for the frozen front (freezing is
    /// prefix-contiguous), so a fully frozen call with `need_input == false`
    /// is a no-op.
    fn backward_if(
        &mut self,
        grad_out: &Tensor,
        train: bool,
        need_input: bool,
    ) -> Result<Option<Tensor>> {
        if !train && !need_input {
            return Ok(None);
        }
        if train {
            self.backward(grad_out, need_input)
        } else {
            // Need the input gradient but must not touch parameter grads:
            // run backward on a scratch copy of the parameter grads.
            let saved_w = self.weight.grad.clone();
            let saved_b = self.bias.grad.clone();
            let gin = self.backward(grad_out, need_input)?;
            self.weight.grad = saved_w;
            self.bias.grad = saved_b;
            Ok(gin)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_tensor::random;

    fn input(h: usize, w: usize, seed: u64) -> Tensor {
        random::uniform(Shape::nchw(1, 3, h, w), 0.0, 1.0, seed)
    }

    #[test]
    fn forward_output_shape_matches_input_resolution() {
        let mut net = StudentNet::new(StudentConfig::tiny()).unwrap();
        let x = input(16, 24, 1);
        let y = net.forward_train(&x).unwrap();
        assert_eq!(y.shape().dims(), &[1, 9, 16, 24]);
        let yi = net.forward_inference(&x).unwrap();
        assert_eq!(yi.shape().dims(), &[1, 9, 16, 24]);
    }

    #[test]
    fn rejects_bad_input() {
        let mut net = StudentNet::new(StudentConfig::tiny()).unwrap();
        assert!(net.forward_train(&input(15, 24, 1)).is_err());
        let wrong_channels = random::uniform(Shape::nchw(1, 4, 16, 16), 0.0, 1.0, 2);
        assert!(net.forward_train(&wrong_channels).is_err());
        // Training is per-frame; inference accepts batches.
        let batch = random::uniform(Shape::nchw(2, 3, 16, 16), 0.0, 1.0, 3);
        assert!(net.forward_train(&batch).is_err());
        assert!(net.forward_inference(&batch).is_ok());
    }

    #[test]
    fn batched_inference_is_bit_for_bit_per_frame() {
        // One batched forward must equal N single-frame forwards exactly —
        // the batched teacher pool depends on this equivalence.
        let mut net = StudentNet::new(StudentConfig::tiny()).unwrap();
        // Move the running batch-norm stats and the zero-initialised head
        // off their init values so the comparison is not vacuous.
        let warm = input(16, 24, 7);
        net.forward_train(&warm).unwrap();
        let mut v = |p: &mut Param, _t: bool| {
            if p.name == "out3.weight" {
                for x in p.value.data_mut() {
                    *x = 0.03;
                }
            }
        };
        net.visit_params(&mut v);
        let frames: Vec<Tensor> = (0..3).map(|i| input(16, 24, 40 + i)).collect();
        let refs: Vec<&Tensor> = frames.iter().collect();
        let batch = Tensor::stack_batch(&refs).unwrap();
        let batched = net.forward_inference(&batch).unwrap();
        assert_eq!(batched.shape().dims(), &[3, 9, 16, 24]);
        let out_len = 9 * 16 * 24;
        for (i, frame) in frames.iter().enumerate() {
            let solo = net.forward_inference(frame).unwrap();
            assert_eq!(
                solo.data(),
                &batched.data()[i * out_len..(i + 1) * out_len],
                "frame {i} differs from its batched slice"
            );
        }
        // predict on a batch is the frame-major concatenation.
        let labels = net.predict(&batch).unwrap();
        assert_eq!(labels.len(), 3 * 16 * 24);
        assert_eq!(
            &labels[..16 * 24],
            net.predict(&frames[0]).unwrap().as_slice()
        );
    }

    #[test]
    fn partial_backward_touches_only_decoder_params() {
        let mut net = StudentNet::new(StudentConfig::tiny()).unwrap();
        net.freeze = FreezePoint::paper_partial();
        let x = input(16, 16, 3);
        let y = net.forward_train(&x).unwrap();
        net.backward(&Tensor::ones(y.shape().clone())).unwrap();
        let mut frozen_grad = 0.0f32;
        let mut trainable_grad = 0.0f32;
        let mut v = |p: &mut Param, t: bool| {
            if t {
                trainable_grad += p.grad.sq_norm();
            } else {
                frozen_grad += p.grad.sq_norm();
            }
        };
        net.visit_params(&mut v);
        assert_eq!(
            frozen_grad, 0.0,
            "frozen parameters must not receive gradient"
        );
        assert!(
            trainable_grad > 0.0,
            "decoder parameters must receive gradient"
        );
    }

    #[test]
    fn partial_backward_works_at_every_freeze_point() {
        // Regression: frozen stages run cache-free in forward_train, so the
        // backward pass must stop at the freeze boundary for *every* choice
        // of TrainFrom stage (TrainFrom(Sb4) used to descend into cache-less
        // sb3 and error).
        for stage in Stage::ALL {
            let mut net = StudentNet::new(StudentConfig::tiny()).unwrap();
            net.freeze = FreezePoint::TrainFrom(stage);
            // Nudge the zero-initialised head off zero so gradient actually
            // flows below out3 — otherwise the frozen/trainable assertions
            // are vacuous (everything below the head would get zero grad).
            let mut nudge = |p: &mut Param, _t: bool| {
                if p.name == "out3.weight" {
                    for v in p.value.data_mut() {
                        *v = 0.05;
                    }
                }
            };
            net.visit_params(&mut nudge);
            let x = input(16, 16, 9);
            let y = net.forward_train(&x).unwrap();
            net.backward(&Tensor::ones(y.shape().clone()))
                .unwrap_or_else(|e| panic!("backward failed at TrainFrom({stage:?}): {e}"));
            let mut frozen_grad = 0.0f32;
            let mut trainable_grad = 0.0f32;
            let mut v = |p: &mut Param, t: bool| {
                if t {
                    trainable_grad += p.grad.sq_norm();
                } else {
                    frozen_grad += p.grad.sq_norm();
                }
            };
            net.visit_params(&mut v);
            assert_eq!(
                frozen_grad, 0.0,
                "frozen grad leaked at TrainFrom({stage:?})"
            );
            assert!(
                trainable_grad > 0.0,
                "no trainable grad at TrainFrom({stage:?})"
            );
        }
    }

    #[test]
    fn full_backward_touches_everything() {
        let mut net = StudentNet::new(StudentConfig::tiny()).unwrap();
        net.freeze = FreezePoint::None;
        let x = input(16, 16, 4);
        // The classifier head is zero-initialised, so the very first backward
        // sends no gradient below out3. Nudge the head off zero first, then
        // check that gradient reaches every parameter.
        let y = net.forward_train(&x).unwrap();
        net.backward(&Tensor::ones(y.shape().clone())).unwrap();
        let mut v = |p: &mut Param, _t: bool| {
            if p.name == "out3.weight" {
                p.value.add_assign(&p.grad).unwrap();
            }
            p.zero_grad();
        };
        net.visit_params(&mut v);
        let y = net.forward_train(&x).unwrap();
        net.backward(&Tensor::ones(y.shape().clone())).unwrap();
        let mut zero_grad_params = vec![];
        let mut v = |p: &mut Param, _t: bool| {
            if p.grad.norm() == 0.0 {
                zero_grad_params.push(p.name.clone());
            }
        };
        net.visit_params(&mut v);
        // Every parameter should receive some gradient for a generic input
        // (dead-ReLU flukes aside, which the seed avoids).
        assert!(
            zero_grad_params.is_empty(),
            "parameters with zero grad: {zero_grad_params:?}"
        );
    }

    #[test]
    fn trainable_fraction_is_a_minority_under_paper_freeze() {
        let mut net = StudentNet::new(StudentConfig::paper()).unwrap();
        net.freeze = FreezePoint::paper_partial();
        let total = net.param_count();
        let trainable = net.trainable_param_count();
        let frac = trainable as f64 / total as f64;
        // Paper reports 21.4%; the reproduction's widths give the same order.
        assert!(frac > 0.05 && frac < 0.5, "trainable fraction {frac}");
        assert!(
            total > 300_000,
            "paper-scale student should be ~0.5M params, got {total}"
        );
    }

    #[test]
    fn zero_grads_clears_everything() {
        let mut net = StudentNet::new(StudentConfig::tiny()).unwrap();
        net.freeze = FreezePoint::None;
        let x = input(16, 16, 5);
        let y = net.forward_train(&x).unwrap();
        net.backward(&Tensor::ones(y.shape().clone())).unwrap();
        net.zero_grads();
        let mut total = 0.0f32;
        let mut v = |p: &mut Param, _| total += p.grad.sq_norm();
        net.visit_params(&mut v);
        assert_eq!(total, 0.0);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut net = StudentNet::new(StudentConfig::tiny()).unwrap();
        let g = Tensor::zeros(Shape::nchw(1, 9, 16, 16));
        assert!(net.backward(&g).is_err());
    }

    #[test]
    fn predict_returns_label_per_pixel() {
        let net = StudentNet::new(StudentConfig::tiny()).unwrap();
        let x = input(16, 16, 6);
        let labels = net.predict(&x).unwrap();
        assert_eq!(labels.len(), 16 * 16);
        assert!(labels.iter().all(|&c| c < 9));
    }

    #[test]
    fn stage_ordering() {
        assert!(Stage::In1.index() < Stage::Sb5.index());
        assert!(FreezePoint::paper_partial().trainable(Stage::Sb5));
        assert!(FreezePoint::paper_partial().trainable(Stage::Out3));
        assert!(!FreezePoint::paper_partial().trainable(Stage::Sb4));
        assert!(FreezePoint::None.trainable(Stage::In1));
    }
}
