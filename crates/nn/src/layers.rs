//! Elementary layers: 2-D convolution, batch normalisation, ReLU.
//!
//! Each layer owns its parameters (as [`Param`]s), their gradients, and the
//! forward-pass caches its backward pass needs, so a network is just a struct
//! of layers plus wiring. Backward passes *accumulate* into the parameter
//! gradients; the optimizer clears them after each step.

use crate::param::{Param, ParamVisitor};
use crate::Result;
use st_tensor::conv::{conv2d_backward, conv2d_forward, Conv2dSpec};
use st_tensor::{ops, Shape, Tensor, TensorError};

/// A 2-D convolution layer with optional bias and ReLU-friendly Kaiming init.
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Static convolution geometry.
    pub spec: Conv2dSpec,
    /// Kernel weights, `(out_c, in_c, kh, kw)`.
    pub weight: Param,
    /// Bias, `(out_c)`.
    pub bias: Param,
    cache: Option<ConvCache>,
}

#[derive(Debug, Clone)]
struct ConvCache {
    columns: Tensor,
    input_h: usize,
    input_w: usize,
}

impl Conv2d {
    /// Create a convolution layer with Kaiming-normal weights and zero bias.
    ///
    /// `name` prefixes the parameter names (`{name}.weight`, `{name}.bias`).
    pub fn new(name: &str, spec: Conv2dSpec, seed: u64) -> Result<Self> {
        spec.validate()?;
        let fan_in = spec.in_channels * spec.kernel_h * spec.kernel_w;
        let weight = st_tensor::random::kaiming(spec.weight_shape(), fan_in, seed);
        let bias = Tensor::zeros(Shape::vector(spec.out_channels));
        Ok(Conv2d {
            spec,
            weight: Param::new(format!("{name}.weight"), weight),
            bias: Param::new(format!("{name}.bias"), bias),
            cache: None,
        })
    }

    /// Forward pass, caching the im2col buffer for the next backward call.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let (_, _, h, w) = input.shape().as_nchw()?;
        let (out, columns) = conv2d_forward(
            input,
            &self.weight.value,
            Some(&self.bias.value),
            &self.spec,
        )?;
        self.cache = Some(ConvCache {
            columns,
            input_h: h,
            input_w: w,
        });
        Ok(out)
    }

    /// Forward pass without caching (inference only, lower memory).
    pub fn forward_inference(&self, input: &Tensor) -> Result<Tensor> {
        let (out, _) = conv2d_forward(
            input,
            &self.weight.value,
            Some(&self.bias.value),
            &self.spec,
        )?;
        Ok(out)
    }

    /// [`Conv2d::forward`] when `train`, otherwise a cache-free
    /// [`Conv2d::forward_inference`] (any stale training cache is dropped).
    pub fn forward_mode(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        if train {
            self.forward(input)
        } else {
            self.cache = None;
            self.forward_inference(input)
        }
    }

    /// Backward pass. Accumulates weight/bias gradients and, when
    /// `need_input_grad` is true, returns the gradient w.r.t. the layer
    /// input.
    pub fn backward(&mut self, grad_out: &Tensor, need_input_grad: bool) -> Result<Option<Tensor>> {
        let cache = self.cache.as_ref().ok_or_else(|| {
            TensorError::InvalidArgument("Conv2d::backward called before forward".into())
        })?;
        let grads = conv2d_backward(
            grad_out,
            &cache.columns,
            &self.weight.value,
            &self.spec,
            cache.input_h,
            cache.input_w,
            need_input_grad,
        )?;
        self.weight.grad.add_assign(&grads.weight)?;
        self.bias.grad.add_assign(&grads.bias)?;
        Ok(grads.input)
    }

    /// Number of parameters (weights + bias).
    pub fn param_count(&self) -> usize {
        self.weight.numel() + self.bias.numel()
    }

    /// Visit the layer's parameters in a stable order.
    pub fn visit_params(&mut self, visitor: &mut dyn ParamVisitor, trainable: bool) {
        visitor.visit(&mut self.weight, trainable);
        visitor.visit(&mut self.bias, trainable);
    }

    /// Drop the forward cache (frees the im2col buffer).
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }
}

/// Batch normalisation over the spatial dimensions of a single-image batch
/// (equivalent to instance normalisation for N = 1), with learned scale and
/// shift and running statistics for inference.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    /// Number of channels.
    pub channels: usize,
    /// Learned per-channel scale (gamma).
    pub gamma: Param,
    /// Learned per-channel shift (beta).
    pub beta: Param,
    /// Running mean used in inference mode.
    pub running_mean: Tensor,
    /// Running variance used in inference mode.
    pub running_var: Tensor,
    /// Momentum for the running statistics update.
    pub momentum: f32,
    /// Numerical stabiliser.
    pub eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    input_shape: Shape,
}

impl BatchNorm2d {
    /// Create a batch-norm layer with unit scale and zero shift.
    pub fn new(name: &str, channels: usize) -> Self {
        BatchNorm2d {
            channels,
            gamma: Param::new(
                format!("{name}.gamma"),
                Tensor::ones(Shape::vector(channels)),
            ),
            beta: Param::new(
                format!("{name}.beta"),
                Tensor::zeros(Shape::vector(channels)),
            ),
            running_mean: Tensor::zeros(Shape::vector(channels)),
            running_var: Tensor::ones(Shape::vector(channels)),
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize)> {
        let (n, c, h, w) = input.shape().as_nchw()?;
        if n != 1 || c != self.channels {
            return Err(TensorError::ShapeMismatch {
                op: "batchnorm",
                lhs: input.shape().dims().to_vec(),
                rhs: vec![1, self.channels, 0, 0],
            });
        }
        Ok((c, h, w))
    }

    /// Forward pass in training mode: normalise with batch statistics,
    /// update running statistics, cache what backward needs.
    pub fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        let (c, h, w) = self.check_input(input)?;
        let plane = h * w;
        let mut out = Tensor::zeros(input.shape().clone());
        let mut x_hat = Tensor::zeros(input.shape().clone());
        let mut inv_stds = vec![0.0f32; c];
        {
            let xin = input.data();
            let xh = x_hat.data_mut();
            for ci in 0..c {
                let slice = &xin[ci * plane..(ci + 1) * plane];
                let mean = slice.iter().sum::<f32>() / plane as f32;
                let var = slice.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / plane as f32;
                let inv_std = 1.0 / (var + self.eps).sqrt();
                inv_stds[ci] = inv_std;
                for (o, &x) in xh[ci * plane..(ci + 1) * plane]
                    .iter_mut()
                    .zip(slice.iter())
                {
                    *o = (x - mean) * inv_std;
                }
                // Running stats update.
                let rm = &mut self.running_mean.data_mut()[ci];
                *rm = (1.0 - self.momentum) * *rm + self.momentum * mean;
                let rv = &mut self.running_var.data_mut()[ci];
                *rv = (1.0 - self.momentum) * *rv + self.momentum * var;
            }
        }
        {
            let xh = x_hat.data();
            let od = out.data_mut();
            for ci in 0..c {
                let g = self.gamma.value.data()[ci];
                let b = self.beta.value.data()[ci];
                for (o, &xhv) in od[ci * plane..(ci + 1) * plane]
                    .iter_mut()
                    .zip(xh[ci * plane..(ci + 1) * plane].iter())
                {
                    *o = g * xhv + b;
                }
            }
        }
        self.cache = Some(BnCache {
            x_hat,
            inv_std: inv_stds,
            input_shape: input.shape().clone(),
        });
        Ok(out)
    }

    /// Forward pass in inference mode: normalise with running statistics.
    ///
    /// Accepts any batch size — the running statistics are per-channel
    /// constants, so each frame normalises independently and a batched call
    /// is bit-for-bit identical to per-frame calls.
    pub fn forward_inference(&self, input: &Tensor) -> Result<Tensor> {
        let (n, c, h, w) = input.shape().as_nchw()?;
        if c != self.channels {
            return Err(TensorError::ShapeMismatch {
                op: "batchnorm",
                lhs: input.shape().dims().to_vec(),
                rhs: vec![n, self.channels, 0, 0],
            });
        }
        let plane = h * w;
        let mut out = Tensor::zeros(input.shape().clone());
        let xin = input.data();
        let od = out.data_mut();
        for ni in 0..n {
            let base = ni * c * plane;
            for ci in 0..c {
                let mean = self.running_mean.data()[ci];
                let inv_std = 1.0 / (self.running_var.data()[ci] + self.eps).sqrt();
                let g = self.gamma.value.data()[ci];
                let b = self.beta.value.data()[ci];
                let lo = base + ci * plane;
                for (o, &x) in od[lo..lo + plane]
                    .iter_mut()
                    .zip(xin[lo..lo + plane].iter())
                {
                    *o = g * (x - mean) * inv_std + b;
                }
            }
        }
        Ok(out)
    }

    /// Backward pass (training-mode statistics). Accumulates gamma/beta
    /// gradients and returns the input gradient when requested.
    pub fn backward(&mut self, grad_out: &Tensor, need_input_grad: bool) -> Result<Option<Tensor>> {
        let cache = self.cache.as_ref().ok_or_else(|| {
            TensorError::InvalidArgument("BatchNorm2d::backward called before forward_train".into())
        })?;
        if !grad_out.shape().same_as(&cache.input_shape) {
            return Err(TensorError::ShapeMismatch {
                op: "batchnorm_backward",
                lhs: grad_out.shape().dims().to_vec(),
                rhs: cache.input_shape.dims().to_vec(),
            });
        }
        let (_, c, h, w) = cache.input_shape.as_nchw()?;
        let plane = h * w;
        let go = grad_out.data();
        let xh = cache.x_hat.data();

        // Parameter gradients.
        {
            let ggamma = self.gamma.grad.data_mut();
            let gbeta = self.beta.grad.data_mut();
            for ci in 0..c {
                let mut dg = 0.0f32;
                let mut db = 0.0f32;
                for p in 0..plane {
                    let idx = ci * plane + p;
                    dg += go[idx] * xh[idx];
                    db += go[idx];
                }
                ggamma[ci] += dg;
                gbeta[ci] += db;
            }
        }

        if !need_input_grad {
            return Ok(None);
        }

        // Input gradient with batch statistics:
        // dx = (gamma * inv_std / m) * (m*dy - sum(dy) - x_hat * sum(dy * x_hat))
        let mut gin = Tensor::zeros(cache.input_shape.clone());
        let gid = gin.data_mut();
        let m = plane as f32;
        for ci in 0..c {
            let g = self.gamma.value.data()[ci];
            let inv_std = cache.inv_std[ci];
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for p in 0..plane {
                let idx = ci * plane + p;
                sum_dy += go[idx];
                sum_dy_xhat += go[idx] * xh[idx];
            }
            let scale = g * inv_std / m;
            for p in 0..plane {
                let idx = ci * plane + p;
                gid[idx] = scale * (m * go[idx] - sum_dy - xh[idx] * sum_dy_xhat);
            }
        }
        Ok(Some(gin))
    }

    /// Drop the forward cache (frees the normalised-activation buffer).
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }

    /// Visit the layer's non-parameter state (running statistics) with stable
    /// names derived from the layer name (`{name}.running_mean` / `.running_var`).
    ///
    /// Running statistics are not parameters — the optimizer must never touch
    /// them — but they are part of the weights a serving client needs, so
    /// snapshots include them.
    pub fn visit_buffers(
        &mut self,
        visitor: &mut dyn FnMut(&str, &mut Tensor, bool),
        trainable: bool,
    ) {
        let prefix = self
            .gamma
            .name
            .strip_suffix(".gamma")
            .unwrap_or(&self.gamma.name)
            .to_string();
        visitor(
            &format!("{prefix}.running_mean"),
            &mut self.running_mean,
            trainable,
        );
        visitor(
            &format!("{prefix}.running_var"),
            &mut self.running_var,
            trainable,
        );
    }

    /// Number of parameters (gamma + beta).
    pub fn param_count(&self) -> usize {
        2 * self.channels
    }

    /// Visit the layer's parameters in a stable order.
    pub fn visit_params(&mut self, visitor: &mut dyn ParamVisitor, trainable: bool) {
        visitor.visit(&mut self.gamma, trainable);
        visitor.visit(&mut self.beta, trainable);
    }
}

/// Stateless ReLU that caches its input for the backward pass.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cache: Option<Tensor>,
}

impl Relu {
    /// Create a ReLU layer.
    pub fn new() -> Self {
        Relu { cache: None }
    }

    /// Forward pass (caches the input).
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = ops::relu(input);
        self.cache = Some(input.clone());
        out
    }

    /// Forward pass without caching.
    pub fn forward_inference(&self, input: &Tensor) -> Tensor {
        ops::relu(input)
    }

    /// [`Relu::forward`] when `train`, otherwise a cache-free
    /// [`Relu::forward_inference`] (any stale training cache is dropped).
    pub fn forward_mode(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.forward(input)
        } else {
            self.cache = None;
            self.forward_inference(input)
        }
    }

    /// Backward pass using the cached forward input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self.cache.as_ref().ok_or_else(|| {
            TensorError::InvalidArgument("Relu::backward called before forward".into())
        })?;
        ops::relu_backward(grad_out, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_tensor::random;

    #[test]
    fn conv_layer_forward_backward_accumulates() {
        let spec = Conv2dSpec::square(2, 3, 3, 1);
        let mut layer = Conv2d::new("c", spec, 1).unwrap();
        let x = random::uniform(Shape::nchw(1, 2, 6, 6), -1.0, 1.0, 2);
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[1, 3, 6, 6]);
        let g = Tensor::ones(y.shape().clone());
        let gin = layer.backward(&g, true).unwrap().unwrap();
        assert_eq!(gin.shape(), x.shape());
        let w_grad_norm_1 = layer.weight.grad.norm();
        assert!(w_grad_norm_1 > 0.0);
        // second backward accumulates
        layer.forward(&x).unwrap();
        layer.backward(&g, false).unwrap();
        assert!((layer.weight.grad.norm() - 2.0 * w_grad_norm_1).abs() < 1e-3);
    }

    #[test]
    fn conv_backward_before_forward_errors() {
        let spec = Conv2dSpec::square(1, 1, 1, 1);
        let mut layer = Conv2d::new("c", spec, 1).unwrap();
        let g = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        assert!(layer.backward(&g, false).is_err());
    }

    #[test]
    fn conv_param_visiting() {
        let spec = Conv2dSpec::square(2, 4, 3, 1);
        let mut layer = Conv2d::new("stem", spec, 3).unwrap();
        let mut names = vec![];
        let mut v = |p: &mut Param, t: bool| {
            names.push((p.name.clone(), t));
        };
        layer.visit_params(&mut v, true);
        assert_eq!(names.len(), 2);
        assert_eq!(names[0].0, "stem.weight");
        assert_eq!(names[1].0, "stem.bias");
        assert!(names.iter().all(|(_, t)| *t));
        assert_eq!(layer.param_count(), 2 * 4 * 9 + 4);
    }

    #[test]
    fn batchnorm_normalises_in_training_mode() {
        let mut bn = BatchNorm2d::new("bn", 3);
        let x = random::uniform(Shape::nchw(1, 3, 8, 8), 5.0, 9.0, 4);
        let y = bn.forward_train(&x).unwrap();
        // Per channel output should be ~zero-mean, ~unit-variance.
        let plane = 64;
        for c in 0..3 {
            let slice = &y.data()[c * plane..(c + 1) * plane];
            let mean: f32 = slice.iter().sum::<f32>() / plane as f32;
            let var: f32 =
                slice.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / plane as f32;
            assert!(mean.abs() < 1e-3, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
        // Running stats moved towards the batch stats.
        assert!(bn.running_mean.data()[0] > 0.0);
    }

    #[test]
    fn batchnorm_inference_uses_running_stats() {
        let mut bn = BatchNorm2d::new("bn", 1);
        let x = random::uniform(Shape::nchw(1, 1, 16, 16), 2.0, 4.0, 5);
        // Train a few times so running stats converge towards the batch stats.
        for _ in 0..50 {
            bn.forward_train(&x).unwrap();
        }
        let y = bn.forward_inference(&x).unwrap();
        let mean: f32 = y.mean();
        assert!(mean.abs() < 0.2, "inference mean {mean}");
    }

    #[test]
    fn batchnorm_backward_matches_numerical_gradient() {
        let mut bn = BatchNorm2d::new("bn", 2);
        bn.gamma.value = Tensor::from_slice(&[1.3, 0.7]);
        bn.beta.value = Tensor::from_slice(&[0.1, -0.2]);
        let x = random::uniform(Shape::nchw(1, 2, 4, 4), -1.0, 1.0, 6);
        let coeff = random::uniform(Shape::nchw(1, 2, 4, 4), -1.0, 1.0, 7);
        let loss = |bn: &mut BatchNorm2d, input: &Tensor| -> f32 {
            bn.forward_train(input).unwrap().mul(&coeff).unwrap().sum()
        };
        loss(&mut bn, &x);
        let gin = bn.backward(&coeff, true).unwrap().unwrap();
        let eps = 1e-2f32;
        for idx in [0usize, 5, 17, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            // fresh BN copies so running stats don't interfere
            let mut bnp = bn.clone();
            let mut bnm = bn.clone();
            let num = (loss(&mut bnp, &xp) - loss(&mut bnm, &xm)) / (2.0 * eps);
            let ana = gin.data()[idx];
            assert!((num - ana).abs() < 3e-2, "idx {idx}: num {num} ana {ana}");
        }
    }

    #[test]
    fn batchnorm_rejects_wrong_channels() {
        let mut bn = BatchNorm2d::new("bn", 4);
        let x = Tensor::zeros(Shape::nchw(1, 3, 2, 2));
        assert!(bn.forward_train(&x).is_err());
        assert!(bn.forward_inference(&x).is_err());
    }

    #[test]
    fn relu_layer_round_trip() {
        let mut r = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 2.0]);
        let y = r.forward(&x);
        assert_eq!(y.data(), &[0.0, 2.0]);
        let g = r.backward(&Tensor::from_slice(&[3.0, 3.0])).unwrap();
        assert_eq!(g.data(), &[0.0, 3.0]);
        let mut fresh = Relu::new();
        assert!(fresh.backward(&x).is_err());
    }
}
