//! Pixel-weighted cross-entropy for semantic segmentation distillation.
//!
//! The LVS videos are dominated by background pixels, so the paper adopts the
//! LVS authors' loss weighting: the cross-entropy of pixels *near and within*
//! non-background objects is scaled by a factor of 5 (§5.2). [`WeightMap`]
//! builds exactly that weighting from a (pseudo-)label map by dilating the
//! non-background region.

use crate::Result;
use st_tensor::{ops, Tensor, TensorError};

/// Loss-weight factor applied near/within non-background objects (paper §5.2).
pub const OBJECT_WEIGHT: f32 = 5.0;

/// Per-pixel loss weights.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightMap {
    weights: Vec<f32>,
}

impl WeightMap {
    /// Uniform weights (1.0) for `n` pixels.
    pub fn uniform(n: usize) -> Self {
        WeightMap {
            weights: vec![1.0; n],
        }
    }

    /// Build the LVS-style weight map from a label map: pixels whose
    /// `radius`-neighbourhood (Chebyshev distance) contains any
    /// non-background pixel get weight [`OBJECT_WEIGHT`], everything else 1.
    ///
    /// `background_class` is the class index treated as background.
    pub fn from_labels(
        labels: &[usize],
        h: usize,
        w: usize,
        background_class: usize,
        radius: usize,
    ) -> Result<Self> {
        if labels.len() != h * w {
            return Err(TensorError::LengthMismatch {
                expected: h * w,
                actual: labels.len(),
            });
        }
        let mut weights = vec![1.0f32; h * w];
        for y in 0..h {
            for x in 0..w {
                let mut near_object = false;
                let y0 = y.saturating_sub(radius);
                let y1 = (y + radius).min(h - 1);
                let x0 = x.saturating_sub(radius);
                let x1 = (x + radius).min(w - 1);
                'scan: for yy in y0..=y1 {
                    for xx in x0..=x1 {
                        if labels[yy * w + xx] != background_class {
                            near_object = true;
                            break 'scan;
                        }
                    }
                }
                if near_object {
                    weights[y * w + x] = OBJECT_WEIGHT;
                }
            }
        }
        Ok(WeightMap { weights })
    }

    /// Per-pixel weights.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Number of pixels.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when the map is empty.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

/// Weighted pixel cross-entropy between `(1, C, H, W)` logits and an `H*W`
/// label map.
///
/// Returns the scalar loss (weighted mean over pixels) and its gradient with
/// respect to the logits (same shape as `logits`), ready to feed into
/// [`crate::student::StudentNet::backward`].
pub fn weighted_cross_entropy(
    logits: &Tensor,
    labels: &[usize],
    weights: &WeightMap,
) -> Result<(f32, Tensor)> {
    let (n, c, h, w) = logits.shape().as_nchw()?;
    if n != 1 {
        return Err(TensorError::InvalidArgument(
            "weighted_cross_entropy expects batch size 1".into(),
        ));
    }
    let plane = h * w;
    if labels.len() != plane || weights.len() != plane {
        return Err(TensorError::LengthMismatch {
            expected: plane,
            actual: labels.len().min(weights.len()),
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= c) {
        return Err(TensorError::IndexOutOfBounds { index: bad, len: c });
    }

    let log_probs = ops::log_softmax_channels(logits)?;
    let probs = log_probs.map(|x| x.exp());
    let weight_sum: f32 = weights.weights().iter().sum();
    let norm = if weight_sum > 0.0 { weight_sum } else { 1.0 };

    let mut loss = 0.0f32;
    let mut grad = Tensor::zeros(logits.shape().clone());
    {
        let lp = log_probs.data();
        let pr = probs.data();
        let gd = grad.data_mut();
        for p in 0..plane {
            let wgt = weights.weights()[p];
            let label = labels[p];
            loss -= wgt * lp[label * plane + p];
            // d(loss)/d(logit_c) = w * (softmax_c - one_hot_c) / norm
            for ci in 0..c {
                let indicator = if ci == label { 1.0 } else { 0.0 };
                gd[ci * plane + p] = wgt * (pr[ci * plane + p] - indicator) / norm;
            }
        }
    }
    Ok((loss / norm, grad))
}

/// Unweighted pixel accuracy between a predicted label map and a reference
/// label map — a cheap secondary metric used in tests and examples.
pub fn pixel_accuracy(pred: &[usize], label: &[usize]) -> f32 {
    if pred.is_empty() || pred.len() != label.len() {
        return 0.0;
    }
    let correct = pred
        .iter()
        .zip(label.iter())
        .filter(|(a, b)| a == b)
        .count();
    correct as f32 / pred.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_tensor::{random, Shape};

    #[test]
    fn uniform_weight_map() {
        let w = WeightMap::uniform(10);
        assert_eq!(w.len(), 10);
        assert!(w.weights().iter().all(|&x| x == 1.0));
        assert!(!w.is_empty());
    }

    #[test]
    fn weight_map_dilates_objects() {
        // 5x5 map with a single object pixel in the centre, radius 1.
        let mut labels = vec![0usize; 25];
        labels[12] = 3;
        let w = WeightMap::from_labels(&labels, 5, 5, 0, 1).unwrap();
        // Centre 3x3 neighbourhood weighted, corners not.
        assert_eq!(w.weights()[12], OBJECT_WEIGHT);
        assert_eq!(w.weights()[6], OBJECT_WEIGHT); // diagonal neighbour
        assert_eq!(w.weights()[0], 1.0);
        assert_eq!(w.weights()[24], 1.0);
    }

    #[test]
    fn weight_map_validates_length() {
        assert!(WeightMap::from_labels(&[0; 24], 5, 5, 0, 1).is_err());
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        // Logits strongly favouring the correct class.
        let labels: Vec<usize> = vec![1, 0, 2, 1];
        let mut logits = Tensor::zeros(Shape::nchw(1, 3, 2, 2));
        for (p, &l) in labels.iter().enumerate() {
            logits.data_mut()[l * 4 + p] = 20.0;
        }
        let w = WeightMap::uniform(4);
        let (loss, grad) = weighted_cross_entropy(&logits, &labels, &w).unwrap();
        assert!(loss < 1e-3, "loss {loss}");
        assert!(grad.norm() < 1e-3);
    }

    #[test]
    fn cross_entropy_gradient_matches_numerical() {
        let logits = random::uniform(Shape::nchw(1, 4, 3, 3), -1.0, 1.0, 9);
        let labels: Vec<usize> = (0..9).map(|i| i % 4).collect();
        let mut weights = vec![1.0f32; 9];
        weights[4] = 5.0;
        let wmap = WeightMap { weights };
        let (_, grad) = weighted_cross_entropy(&logits, &labels, &wmap).unwrap();
        let eps = 1e-2f32;
        for idx in [0usize, 7, 17, 35] {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let (loss_p, _) = weighted_cross_entropy(&lp, &labels, &wmap).unwrap();
            let (loss_m, _) = weighted_cross_entropy(&lm, &labels, &wmap).unwrap();
            let num = (loss_p - loss_m) / (2.0 * eps);
            let ana = grad.data()[idx];
            assert!((num - ana).abs() < 1e-3, "idx {idx}: num {num} ana {ana}");
        }
    }

    #[test]
    fn weighted_pixels_dominate_loss() {
        // Two pixels, both wrong; weighting pixel 0 by 5 should tilt the loss
        // towards pixel 0's contribution.
        let mut logits = Tensor::zeros(Shape::nchw(1, 2, 1, 2));
        logits.data_mut()[0] = 2.0; // pixel 0 favours class 0
        logits.data_mut()[3] = 2.0; // pixel 1 favours class 1
        let labels = vec![1usize, 0usize]; // both wrong
        let uniform = WeightMap::uniform(2);
        let (loss_u, _) = weighted_cross_entropy(&logits, &labels, &uniform).unwrap();
        let weighted = WeightMap {
            weights: vec![5.0, 1.0],
        };
        let (loss_w, _) = weighted_cross_entropy(&logits, &labels, &weighted).unwrap();
        // Both pixels have identical individual losses here, so the weighted
        // mean equals the unweighted mean; perturb pixel 1 to be nearly right
        // and the weighted loss (dominated by wrong pixel 0) must be larger.
        logits.data_mut()[1] = 3.0; // pixel 1 now also supports class 0 strongly...
        let labels2 = vec![1usize, 0usize];
        let (loss_u2, _) = weighted_cross_entropy(&logits, &labels2, &uniform).unwrap();
        let (loss_w2, _) = weighted_cross_entropy(&logits, &labels2, &weighted).unwrap();
        assert!(loss_w2 > loss_u2, "weighted {loss_w2} vs uniform {loss_u2}");
        let _ = (loss_u, loss_w);
    }

    #[test]
    fn cross_entropy_rejects_bad_labels() {
        let logits = Tensor::zeros(Shape::nchw(1, 3, 2, 2));
        let w = WeightMap::uniform(4);
        assert!(weighted_cross_entropy(&logits, &[0, 1, 2, 5], &w).is_err());
        assert!(weighted_cross_entropy(&logits, &[0, 1], &w).is_err());
    }

    #[test]
    fn pixel_accuracy_basic() {
        assert_eq!(pixel_accuracy(&[1, 2, 3], &[1, 2, 0]), 2.0 / 3.0);
        assert_eq!(pixel_accuracy(&[], &[]), 0.0);
        assert_eq!(pixel_accuracy(&[1], &[1, 2]), 0.0);
    }
}
