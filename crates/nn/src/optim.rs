//! Optimizers: SGD (with optional momentum) and Adam.
//!
//! ShadowTutor distills with Adam at a learning rate of 0.01 (§5.2). The
//! optimizer only updates parameters whose stage is *trainable* under the
//! student's current freeze point, which is how partial distillation skips
//! the frozen front of the network; per-parameter state (momentum buffers,
//! Adam moments) is keyed by parameter name so it survives freeze-point
//! changes and snapshot round-trips.

use crate::param::Param;
use crate::student::StudentNet;
use st_tensor::Tensor;
use std::collections::HashMap;

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocity: HashMap<String, Tensor>,
}

impl Sgd {
    /// Create an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }

    /// Apply one update step to every trainable parameter of the student and
    /// clear all gradients (including frozen ones, which should be zero
    /// anyway under partial backward).
    pub fn step(&mut self, net: &mut StudentNet) {
        let lr = self.lr;
        let momentum = self.momentum;
        let velocity = &mut self.velocity;
        let mut visit = |p: &mut Param, trainable: bool| {
            if trainable {
                if momentum > 0.0 {
                    let v = velocity
                        .entry(p.name.clone())
                        .or_insert_with(|| Tensor::zeros(p.value.shape().clone()));
                    v.scale_in_place(momentum);
                    v.add_assign(&p.grad).expect("velocity shape matches grad");
                    p.value.axpy(-lr, v).expect("param shape matches velocity");
                } else {
                    p.value
                        .axpy(-lr, &p.grad)
                        .expect("param shape matches grad");
                }
            }
            p.zero_grad();
        };
        net.visit_params(&mut visit);
    }
}

/// Adam optimizer (Kingma & Ba, 2015) — the paper's distillation optimizer.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (paper: 0.01 for distillation).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub eps: f32,
    step_count: u64,
    m: HashMap<String, Tensor>,
    v: HashMap<String, Tensor>,
}

impl Adam {
    /// Create an Adam optimizer with the standard betas.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step_count: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// The paper's distillation optimizer: Adam with learning rate 0.01.
    pub fn paper_distillation() -> Self {
        Adam::new(0.01)
    }

    /// Number of steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step_count
    }

    /// Apply one Adam step to every trainable parameter and clear gradients.
    pub fn step(&mut self, net: &mut StudentNet) {
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        let (lr, beta1, beta2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let m_map = &mut self.m;
        let v_map = &mut self.v;
        let mut visit = |p: &mut Param, trainable: bool| {
            if trainable {
                let m = m_map
                    .entry(p.name.clone())
                    .or_insert_with(|| Tensor::zeros(p.value.shape().clone()));
                let v = v_map
                    .entry(p.name.clone())
                    .or_insert_with(|| Tensor::zeros(p.value.shape().clone()));
                let md = m.data_mut();
                let vd = v.data_mut();
                let gd = p.grad.data();
                let pd = p.value.data_mut();
                for i in 0..pd.len() {
                    let g = gd[i];
                    md[i] = beta1 * md[i] + (1.0 - beta1) * g;
                    vd[i] = beta2 * vd[i] + (1.0 - beta2) * g * g;
                    let m_hat = md[i] / bias1;
                    let v_hat = vd[i] / bias2;
                    pd[i] -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            }
            p.zero_grad();
        };
        net.visit_params(&mut visit);
    }

    /// Forget all per-parameter state (used when a fresh student checkpoint
    /// is loaded, e.g. at the start of a new video stream).
    pub fn reset_state(&mut self) {
        self.step_count = 0;
        self.m.clear();
        self.v.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{weighted_cross_entropy, WeightMap};
    use crate::student::{FreezePoint, StudentConfig, StudentNet};
    use st_tensor::{random, Shape};

    fn toy_problem() -> (StudentNet, st_tensor::Tensor, Vec<usize>) {
        let net = StudentNet::new(StudentConfig::tiny()).unwrap();
        let x = random::uniform(Shape::nchw(1, 3, 16, 16), 0.0, 1.0, 77);
        // A fixed target label map: left half class 0, right half class 3.
        let labels: Vec<usize> = (0..16 * 16)
            .map(|i| if i % 16 < 8 { 0 } else { 3 })
            .collect();
        (net, x, labels)
    }

    fn train_loss(
        net: &mut StudentNet,
        x: &st_tensor::Tensor,
        labels: &[usize],
        steps: usize,
        mut do_step: impl FnMut(&mut StudentNet),
    ) -> (f32, f32) {
        let weights = WeightMap::uniform(16 * 16);
        let logits0 = net.forward_train(x).unwrap();
        let (loss0, _) = weighted_cross_entropy(&logits0, labels, &weights).unwrap();
        for _ in 0..steps {
            let logits = net.forward_train(x).unwrap();
            let (_, grad) = weighted_cross_entropy(&logits, labels, &weights).unwrap();
            net.backward(&grad).unwrap();
            do_step(net);
        }
        let logits1 = net.forward_train(x).unwrap();
        let (loss1, _) = weighted_cross_entropy(&logits1, labels, &weights).unwrap();
        (loss0, loss1)
    }

    #[test]
    fn adam_reduces_loss_on_overfit_target() {
        let (mut net, x, labels) = toy_problem();
        net.freeze = FreezePoint::None;
        let mut opt = Adam::new(0.01);
        let (loss0, loss1) = train_loss(&mut net, &x, &labels, 10, |n| opt.step(n));
        assert!(
            loss1 < loss0 * 0.9,
            "Adam failed to reduce loss: {loss0} -> {loss1}"
        );
        assert_eq!(opt.steps_taken(), 10);
    }

    #[test]
    fn sgd_reduces_loss_on_overfit_target() {
        let (mut net, x, labels) = toy_problem();
        net.freeze = FreezePoint::None;
        let mut opt = Sgd::new(0.005, 0.9);
        let (loss0, loss1) = train_loss(&mut net, &x, &labels, 15, |n| opt.step(n));
        assert!(
            loss1 < loss0,
            "SGD failed to reduce loss: {loss0} -> {loss1}"
        );
    }

    #[test]
    fn partial_freeze_leaves_frozen_params_untouched() {
        let (mut net, x, labels) = toy_problem();
        net.freeze = FreezePoint::paper_partial();
        // Record a frozen parameter before training.
        let mut frozen_before = None;
        let mut v = |p: &mut Param, t: bool| {
            if !t && frozen_before.is_none() {
                frozen_before = Some((p.name.clone(), p.value.clone()));
            }
        };
        net.visit_params(&mut v);
        let (name, before) = frozen_before.unwrap();

        let mut opt = Adam::paper_distillation();
        let _ = train_loss(&mut net, &x, &labels, 3, |n| opt.step(n));

        let mut after = None;
        let mut v2 = |p: &mut Param, _t: bool| {
            if p.name == name {
                after = Some(p.value.clone());
            }
        };
        net.visit_params(&mut v2);
        assert_eq!(before, after.unwrap(), "frozen parameter {name} changed");
    }

    #[test]
    fn adam_reset_state() {
        let mut opt = Adam::new(0.01);
        let (mut net, x, labels) = toy_problem();
        let _ = train_loss(&mut net, &x, &labels, 2, |n| opt.step(n));
        assert!(opt.steps_taken() > 0);
        opt.reset_state();
        assert_eq!(opt.steps_taken(), 0);
    }

    #[test]
    fn optimizer_clears_gradients() {
        let (mut net, x, labels) = toy_problem();
        net.freeze = FreezePoint::None;
        let weights = WeightMap::uniform(16 * 16);
        let logits = net.forward_train(&x).unwrap();
        let (_, grad) = weighted_cross_entropy(&logits, &labels, &weights).unwrap();
        net.backward(&grad).unwrap();
        let mut opt = Sgd::new(0.01, 0.0);
        opt.step(&mut net);
        let mut total = 0.0f32;
        let mut v = |p: &mut Param, _| total += p.grad.sq_norm();
        net.visit_params(&mut v);
        assert_eq!(total, 0.0);
    }
}
