//! Delta-encoded weight updates and the checkpoint digests that anchor them.
//!
//! Partial distillation only trains the student's back-end, so most of a
//! stream's weight state is identical from update to update — and on
//! plateau/skip frames *all* of it is. The wire protocol exploits that:
//! instead of re-shipping a full [`WeightSnapshot`], the server sends a
//! [`WeightDelta`] naming the client's last-acked checkpoint (by combined
//! content hash) plus only the entries whose chunk hash changed. The client
//! applies the delta against its [`CheckpointDigest`] and rejects a delta
//! whose base it does not hold with a typed [`st_net::WireError`]
//! ([`st_net::WireError::UnknownBaseCheckpoint`] /
//! [`st_net::WireError::StaleBaseCheckpoint`]) — the sender then falls back
//! to a full snapshot, which remains always-decodable.
//!
//! Both encodings travel inside one self-describing envelope,
//! [`WeightPayload`], negotiated at registration: a client that never
//! announces delta support keeps receiving bare snapshots exactly as before.
//!
//! Digest consistency: the server patches its per-stream digest with every
//! update it sends; the client patches with every delta/full payload it
//! applies. Entries omitted from a delta have, by construction, unchanged
//! chunk hashes — so patching with "the delta's entries" (client) and
//! patching with "the whole update" (server) produce the same digest, and
//! the two sides stay bit-synchronized without ever exchanging digests.

use crate::snapshot::{SnapshotScope, WeightSnapshot};
use crate::store::{chunk_hash, combine_hashes};
use crate::Result;
use bytes::Bytes;
use st_net::{Wire, WireError};

/// Per-entry chunk hashes of one peer's *complete* weight state, in capture
/// order. [`CheckpointDigest::combined`] is the checkpoint identity a
/// [`WeightDelta`] names as its base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointDigest {
    entries: Vec<(String, u64)>,
}

impl CheckpointDigest {
    /// Digest a snapshot (hash every entry chunk).
    pub fn of(snapshot: &WeightSnapshot) -> Self {
        CheckpointDigest {
            entries: snapshot
                .entry_chunks()
                .into_iter()
                .map(|(name, bytes)| (name.to_string(), chunk_hash(&bytes)))
                .collect(),
        }
    }

    /// The combined checkpoint identity (order-sensitive fold of the entry
    /// hashes).
    pub fn combined(&self) -> u64 {
        combine_hashes(self.entries.iter().map(|(_, h)| h))
    }

    /// Number of digested entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// The digested hash of one entry, if present.
    pub fn entry_hash(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| *h)
    }

    /// Advance the digest by an update snapshot: every entry present in
    /// `update` gets its hash recomputed; entries the update omits keep
    /// theirs. This is the server-side patch after sending an update.
    pub fn patch(&mut self, update: &WeightSnapshot) {
        let patches: Vec<(String, u64)> = update
            .entry_chunks()
            .into_iter()
            .map(|(name, bytes)| (name.to_string(), chunk_hash(&bytes)))
            .collect();
        self.patch_hashes(patches);
    }

    /// Advance the digest by already-encoded chunks (the client-side patch
    /// after applying a delta or full payload).
    pub fn patch_chunks(&mut self, chunks: &[(String, Bytes)]) {
        let patches: Vec<(String, u64)> = chunks
            .iter()
            .map(|(name, bytes)| (name.clone(), chunk_hash(bytes)))
            .collect();
        self.patch_hashes(patches);
    }

    fn patch_hashes(&mut self, patches: Vec<(String, u64)>) {
        for (name, hash) in patches {
            if let Some(slot) = self.entries.iter_mut().find(|(n, _)| *n == name) {
                slot.1 = hash;
            } else {
                self.entries.push((name, hash));
            }
        }
    }
}

/// A sparse weight update: the entries of an update snapshot whose content
/// changed relative to a base checkpoint, plus that base's identity hash.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightDelta {
    base: u64,
    scope: SnapshotScope,
    /// `(entry name, chunk bytes)` for changed entries only, in update
    /// order. Chunk bytes use the [`WeightSnapshot::entry_chunks`] framing
    /// (`u32 numel` + little-endian `f32`s).
    entries: Vec<(String, Bytes)>,
}

impl WeightDelta {
    /// Compute the delta that carries `update` to a peer whose state matches
    /// `base`: only entries whose chunk hash differs from the digested one.
    /// An entry the digest has never seen is always included.
    pub fn compute(update: &WeightSnapshot, base: &CheckpointDigest) -> Self {
        let entries = update
            .entry_chunks()
            .into_iter()
            .filter_map(|(name, bytes)| {
                if base.entry_hash(name) == Some(chunk_hash(&bytes)) {
                    None
                } else {
                    Some((name.to_string(), bytes))
                }
            })
            .collect();
        WeightDelta {
            base: base.combined(),
            scope: update.scope(),
            entries,
        }
    }

    /// The combined hash of the checkpoint this delta applies on top of.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Scope of the update snapshot this delta was computed from.
    pub fn scope(&self) -> SnapshotScope {
        self.scope
    }

    /// Number of changed entries carried.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// The changed entries' chunks.
    pub fn chunks(&self) -> &[(String, Bytes)] {
        &self.entries
    }

    /// Verify this delta is applicable to a peer holding `current`.
    ///
    /// `previous` is the combined hash of the peer's *prior* checkpoint (if
    /// it has applied at least one update): a delta naming it means an
    /// update raced past — [`WireError::StaleBaseCheckpoint`] — while any
    /// other mismatch is [`WireError::UnknownBaseCheckpoint`].
    pub fn check_base(
        &self,
        current: &CheckpointDigest,
        previous: Option<u64>,
    ) -> std::result::Result<(), WireError> {
        let held = current.combined();
        if self.base == held {
            Ok(())
        } else if previous == Some(self.base) {
            Err(WireError::StaleBaseCheckpoint { base: self.base })
        } else {
            Err(WireError::UnknownBaseCheckpoint { base: self.base })
        }
    }

    /// Materialize the carried entries as a sparse [`WeightSnapshot`] (apply
    /// it like any partial update) and return the chunks for digest
    /// patching.
    pub fn into_parts(self) -> Result<(WeightSnapshot, Vec<(String, Bytes)>)> {
        let chunks = self.entries;
        let snapshot = WeightSnapshot::from_entry_chunks(chunks.clone(), self.scope)?;
        Ok((snapshot, chunks))
    }
}

fn scope_tag(scope: SnapshotScope) -> u8 {
    match scope {
        SnapshotScope::Full => 0,
        SnapshotScope::TrainableOnly => 1,
    }
}

fn scope_from_tag(tag: u8) -> std::result::Result<SnapshotScope, WireError> {
    match tag {
        0 => Ok(SnapshotScope::Full),
        1 => Ok(SnapshotScope::TrainableOnly),
        tag => Err(WireError::UnknownVariant {
            type_name: "SnapshotScope",
            tag,
        }),
    }
}

/// Wire layout: `u64 base`, scope byte, `u32 entry count`, then per entry a
/// length-prefixed UTF-8 name and the chunk bytes verbatim (`u32 numel` +
/// `4 * numel` bytes of `f32`). A truncated chunk list fails with
/// [`WireError::Truncated`] at the exact missing byte.
impl Wire for WeightDelta {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.base.encode_into(out);
        out.push(scope_tag(self.scope));
        (self.entries.len() as u32).encode_into(out);
        for (name, chunk) in &self.entries {
            name.encode_into(out);
            out.extend_from_slice(chunk);
        }
    }

    fn decode(input: &mut &[u8]) -> std::result::Result<Self, WireError> {
        let base = u64::decode(input)?;
        let scope = scope_from_tag(u8::decode(input)?)?;
        let count = u32::decode(input)? as usize;
        let mut entries = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            let name = String::decode(input)?;
            let numel = u32::decode(input)? as usize;
            let body = numel.checked_mul(4).ok_or(WireError::InvalidValue {
                what: "weight-delta chunk length overflows",
            })?;
            if input.len() < body {
                return Err(WireError::Truncated {
                    needed: body,
                    available: input.len(),
                });
            }
            let mut chunk = Vec::with_capacity(4 + body);
            chunk.extend_from_slice(&(numel as u32).to_le_bytes());
            chunk.extend_from_slice(&input[..body]);
            *input = &input[body..];
            entries.push((name, Bytes::from(chunk)));
        }
        Ok(WeightDelta {
            base,
            scope,
            entries,
        })
    }

    fn encoded_len(&self) -> usize {
        8 + 1
            + 4
            + self
                .entries
                .iter()
                .map(|(name, chunk)| 4 + name.len() + chunk.len())
                .sum::<usize>()
    }
}

/// The self-describing update envelope a delta-negotiated stream receives:
/// either a full snapshot (always applicable — the fallback and re-sync
/// path) or a sparse delta against the client's last-acked checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightPayload {
    /// A complete snapshot at its scope; applies unconditionally.
    Full(WeightSnapshot),
    /// Changed entries against a named base checkpoint.
    Delta(WeightDelta),
}

impl WeightPayload {
    /// Whether this payload is the sparse encoding.
    pub fn is_delta(&self) -> bool {
        matches!(self, WeightPayload::Delta(_))
    }

    /// Encode a `Full` envelope from a borrowed snapshot, without cloning
    /// the snapshot into the enum first.
    pub fn encode_full(snapshot: &WeightSnapshot) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + snapshot.encoded_len());
        out.push(0);
        snapshot.encode_into(&mut out);
        out
    }
}

impl Wire for WeightPayload {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            WeightPayload::Full(snapshot) => {
                out.push(0);
                snapshot.encode_into(out);
            }
            WeightPayload::Delta(delta) => {
                out.push(1);
                delta.encode_into(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> std::result::Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(WeightPayload::Full(<WeightSnapshot as Wire>::decode(
                input,
            )?)),
            1 => Ok(WeightPayload::Delta(WeightDelta::decode(input)?)),
            tag => Err(WireError::UnknownVariant {
                type_name: "WeightPayload",
                tag,
            }),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            WeightPayload::Full(snapshot) => snapshot.encoded_len(),
            WeightPayload::Delta(delta) => delta.encoded_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::student::{FreezePoint, StudentConfig, StudentNet};

    fn net(seed: u64) -> StudentNet {
        let mut n = StudentNet::new(StudentConfig {
            seed,
            ..StudentConfig::tiny()
        })
        .unwrap();
        n.freeze = FreezePoint::paper_partial();
        n
    }

    fn trained_step(n: &mut StudentNet, seed: u64) {
        let x = st_tensor::random::uniform(st_tensor::Shape::nchw(1, 3, 16, 16), 0.0, 1.0, seed);
        let y = n.forward_train(&x).unwrap();
        n.backward(&y).unwrap();
        let mut adam = Adam::new(0.01);
        adam.step(n);
    }

    #[test]
    fn identical_update_yields_empty_delta() {
        let mut a = net(1);
        let full = WeightSnapshot::capture(&mut a, SnapshotScope::Full);
        let digest = CheckpointDigest::of(&full);
        let update = WeightSnapshot::capture(&mut a, SnapshotScope::TrainableOnly);
        let delta = WeightDelta::compute(&update, &digest);
        assert_eq!(delta.entry_count(), 0);
        assert!(delta.encoded_len() < update.encoded_len());
    }

    #[test]
    fn delta_apply_reproduces_update_bit_for_bit() {
        let mut server = net(2);
        let base_full = WeightSnapshot::capture(&mut server, SnapshotScope::Full);
        let mut server_digest = CheckpointDigest::of(&base_full);

        // Client starts at the same checkpoint.
        let mut client = net(99);
        base_full.apply(&mut client).unwrap();
        let mut client_digest =
            CheckpointDigest::of(&WeightSnapshot::capture(&mut client, SnapshotScope::Full));
        assert_eq!(server_digest.combined(), client_digest.combined());

        // Server trains, computes the sparse update.
        trained_step(&mut server, 7);
        let update = WeightSnapshot::capture(&mut server, SnapshotScope::TrainableOnly);
        let delta = WeightDelta::compute(&update, &server_digest);
        assert!(delta.entry_count() <= update.entry_count());
        server_digest.patch(&update);

        // Wire round trip.
        let encoded = Wire::encode(&WeightPayload::Delta(delta));
        let WeightPayload::Delta(delta) =
            <WeightPayload as Wire>::decode(&mut &encoded[..]).unwrap()
        else {
            panic!("expected delta payload")
        };

        // Client verifies + applies + patches.
        delta.check_base(&client_digest, None).unwrap();
        let (sparse, chunks) = delta.into_parts().unwrap();
        sparse.apply(&mut client).unwrap();
        client_digest.patch_chunks(&chunks);

        assert_eq!(server_digest.combined(), client_digest.combined());
        let server_state = WeightSnapshot::capture(&mut server, SnapshotScope::Full);
        let client_state = WeightSnapshot::capture(&mut client, SnapshotScope::Full);
        assert_eq!(server_state.encode(), client_state.encode());
    }

    #[test]
    fn stale_and_unknown_bases_are_typed() {
        let mut a = net(3);
        let full = WeightSnapshot::capture(&mut a, SnapshotScope::Full);
        let digest0 = CheckpointDigest::of(&full);
        let update0 = WeightSnapshot::capture(&mut a, SnapshotScope::TrainableOnly);
        let delta_v0 = WeightDelta::compute(&update0, &digest0);

        // Advance the client past digest0.
        trained_step(&mut a, 11);
        let mut advanced = digest0.clone();
        advanced.patch(&WeightSnapshot::capture(
            &mut a,
            SnapshotScope::TrainableOnly,
        ));
        assert_ne!(advanced.combined(), digest0.combined());

        let err = delta_v0
            .check_base(&advanced, Some(digest0.combined()))
            .unwrap_err();
        assert!(
            matches!(err, WireError::StaleBaseCheckpoint { base } if base == digest0.combined())
        );

        let err = delta_v0.check_base(&advanced, None).unwrap_err();
        assert!(matches!(err, WireError::UnknownBaseCheckpoint { .. }));
    }

    #[test]
    fn truncated_chunk_list_is_typed() {
        let mut a = net(4);
        trained_step(&mut a, 5);
        let full = WeightSnapshot::capture(&mut a, SnapshotScope::Full);
        let digest =
            CheckpointDigest::of(&WeightSnapshot::capture(&mut net(5), SnapshotScope::Full));
        let delta = WeightDelta::compute(&full, &digest);
        assert!(delta.entry_count() > 0);
        let encoded = Wire::encode(&delta);
        let cut = &encoded[..encoded.len() - 2];
        let err = <WeightDelta as Wire>::decode(&mut &cut[..]).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }));
    }
}
