//! Segmentation metrics: confusion matrix, per-class IoU and mean IoU.
//!
//! The paper evaluates with mean Intersection-over-Union (Eq. 1): for each
//! class `c`, `IoU_c = |pred_c ∩ label_c| / |pred_c ∪ label_c|`, averaged
//! over *the classes present in the ground-truth label* of the frame. Values
//! in the paper's tables are percentages; [`MeanIou::percent`] matches that
//! convention.

use crate::Result;
use st_tensor::TensorError;

/// A `C × C` confusion matrix accumulated over one or more frames.
///
/// Rows are ground-truth classes, columns are predicted classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// An empty confusion matrix over `classes` classes.
    pub fn new(classes: usize) -> Self {
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Accumulate a predicted/label pair of equal-length label maps.
    pub fn update(&mut self, pred: &[usize], label: &[usize]) -> Result<()> {
        if pred.len() != label.len() {
            return Err(TensorError::LengthMismatch {
                expected: label.len(),
                actual: pred.len(),
            });
        }
        for (&p, &l) in pred.iter().zip(label.iter()) {
            if p >= self.classes || l >= self.classes {
                return Err(TensorError::IndexOutOfBounds {
                    index: p.max(l),
                    len: self.classes,
                });
            }
            self.counts[l * self.classes + p] += 1;
        }
        Ok(())
    }

    /// Raw count for `(label, pred)`.
    pub fn count(&self, label: usize, pred: usize) -> u64 {
        self.counts[label * self.classes + pred]
    }

    /// Total number of accumulated pixels.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-class IoU. Classes absent from both prediction and label yield
    /// `None`.
    pub fn per_class_iou(&self) -> Vec<Option<f64>> {
        (0..self.classes)
            .map(|c| {
                let tp = self.count(c, c);
                let label_total: u64 = (0..self.classes).map(|p| self.count(c, p)).sum();
                let pred_total: u64 = (0..self.classes).map(|l| self.count(l, c)).sum();
                let union = label_total + pred_total - tp;
                if union == 0 {
                    None
                } else {
                    Some(tp as f64 / union as f64)
                }
            })
            .collect()
    }

    /// Mean IoU over classes *present in the label* (the paper's convention),
    /// or over all non-empty classes when `present_only` is false.
    pub fn mean_iou(&self, present_only: bool) -> MeanIou {
        let ious = self.per_class_iou();
        let mut acc = 0.0f64;
        let mut n = 0usize;
        for (c, class_iou) in ious.iter().enumerate() {
            let label_total: u64 = (0..self.classes).map(|p| self.count(c, p)).sum();
            let include = if present_only {
                label_total > 0
            } else {
                class_iou.is_some()
            };
            if include {
                if let Some(iou) = *class_iou {
                    acc += iou;
                    n += 1;
                } else {
                    // present_only with a label class never predicted and
                    // never labelled cannot happen (label_total > 0 implies
                    // union > 0), so this branch is unreachable; keep the
                    // count consistent anyway.
                    n += 1;
                }
            }
        }
        MeanIou {
            value: if n == 0 { 0.0 } else { acc / n as f64 },
            classes_counted: n,
        }
    }

    /// Overall pixel accuracy.
    pub fn pixel_accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Merge another confusion matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) -> Result<()> {
        if self.classes != other.classes {
            return Err(TensorError::ShapeMismatch {
                op: "confusion_merge",
                lhs: vec![self.classes],
                rhs: vec![other.classes],
            });
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        Ok(())
    }
}

/// A mean-IoU value together with how many classes entered the average.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanIou {
    /// Mean IoU in `[0, 1]`.
    pub value: f64,
    /// Number of classes included in the mean.
    pub classes_counted: usize,
}

impl MeanIou {
    /// Mean IoU as a percentage, the unit used in the paper's tables.
    pub fn percent(&self) -> f64 {
        self.value * 100.0
    }
}

/// Convenience: mean IoU of a single prediction/label pair.
pub fn miou(pred: &[usize], label: &[usize], classes: usize) -> Result<MeanIou> {
    let mut cm = ConfusionMatrix::new(classes);
    cm.update(pred, label)?;
    Ok(cm.mean_iou(true))
}

/// Running average of per-frame mean-IoU values (the paper averages the mIoU
/// of every frame over a video stream).
#[derive(Debug, Clone, Default)]
pub struct MiouAccumulator {
    sum: f64,
    count: usize,
}

impl MiouAccumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one frame's mean IoU.
    pub fn push(&mut self, value: MeanIou) {
        self.sum += value.value;
        self.count += 1;
    }

    /// Average over frames pushed so far (0 when empty).
    pub fn average(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Average as a percentage.
    pub fn average_percent(&self) -> f64 {
        self.average() * 100.0
    }

    /// Number of frames accumulated.
    pub fn frames(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_one() {
        let labels = vec![0, 1, 2, 1, 0];
        let m = miou(&labels, &labels, 3).unwrap();
        assert!((m.value - 1.0).abs() < 1e-12);
        assert_eq!(m.classes_counted, 3);
        assert_eq!(m.percent(), 100.0);
    }

    #[test]
    fn disjoint_prediction_scores_zero() {
        let label = vec![0, 0, 0, 0];
        let pred = vec![1, 1, 1, 1];
        let m = miou(&pred, &label, 2).unwrap();
        assert_eq!(m.value, 0.0);
    }

    #[test]
    fn half_overlap_iou() {
        // label: class 1 on pixels 0..2 ; pred: class 1 on pixels 1..3
        // intersection 1 pixel, union 3 pixels -> IoU 1/3 for class 1.
        // class 0: label pixels {2,3}, pred pixels {0,3}: inter 1, union 3 -> 1/3.
        let label = vec![1, 1, 0, 0];
        let pred = vec![0, 1, 1, 0];
        let m = miou(&pred, &label, 2).unwrap();
        assert!((m.value - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn absent_classes_excluded_from_mean() {
        // Only class 0 present in the label; a spurious prediction of class 2
        // must not drag a zero-IoU class 2 into the (present-only) mean.
        let label = vec![0, 0, 0, 0];
        let pred = vec![0, 0, 0, 2];
        let cm = {
            let mut cm = ConfusionMatrix::new(3);
            cm.update(&pred, &label).unwrap();
            cm
        };
        let present = cm.mean_iou(true);
        assert_eq!(present.classes_counted, 1);
        assert!((present.value - 0.75).abs() < 1e-9);
        let all = cm.mean_iou(false);
        assert_eq!(all.classes_counted, 2);
        assert!(all.value < present.value);
    }

    #[test]
    fn update_validates_input() {
        let mut cm = ConfusionMatrix::new(2);
        assert!(cm.update(&[0, 1], &[0]).is_err());
        assert!(cm.update(&[0, 2], &[0, 1]).is_err());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ConfusionMatrix::new(2);
        a.update(&[0, 1], &[0, 1]).unwrap();
        let mut b = ConfusionMatrix::new(2);
        b.update(&[1, 1], &[0, 1]).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(0, 1), 1);
        let c = ConfusionMatrix::new(3);
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn pixel_accuracy_matches_counts() {
        let mut cm = ConfusionMatrix::new(2);
        cm.update(&[0, 1, 1, 0], &[0, 1, 0, 0]).unwrap();
        assert!((cm.pixel_accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(ConfusionMatrix::new(2).pixel_accuracy(), 0.0);
    }

    #[test]
    fn accumulator_averages_frames() {
        let mut acc = MiouAccumulator::new();
        assert_eq!(acc.average(), 0.0);
        acc.push(MeanIou {
            value: 0.5,
            classes_counted: 2,
        });
        acc.push(MeanIou {
            value: 1.0,
            classes_counted: 3,
        });
        assert!((acc.average() - 0.75).abs() < 1e-12);
        assert_eq!(acc.frames(), 2);
        assert!((acc.average_percent() - 75.0).abs() < 1e-9);
    }
}
