//! Content-addressed, refcounted weight-chunk store.
//!
//! The pretrained student template and every per-stream checkpoint decompose
//! into per-entry *chunks* (the [`WeightSnapshot::entry_chunks`] encoding:
//! `u32 numel` + little-endian `f32` values). Chunks are stored once, keyed
//! by FNV-1a 64 content hash and reference-counted, so the frozen front-end
//! a partial-distillation session never touches costs its bytes **once**
//! across every stream, every replica, and every update — re-publishing an
//! unchanged stage is a hash lookup, not a copy.
//!
//! This generalizes the failover `ReplicaStore`'s blob cache (PR 9) into the
//! primary representation: checkpoints are [`CheckpointRef`]s (name + hash
//! per entry) and the pool's replica slots hold refs, not bytes. The same
//! hashes drive the delta wire protocol in [`crate::delta`].
//!
//! Convention (enforced by `st-lint`): chunk hashing is *confined* to this
//! module and [`crate::delta`]. Hot paths (shard batch loops, reactor
//! handlers, kernels) must not hash weight bytes inline — they go through
//! [`WeightStore::intern`], which hashes once per publish, off the
//! per-frame fast path.

use crate::snapshot::{SnapshotScope, WeightSnapshot};
use crate::Result;
use bytes::Bytes;
use std::collections::HashMap;
use std::sync::Mutex;

/// FNV-1a 64 content hash of one checkpoint chunk — the store's content
/// address. Weight tensors are dense `f32` payloads; 64 bits of FNV over
/// them is collision-safe at pool scale and needs no dependency.
pub fn chunk_hash(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Combine per-entry chunk hashes into one checkpoint identity, folding the
/// entry order in. This is the `base` a [`crate::delta::WeightDelta`] names.
pub fn combine_hashes<'a>(hashes: impl Iterator<Item = &'a u64>) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for hash in hashes {
        for byte in hash.to_le_bytes() {
            acc ^= byte as u64;
            acc = acc.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    acc
}

/// A checkpoint held *by reference* into a [`WeightStore`]: one
/// `(entry name, content hash)` pair per snapshot entry, in capture order.
///
/// A `CheckpointRef` owns one reference count on each of its chunks; it must
/// be given back via [`WeightStore::release`] (or consumed by
/// [`WeightStore::resolve_release`]) when the checkpoint it names is
/// replaced or dropped. `Clone` is deliberately not implemented — duplicate
/// a ref only through [`WeightStore::retain`], which accounts for it.
#[derive(Debug, PartialEq, Eq)]
pub struct CheckpointRef {
    chunks: Vec<(String, u64)>,
    scope: SnapshotScope,
}

impl CheckpointRef {
    /// `(entry name, chunk hash)` per entry, in capture order.
    pub fn chunks(&self) -> &[(String, u64)] {
        &self.chunks
    }

    /// Scope of the snapshot this ref was interned from.
    pub fn scope(&self) -> SnapshotScope {
        self.scope
    }

    /// The checkpoint's combined identity hash (order-sensitive fold of the
    /// per-entry chunk hashes).
    pub fn combined(&self) -> u64 {
        combine_hashes(self.chunks.iter().map(|(_, h)| h))
    }
}

/// Byte accounting for one [`WeightStore::intern`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Bytes the store had to materialize (chunks it had never seen).
    pub new_bytes: usize,
    /// Bytes deduplicated against chunks already resident.
    pub shared_bytes: usize,
}

/// The shared content-addressed chunk store.
///
/// Thread-safe: a single blob map behind a mutex, touched only at
/// checkpoint-publication granularity (per accepted update / per session
/// lifecycle event), never per frame.
#[derive(Debug, Default)]
pub struct WeightStore {
    /// Content hash → (reference count, chunk bytes).
    blobs: Mutex<HashMap<u64, (usize, Bytes)>>,
}

/// Lock helper: the store's invariants hold at every release point, so a
/// poisoned mutex (a panicking peer) still leaves a usable map.
fn locked<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl WeightStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern every entry of `snapshot`, returning a [`CheckpointRef`]
    /// holding one reference per chunk plus the new-vs-shared byte split.
    pub fn intern(&self, snapshot: &WeightSnapshot) -> (CheckpointRef, InternStats) {
        use std::collections::hash_map::Entry;
        let mut stats = InternStats::default();
        let mut chunks = Vec::new();
        let mut blobs = locked(&self.blobs);
        for (name, bytes) in snapshot.entry_chunks() {
            let hash = chunk_hash(&bytes);
            match blobs.entry(hash) {
                Entry::Occupied(mut occupied) => {
                    occupied.get_mut().0 += 1;
                    stats.shared_bytes += bytes.len();
                }
                Entry::Vacant(vacant) => {
                    stats.new_bytes += bytes.len();
                    vacant.insert((1, bytes));
                }
            }
            chunks.push((name.to_string(), hash));
        }
        (
            CheckpointRef {
                chunks,
                scope: snapshot.scope(),
            },
            stats,
        )
    }

    /// Duplicate a ref, incrementing every chunk's reference count. Panics
    /// if `r` names a chunk the store does not hold (a use-after-release).
    pub fn retain(&self, r: &CheckpointRef) -> CheckpointRef {
        let mut blobs = locked(&self.blobs);
        for (_name, hash) in &r.chunks {
            let entry = blobs
                .get_mut(hash)
                .expect("retain of a chunk not resident in the weight store");
            entry.0 += 1;
        }
        CheckpointRef {
            chunks: r.chunks.clone(),
            scope: r.scope,
        }
    }

    /// Give back a ref: decrement every chunk's reference count, freeing
    /// chunks that reach zero.
    pub fn release(&self, r: CheckpointRef) {
        let mut blobs = locked(&self.blobs);
        for (_name, hash) in &r.chunks {
            if let Some(entry) = blobs.get_mut(hash) {
                entry.0 -= 1;
                if entry.0 == 0 {
                    blobs.remove(hash);
                }
            }
        }
    }

    /// Resolve a ref to its chunk bytes without touching reference counts.
    /// Returns `None` if any chunk is missing (the ref was released).
    pub fn resolve(&self, r: &CheckpointRef) -> Option<Vec<(String, Bytes)>> {
        let blobs = locked(&self.blobs);
        let mut chunks = Vec::with_capacity(r.chunks.len());
        for (name, hash) in &r.chunks {
            chunks.push((name.clone(), blobs.get(hash)?.1.clone()));
        }
        Some(chunks)
    }

    /// Resolve a ref to a full [`WeightSnapshot`] and consume (release) it
    /// in one lock acquisition — the failover-restore path.
    pub fn resolve_release(&self, r: CheckpointRef) -> Result<WeightSnapshot> {
        let chunks = {
            let mut blobs = locked(&self.blobs);
            let mut chunks = Vec::with_capacity(r.chunks.len());
            for (name, hash) in &r.chunks {
                let Some(entry) = blobs.get_mut(hash) else {
                    return Err(st_tensor::TensorError::InvalidArgument(
                        "weight-store chunk missing for resolve".into(),
                    ));
                };
                chunks.push((name.clone(), entry.1.clone()));
                entry.0 -= 1;
                if entry.0 == 0 {
                    blobs.remove(hash);
                }
            }
            chunks
        };
        WeightSnapshot::from_entry_chunks(chunks, r.scope)
    }

    /// Number of distinct chunks resident.
    pub fn chunk_count(&self) -> usize {
        locked(&self.blobs).len()
    }

    /// Total bytes resident (each distinct chunk counted once).
    pub fn resident_bytes(&self) -> usize {
        locked(&self.blobs).values().map(|(_, b)| b.len()).sum()
    }

    /// Check the store's reference counts against the set of live refs.
    ///
    /// Every chunk's stored count must equal the number of live refs naming
    /// it, every named chunk must be resident, and no resident chunk may be
    /// unnamed. Returns a description of the first violation — the invariant
    /// the refcount property test (and its skipped-decref mutant) pins down.
    pub fn verify_refcounts(&self, live: &[&CheckpointRef]) -> std::result::Result<(), String> {
        let mut expected: HashMap<u64, usize> = HashMap::new();
        for r in live {
            for (_name, hash) in &r.chunks {
                *expected.entry(*hash).or_insert(0) += 1;
            }
        }
        let blobs = locked(&self.blobs);
        for (hash, count) in &expected {
            match blobs.get(hash) {
                None => {
                    return Err(format!(
                        "chunk {hash:#018x} named by a live ref but freed (premature free)"
                    ))
                }
                Some((actual, _)) if actual != count => {
                    return Err(format!(
                        "chunk {hash:#018x} refcount {actual} != {count} live refs"
                    ))
                }
                Some(_) => {}
            }
        }
        for (hash, (count, _)) in blobs.iter() {
            if !expected.contains_key(hash) {
                return Err(format!(
                    "chunk {hash:#018x} resident with refcount {count} but no live ref (leak)"
                ));
            }
        }
        Ok(())
    }

    /// Test/mutant hook: decrement chunk counts of `r` for all but the last
    /// `skip` chunks, then drop the ref *without* accounting for the rest —
    /// a deliberately buggy release the refcount invariant must catch.
    pub fn release_skipping(&self, r: CheckpointRef, skip: usize) {
        let mut blobs = locked(&self.blobs);
        let keep = r.chunks.len().saturating_sub(skip);
        for (_name, hash) in r.chunks.iter().take(keep) {
            if let Some(entry) = blobs.get_mut(hash) {
                entry.0 -= 1;
                if entry.0 == 0 {
                    blobs.remove(hash);
                }
            }
        }
    }
}

/// Per-session memory split of a copy-on-write student against the shard
/// template: tensor storages shared with the template (frozen stages the
/// optimizer never wrote) versus privately materialized ones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionMemory {
    /// Bytes of parameter/buffer storage shared with the template.
    pub shared_bytes: usize,
    /// Bytes of storage private to the session (written at least once).
    pub private_bytes: usize,
}

impl SessionMemory {
    /// Resident cost of the session: only its private bytes — the shared
    /// bytes are the template's, paid once per shard.
    pub fn resident_bytes(&self) -> usize {
        self.private_bytes
    }

    /// Measure a session's parameter + buffer storage against the template
    /// it was cloned from, by storage identity (`Tensor::shares_storage`
    /// pointer equality, matched by entry name).
    pub fn measure(
        session: &mut crate::student::StudentNet,
        template: &mut crate::student::StudentNet,
    ) -> SessionMemory {
        let mut template_ids: HashMap<String, usize> = HashMap::new();
        let mut collect = |name: &str, t: &Tensor| {
            template_ids.insert(name.to_string(), t.storage_id());
        };
        let mut v = |p: &mut crate::param::Param, _t: bool| collect(&p.name, &p.value);
        template.visit_params(&mut v);
        let mut b = |name: &str, t: &mut Tensor, _tr: bool| collect(name, t);
        template.visit_buffers(&mut b);

        let mut memory = SessionMemory::default();
        let mut tally = |name: &str, t: &Tensor| {
            if template_ids.get(name) == Some(&t.storage_id()) {
                memory.shared_bytes += t.storage_bytes();
            } else {
                memory.private_bytes += t.storage_bytes();
            }
        };
        let mut v = |p: &mut crate::param::Param, _t: bool| tally(&p.name, &p.value);
        session.visit_params(&mut v);
        let mut b = |name: &str, t: &mut Tensor, _tr: bool| tally(name, t);
        session.visit_buffers(&mut b);
        memory
    }
}

use st_tensor::Tensor;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::student::{FreezePoint, StudentConfig, StudentNet};

    fn snap(seed: u64, scope: SnapshotScope) -> WeightSnapshot {
        let mut net = StudentNet::new(StudentConfig {
            seed,
            ..StudentConfig::tiny()
        })
        .unwrap();
        net.freeze = FreezePoint::paper_partial();
        WeightSnapshot::capture(&mut net, scope)
    }

    #[test]
    fn intern_twice_shares_every_byte() {
        let store = WeightStore::new();
        let snapshot = snap(1, SnapshotScope::Full);
        let (a, first) = store.intern(&snapshot);
        assert!(first.new_bytes > 0);
        // (first.shared_bytes may be non-zero: identical zero-initialized
        // entries dedup even within one snapshot.)
        let (b, second) = store.intern(&snapshot);
        assert_eq!(second.new_bytes, 0);
        assert_eq!(
            second.shared_bytes,
            first.new_bytes + first.shared_bytes,
            "re-interning shares every byte"
        );
        assert_eq!(a.combined(), b.combined());
        store.verify_refcounts(&[&a, &b]).unwrap();
        store.release(a);
        store.release(b);
        assert_eq!(store.chunk_count(), 0);
        assert_eq!(store.resident_bytes(), 0);
    }

    #[test]
    fn resolve_release_round_trips_bit_identical() {
        let store = WeightStore::new();
        let snapshot = snap(2, SnapshotScope::TrainableOnly);
        let (r, _) = store.intern(&snapshot);
        let back = store.resolve_release(r).unwrap();
        assert_eq!(back.scope(), snapshot.scope());
        assert_eq!(back.encode(), snapshot.encode());
        assert_eq!(store.chunk_count(), 0);
    }

    #[test]
    fn retain_and_release_balance() {
        let store = WeightStore::new();
        let snapshot = snap(3, SnapshotScope::Full);
        let (a, _) = store.intern(&snapshot);
        let b = store.retain(&a);
        store.release(a);
        assert!(store.resolve(&b).is_some(), "b still holds the chunks");
        store.verify_refcounts(&[&b]).unwrap();
        store.release(b);
        assert_eq!(store.resident_bytes(), 0);
    }

    #[test]
    fn skipped_decref_is_caught() {
        let store = WeightStore::new();
        let snapshot = snap(4, SnapshotScope::Full);
        let (a, _) = store.intern(&snapshot);
        let (b, _) = store.intern(&snapshot);
        store.release_skipping(b, 1);
        let err = store.verify_refcounts(&[&a]).unwrap_err();
        assert!(err.contains("refcount"), "unexpected violation: {err}");
    }
}
