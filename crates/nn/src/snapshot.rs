//! Weight snapshots, partial diffs, and their byte encodings.
//!
//! Partial distillation only changes the unfrozen back-end of the student, so
//! the server only has to ship that slice of the weights back to the client
//! (§4.2: "it suffices to communicate only the weights that changed"). A
//! [`WeightSnapshot`] captures either the full parameter set or only the
//! trainable subset — plus the batch-norm running statistics of the in-scope
//! stages, which training forwards update and eval-mode serving depends on.
//! [`WeightSnapshot::encode`] produces the wire format measured as the
//! "To Client" payload of Table 4 (the paper counts parameters only; the
//! running statistics add `2 * channels` floats per in-scope batch norm).
//!
//! The encoding is a simple deterministic framing:
//! `u32 entry-count`, then per entry `u32 name-length`, name bytes,
//! `u32 value-count`, and the values as little-endian `f32`s.

use crate::param::Param;
use crate::student::StudentNet;
use crate::Result;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use st_tensor::{Shape, Tensor, TensorError};

/// Which parameters a snapshot contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotScope {
    /// Every parameter of the student.
    Full,
    /// Only the parameters trainable under the student's current freeze
    /// point (the partial-distillation payload).
    TrainableOnly,
}

/// A named set of parameter values captured from a student network.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightSnapshot {
    entries: Vec<(String, Tensor)>,
    scope: SnapshotScope,
}

impl WeightSnapshot {
    /// Capture a snapshot of `net` with the given scope.
    ///
    /// Besides the parameters, the snapshot carries the batch-norm *running
    /// statistics* of the in-scope stages: they are updated by every training
    /// forward pass, the serving client's inference mode depends on them, and
    /// restoring a snapshot that omitted them would leave the student
    /// behaving differently from the state the snapshot was taken in.
    pub fn capture(net: &mut StudentNet, scope: SnapshotScope) -> Self {
        let include = |trainable: bool| match scope {
            SnapshotScope::Full => true,
            SnapshotScope::TrainableOnly => trainable,
        };
        let mut entries = Vec::new();
        let mut v = |p: &mut Param, trainable: bool| {
            if include(trainable) {
                entries.push((p.name.clone(), p.value.clone()));
            }
        };
        net.visit_params(&mut v);
        let mut b = |name: &str, value: &mut Tensor, trainable: bool| {
            if include(trainable) {
                entries.push((name.to_string(), value.clone()));
            }
        };
        net.visit_buffers(&mut b);
        WeightSnapshot { entries, scope }
    }

    /// The scope this snapshot was captured with.
    pub fn scope(&self) -> SnapshotScope {
        self.scope
    }

    /// Number of entries in the snapshot (parameter tensors plus batch-norm
    /// running-stat buffers).
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Total number of scalar values.
    pub fn scalar_count(&self) -> usize {
        self.entries.iter().map(|(_, t)| t.numel()).sum()
    }

    /// Size of the encoded snapshot in bytes.
    pub fn encoded_size(&self) -> usize {
        4 + self
            .entries
            .iter()
            .map(|(name, t)| 4 + name.len() + 4 + 4 * t.numel())
            .sum::<usize>()
    }

    /// Apply the snapshot's values onto `net`, matching entries by name.
    ///
    /// Entries cover parameters and batch-norm running statistics; anything
    /// not present in the snapshot is left untouched (this is how the client
    /// applies a partial update). Returns the number of entries applied;
    /// errors if a named entry exists but has a different element count.
    pub fn apply(&self, net: &mut StudentNet) -> Result<usize> {
        let mut applied = 0usize;
        let mut error: Option<TensorError> = None;
        {
            let entries = &self.entries;
            // Decoded snapshots carry flat tensors; accept any layout with
            // the right element count and restore the target's shape.
            let mut restore = |name: &str, target: &mut Tensor| {
                if error.is_some() {
                    return;
                }
                if let Some((_, value)) = entries.iter().find(|(n, _)| n == name) {
                    if value.numel() != target.numel() {
                        error = Some(TensorError::ShapeMismatch {
                            op: "snapshot_apply",
                            lhs: value.shape().dims().to_vec(),
                            rhs: target.shape().dims().to_vec(),
                        });
                        return;
                    }
                    match value.reshape(target.shape().clone()) {
                        Ok(v) => {
                            *target = v;
                            applied += 1;
                        }
                        Err(e) => error = Some(e),
                    }
                }
            };
            let mut v = |p: &mut Param, _trainable: bool| restore(&p.name, &mut p.value);
            net.visit_params(&mut v);
            let mut b = |name: &str, value: &mut Tensor, _trainable: bool| restore(name, value);
            net.visit_buffers(&mut b);
        }
        if let Some(e) = error {
            return Err(e);
        }
        Ok(applied)
    }

    /// L2 distance between two snapshots taken over the same parameter set.
    pub fn distance(&self, other: &WeightSnapshot) -> Result<f32> {
        if self.entries.len() != other.entries.len() {
            return Err(TensorError::LengthMismatch {
                expected: self.entries.len(),
                actual: other.entries.len(),
            });
        }
        let mut acc = 0.0f32;
        for ((na, ta), (nb, tb)) in self.entries.iter().zip(other.entries.iter()) {
            if na != nb {
                return Err(TensorError::InvalidArgument(format!(
                    "snapshot entries differ: {na} vs {nb}"
                )));
            }
            acc += ta.sub(tb)?.sq_norm();
        }
        Ok(acc.sqrt())
    }

    /// Encode to the wire format described in the module docs.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_size());
        buf.put_u32_le(self.entries.len() as u32);
        for (name, tensor) in &self.entries {
            buf.put_u32_le(name.len() as u32);
            buf.put_slice(name.as_bytes());
            buf.put_u32_le(tensor.numel() as u32);
            for &v in tensor.data() {
                buf.put_f32_le(v);
            }
        }
        buf.freeze()
    }

    /// Split the snapshot into per-entry encoded chunks: one
    /// `(name, bytes)` pair per entry, where the bytes are the entry's
    /// `u32 value-count` plus little-endian `f32` values — the same framing
    /// [`WeightSnapshot::encode`] uses per entry, minus the name prefix.
    ///
    /// This is the unit of content addressing for checkpoint replication: a
    /// frozen partial-distillation stage re-encodes to byte-identical
    /// chunks update after update, so a hash-keyed store shares them
    /// instead of recopying.
    pub fn entry_chunks(&self) -> Vec<(&str, Bytes)> {
        self.entries
            .iter()
            .map(|(name, tensor)| {
                let mut buf = BytesMut::with_capacity(4 + 4 * tensor.numel());
                buf.put_u32_le(tensor.numel() as u32);
                for &v in tensor.data() {
                    buf.put_f32_le(v);
                }
                (name.as_str(), buf.freeze())
            })
            .collect()
    }

    /// Rebuild a snapshot from per-entry chunks previously produced by
    /// [`WeightSnapshot::entry_chunks`], in the same entry order.
    pub fn from_entry_chunks(chunks: Vec<(String, Bytes)>, scope: SnapshotScope) -> Result<Self> {
        let mut entries = Vec::with_capacity(chunks.len());
        for (name, bytes) in chunks {
            let mut buf = bytes;
            if buf.remaining() < 4 {
                return Err(TensorError::InvalidArgument(
                    "snapshot chunk truncated (value len)".into(),
                ));
            }
            let numel = buf.get_u32_le() as usize;
            if buf.remaining() < 4 * numel {
                return Err(TensorError::InvalidArgument(
                    "snapshot chunk truncated (values)".into(),
                ));
            }
            let mut values = Vec::with_capacity(numel);
            for _ in 0..numel {
                values.push(buf.get_f32_le());
            }
            entries.push((name, Tensor::from_vec(Shape::vector(numel), values)?));
        }
        Ok(WeightSnapshot { entries, scope })
    }

    /// Decode a snapshot previously produced by [`WeightSnapshot::encode`].
    ///
    /// Tensors are decoded as flat vectors; [`WeightSnapshot::apply`] matches
    /// them by name and the receiving network re-validates shapes by element
    /// count, so the flat shape is sufficient for transport.
    pub fn decode(bytes: &Bytes, scope: SnapshotScope) -> Result<Self> {
        let mut buf = bytes.clone();
        if buf.remaining() < 4 {
            return Err(TensorError::InvalidArgument(
                "snapshot truncated (header)".into(),
            ));
        }
        let count = buf.get_u32_le() as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < 4 {
                return Err(TensorError::InvalidArgument(
                    "snapshot truncated (name len)".into(),
                ));
            }
            let name_len = buf.get_u32_le() as usize;
            if buf.remaining() < name_len {
                return Err(TensorError::InvalidArgument(
                    "snapshot truncated (name)".into(),
                ));
            }
            let name_bytes = buf.copy_to_bytes(name_len);
            let name = String::from_utf8(name_bytes.to_vec())
                .map_err(|_| TensorError::InvalidArgument("snapshot name not UTF-8".into()))?;
            if buf.remaining() < 4 {
                return Err(TensorError::InvalidArgument(
                    "snapshot truncated (value len)".into(),
                ));
            }
            let numel = buf.get_u32_le() as usize;
            if buf.remaining() < 4 * numel {
                return Err(TensorError::InvalidArgument(
                    "snapshot truncated (values)".into(),
                ));
            }
            let mut values = Vec::with_capacity(numel);
            for _ in 0..numel {
                values.push(buf.get_f32_le());
            }
            entries.push((name, Tensor::from_vec(Shape::vector(numel), values)?));
        }
        Ok(WeightSnapshot { entries, scope })
    }
}

/// The cross-process wire encoding of a snapshot: a scope byte (0 = full,
/// 1 = trainable-only) followed by the u32-length-prefixed bytes of
/// [`WeightSnapshot::encode`] — the exact payload the in-process path
/// already ships inside `StudentUpdate`, made self-describing so a peer
/// process can decode it without out-of-band scope agreement.
impl st_net::Wire for WeightSnapshot {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self.scope {
            SnapshotScope::Full => 0,
            SnapshotScope::TrainableOnly => 1,
        });
        let body = self.encode();
        (body.len() as u32).encode_into(out);
        out.extend_from_slice(&body);
    }

    fn decode(input: &mut &[u8]) -> std::result::Result<Self, st_net::WireError> {
        let scope = match u8::decode(input)? {
            0 => SnapshotScope::Full,
            1 => SnapshotScope::TrainableOnly,
            tag => {
                return Err(st_net::WireError::UnknownVariant {
                    type_name: "SnapshotScope",
                    tag,
                })
            }
        };
        let len = u32::decode(input)? as usize;
        if input.len() < len {
            return Err(st_net::WireError::Truncated {
                needed: len,
                available: input.len(),
            });
        }
        let (body, rest) = input.split_at(len);
        *input = rest;
        WeightSnapshot::decode(&Bytes::from(body.to_vec()), scope).map_err(|_| {
            st_net::WireError::InvalidValue {
                what: "malformed weight-snapshot body",
            }
        })
    }

    fn encoded_len(&self) -> usize {
        1 + 4 + self.encoded_size()
    }
}

/// Byte sizes of the student payloads at a given scope — the quantities
/// behind Table 4 of the paper ("Data transmitted on each key frame").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PayloadSizes {
    /// Encoded size of a full-weight snapshot in bytes.
    pub full_bytes: usize,
    /// Encoded size of a trainable-only snapshot in bytes.
    pub partial_bytes: usize,
    /// Total parameter count.
    pub total_params: usize,
    /// Trainable parameter count.
    pub trainable_params: usize,
}

impl PayloadSizes {
    /// Measure the payload sizes of a student under its current freeze point.
    pub fn of(net: &mut StudentNet) -> Self {
        let full = WeightSnapshot::capture(net, SnapshotScope::Full);
        let partial = WeightSnapshot::capture(net, SnapshotScope::TrainableOnly);
        PayloadSizes {
            full_bytes: full.encoded_size(),
            partial_bytes: partial.encoded_size(),
            total_params: net.param_count(),
            trainable_params: net.trainable_param_count(),
        }
    }

    /// Fraction of parameters that are trainable (paper: 21.4 %).
    pub fn trainable_fraction(&self) -> f64 {
        if self.total_params == 0 {
            0.0
        } else {
            self.trainable_params as f64 / self.total_params as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::student::{FreezePoint, StudentConfig, StudentNet};
    use st_tensor::random;

    fn net() -> StudentNet {
        StudentNet::new(StudentConfig::tiny()).unwrap()
    }

    #[test]
    fn snapshot_wire_round_trip_is_bit_identical() {
        use st_net::Wire;
        let mut a = net();
        a.freeze = FreezePoint::paper_partial();
        for scope in [SnapshotScope::Full, SnapshotScope::TrainableOnly] {
            let snap = WeightSnapshot::capture(&mut a, scope);
            let encoded = Wire::encode(&snap);
            assert_eq!(encoded.len(), snap.encoded_len());
            let mut cursor = &encoded[..];
            let back = <WeightSnapshot as Wire>::decode(&mut cursor).unwrap();
            assert!(cursor.is_empty());
            assert_eq!(back.scope(), scope);
            assert_eq!(back.entry_count(), snap.entry_count());
            // Bit-identical f32s, and none of them NaN: re-encoding the
            // decoded snapshot reproduces the original bytes exactly.
            assert_eq!(Wire::encode(&back), encoded);
            for (_, tensor) in &back.entries {
                assert!(tensor.data().iter().all(|v| !v.is_nan()));
            }
        }
    }

    #[test]
    fn snapshot_wire_rejects_bad_scope_and_truncation() {
        use st_net::{Wire, WireError};
        let mut a = net();
        let snap = WeightSnapshot::capture(&mut a, SnapshotScope::Full);
        let encoded = Wire::encode(&snap);

        let mut bad_scope = encoded.clone();
        bad_scope[0] = 7;
        let err = <WeightSnapshot as Wire>::decode(&mut &bad_scope[..]).unwrap_err();
        assert!(matches!(err, WireError::UnknownVariant { tag: 7, .. }));

        let cut = &encoded[..encoded.len() - 3];
        let err = <WeightSnapshot as Wire>::decode(&mut &cut[..]).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }));
    }

    #[test]
    fn full_snapshot_round_trips_through_apply() {
        let mut a = net();
        let mut b = StudentNet::new(StudentConfig {
            seed: 99,
            ..StudentConfig::tiny()
        })
        .unwrap();
        let snap_a = WeightSnapshot::capture(&mut a, SnapshotScope::Full);
        let applied = snap_a.apply(&mut b).unwrap();
        assert_eq!(applied, snap_a.entry_count());
        // After applying, b's full snapshot equals a's.
        let snap_b = WeightSnapshot::capture(&mut b, SnapshotScope::Full);
        assert!(snap_a.distance(&snap_b).unwrap() < 1e-9);
    }

    #[test]
    fn partial_snapshot_is_smaller_and_leaves_front_untouched() {
        let mut a = net();
        a.freeze = FreezePoint::paper_partial();
        let sizes = PayloadSizes::of(&mut a);
        assert!(sizes.partial_bytes < sizes.full_bytes);
        assert!(sizes.trainable_fraction() < 1.0);
        assert!(sizes.trainable_fraction() > 0.0);

        // Apply a partial snapshot from a differently-initialised net: the
        // frozen front of the target must not change.
        let mut donor = StudentNet::new(StudentConfig {
            seed: 123,
            ..StudentConfig::tiny()
        })
        .unwrap();
        donor.freeze = FreezePoint::paper_partial();
        let partial = WeightSnapshot::capture(&mut donor, SnapshotScope::TrainableOnly);

        let mut target = net();
        target.freeze = FreezePoint::paper_partial();
        let front_before = WeightSnapshot::capture(&mut target, SnapshotScope::Full);
        partial.apply(&mut target).unwrap();
        let after_full = WeightSnapshot::capture(&mut target, SnapshotScope::Full);
        // Something changed overall...
        assert!(front_before.distance(&after_full).unwrap() > 0.0);
        // ...but every frozen parameter is identical.
        let mut changed_frozen = vec![];
        let mut reference = std::collections::HashMap::new();
        for (name, val) in &front_before.entries {
            reference.insert(name.clone(), val.clone());
        }
        let mut v = |p: &mut Param, trainable: bool| {
            if !trainable && reference[&p.name] != p.value {
                changed_frozen.push(p.name.clone());
            }
        };
        target.visit_params(&mut v);
        assert!(
            changed_frozen.is_empty(),
            "frozen params changed: {changed_frozen:?}"
        );
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut a = net();
        a.freeze = FreezePoint::paper_partial();
        let snap = WeightSnapshot::capture(&mut a, SnapshotScope::TrainableOnly);
        let encoded = snap.encode();
        assert_eq!(encoded.len(), snap.encoded_size());
        let decoded = WeightSnapshot::decode(&encoded, SnapshotScope::TrainableOnly).unwrap();
        assert_eq!(decoded.entry_count(), snap.entry_count());
        assert_eq!(decoded.scalar_count(), snap.scalar_count());
        // Applying the decoded snapshot reproduces the original values.
        let mut b = StudentNet::new(StudentConfig {
            seed: 7,
            ..StudentConfig::tiny()
        })
        .unwrap();
        b.freeze = FreezePoint::paper_partial();
        decoded.apply(&mut b).unwrap();
        let snap_b = WeightSnapshot::capture(&mut b, SnapshotScope::TrainableOnly);
        assert!(snap.distance(&snap_b).unwrap() < 1e-9);
    }

    #[test]
    fn decode_rejects_truncated_input() {
        let mut a = net();
        let snap = WeightSnapshot::capture(&mut a, SnapshotScope::Full);
        let encoded = snap.encode();
        let truncated = encoded.slice(0..encoded.len() / 2);
        assert!(WeightSnapshot::decode(&truncated, SnapshotScope::Full).is_err());
        let empty = Bytes::new();
        assert!(WeightSnapshot::decode(&empty, SnapshotScope::Full).is_err());
    }

    #[test]
    fn snapshot_restores_batchnorm_running_stats() {
        use st_tensor::random;
        // Capture, drift the running stats with training forwards, restore:
        // inference behavior must match the captured state again.
        let mut a = net();
        a.freeze = FreezePoint::paper_partial();
        // The classifier head is zero-initialised (all logits identically 0),
        // which would mask any drift; nudge it off zero first.
        let mut nudge = |p: &mut Param, _t: bool| {
            if p.name == "out3.weight" {
                for x in p.value.data_mut() {
                    *x = 0.05;
                }
            }
        };
        a.visit_params(&mut nudge);
        let snap = WeightSnapshot::capture(&mut a, SnapshotScope::TrainableOnly);
        assert!(snap.entry_count() > 0, "snapshot should contain entries");
        let x = random::uniform(st_tensor::Shape::nchw(1, 3, 16, 16), 0.0, 1.0, 31);
        let before = a.forward_inference(&x).unwrap();
        for _ in 0..5 {
            let y = random::uniform(st_tensor::Shape::nchw(1, 3, 16, 16), 0.3, 0.9, 32);
            a.forward_train(&y).unwrap();
        }
        let drifted = a.forward_inference(&x).unwrap();
        assert!(
            before.sub(&drifted).unwrap().norm() > 0.0,
            "training forwards should drift the trainable running stats"
        );
        snap.apply(&mut a).unwrap();
        let restored = a.forward_inference(&x).unwrap();
        assert!(
            before.sub(&restored).unwrap().norm() < 1e-6,
            "restoring the snapshot must restore inference behavior"
        );
    }

    #[test]
    fn distance_detects_changes() {
        let mut a = net();
        let snap1 = WeightSnapshot::capture(&mut a, SnapshotScope::Full);
        // Perturb one parameter.
        let noise = random::uniform(Shape::vector(1), 0.5, 1.0, 50).data()[0];
        let mut v = |p: &mut Param, _| {
            if p.name == "out3.bias" {
                p.value.data_mut()[0] += noise;
            }
        };
        a.visit_params(&mut v);
        let snap2 = WeightSnapshot::capture(&mut a, SnapshotScope::Full);
        let d = snap1.distance(&snap2).unwrap();
        assert!((d - noise).abs() < 1e-5);
    }

    #[test]
    fn payload_sizes_track_freeze_point() {
        let mut a = net();
        a.freeze = FreezePoint::None;
        let all = PayloadSizes::of(&mut a);
        assert_eq!(all.trainable_params, all.total_params);
        a.freeze = FreezePoint::paper_partial();
        let partial = PayloadSizes::of(&mut a);
        assert!(partial.trainable_params < partial.total_params);
        assert_eq!(partial.total_params, all.total_params);
    }
}
