//! Named trainable parameters and traversal utilities.

use st_tensor::Tensor;

/// A single trainable parameter: its value and its accumulated gradient.
///
/// Gradients are accumulated by the layer backward passes and consumed (and
/// cleared) by the optimizer. The `name` uniquely identifies the parameter
/// within a network (e.g. `"sb5.conv33.weight"`) and is what the snapshot /
/// diff machinery keys on.
#[derive(Debug, Clone)]
pub struct Param {
    /// Unique name within the owning network.
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Create a parameter with a zeroed gradient buffer.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param {
            name: name.into(),
            value,
            grad,
        }
    }

    /// Number of scalar elements in the parameter.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Reset the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.zero_();
    }
}

/// Visitor over a network's parameters.
///
/// Layers call the visitor once per parameter in a *stable, deterministic
/// order*; optimizers rely on that order to match their per-parameter state
/// (Adam moments) across steps.
pub trait ParamVisitor {
    /// Visit one parameter mutably. `trainable` reflects the network's
    /// current freeze configuration for the stage that owns the parameter.
    fn visit(&mut self, param: &mut Param, trainable: bool);
}

impl<F: FnMut(&mut Param, bool)> ParamVisitor for F {
    fn visit(&mut self, param: &mut Param, trainable: bool) {
        self(param, trainable)
    }
}

/// Count parameters reported by a visit function.
pub fn count_params(mut visit_all: impl FnMut(&mut dyn ParamVisitor)) -> (usize, usize) {
    let mut total = 0usize;
    let mut trainable = 0usize;
    let mut counter = |p: &mut Param, t: bool| {
        total += p.numel();
        if t {
            trainable += p.numel();
        }
    };
    visit_all(&mut counter);
    (total, trainable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_tensor::Shape;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new("w", Tensor::ones(Shape::matrix(2, 3)));
        assert_eq!(p.numel(), 6);
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.name, "w");
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new("w", Tensor::ones(Shape::vector(3)));
        p.grad = Tensor::full(Shape::vector(3), 2.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn count_params_split() {
        let mut a = Param::new("a", Tensor::zeros(Shape::vector(10)));
        let mut b = Param::new("b", Tensor::zeros(Shape::vector(5)));
        let (total, trainable) = count_params(|v| {
            v.visit(&mut a, false);
            v.visit(&mut b, true);
        });
        assert_eq!(total, 15);
        assert_eq!(trainable, 5);
    }
}
