//! # st-nn
//!
//! Neural-network substrate for the ShadowTutor reproduction: layers with
//! explicit forward/backward passes, the paper's student architecture
//! (Fig. 3), optimizers, segmentation losses, metrics, and the parameter
//! snapshot / partial-diff machinery that partial distillation relies on.
//!
//! The design is deliberately *not* a tape-based autograd: every layer owns
//! its parameters, its parameter gradients, and whatever forward-pass caches
//! its backward pass needs. The [`student::StudentNet`] wires the layers
//! together exactly as Fig. 3b of the paper does (two stem convolutions, six
//! student blocks with two skip concatenations, a three-convolution head) and
//! implements *partial backward*: gradient computation stops at a configurable
//! [`student::FreezePoint`], which is the mechanism behind the paper's partial
//! distillation (§4.2).
//!
//! Modules:
//!
//! * [`param`] — a named parameter (value + gradient) and parameter visitors.
//! * [`layers`] — convolution, batch-norm, ReLU building blocks.
//! * [`block`] — the student block of Fig. 3a (BN → 3×3 → 3×1 → 1×3 → 1×1 + residual).
//! * [`student`] — the full student network of Fig. 3b with partial backward.
//! * [`optim`] — SGD and Adam (the paper distills with Adam, lr = 0.01).
//! * [`loss`] — pixel-weighted cross-entropy (LVS ×5 object weighting, §5.2).
//! * [`metrics`] — confusion matrix, per-class IoU and mean IoU (Eq. 1).
//! * [`snapshot`] — full and partial weight snapshots, diffs, byte encoding
//!   (these byte sizes drive the network-traffic model, Table 4).
//! * [`store`] — the content-addressed, refcounted chunk store that holds
//!   the pretrained template once and every checkpoint by reference, plus
//!   copy-on-write session memory accounting.
//! * [`delta`] — checkpoint digests and the sparse delta encoding of
//!   server→client weight updates (full snapshots remain the fallback).

pub mod block;
pub mod delta;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod optim;
pub mod param;
pub mod snapshot;
pub mod store;
pub mod student;

pub use delta::{CheckpointDigest, WeightDelta, WeightPayload};
pub use param::{Param, ParamVisitor};
pub use store::{CheckpointRef, InternStats, SessionMemory, WeightStore};
pub use student::{FreezePoint, Stage, StudentConfig, StudentNet};

/// Result alias re-using the tensor error type.
pub type Result<T> = st_tensor::Result<T>;
