//! The student block of Fig. 3a.
//!
//! One block is: BatchNorm → Conv 3×3 (optionally strided) → Conv 3×1 →
//! Conv 1×3 → Conv 1×1, with a residual connection from the block input to
//! the block output. ReLU activations follow the batch-norm and each of the
//! first three convolutions. When the block changes channel count or spatial
//! resolution the residual passes through a 1×1 projection convolution so the
//! shapes line up (the standard ResNet-style shortcut treatment).

use crate::layers::{BatchNorm2d, Conv2d, Relu};
use crate::param::ParamVisitor;
use crate::Result;
use st_tensor::conv::Conv2dSpec;
use st_tensor::Tensor;

/// A residual student block (Fig. 3a of the paper).
#[derive(Debug, Clone)]
pub struct StudentBlock {
    /// Input channel count.
    pub in_channels: usize,
    /// Output channel count.
    pub out_channels: usize,
    /// Spatial stride applied by the 3×3 convolution (and projection).
    pub stride: usize,
    bn: BatchNorm2d,
    relu_bn: Relu,
    conv33: Conv2d,
    relu33: Relu,
    conv31: Conv2d,
    relu31: Relu,
    conv13: Conv2d,
    relu13: Relu,
    conv11: Conv2d,
    proj: Option<Conv2d>,
    cache_block_input: Option<Tensor>,
}

impl StudentBlock {
    /// Create a block mapping `in_channels` to `out_channels` at `stride`.
    ///
    /// The three middle convolutions all use `out_channels` as their width.
    pub fn new(
        name: &str,
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        seed: u64,
    ) -> Result<Self> {
        let conv33 = Conv2d::new(
            &format!("{name}.conv33"),
            Conv2dSpec::square(in_channels, out_channels, 3, stride),
            seed.wrapping_mul(31).wrapping_add(1),
        )?;
        let conv31 = Conv2d::new(
            &format!("{name}.conv31"),
            Conv2dSpec::rect(out_channels, out_channels, 3, 1),
            seed.wrapping_mul(31).wrapping_add(2),
        )?;
        let conv13 = Conv2d::new(
            &format!("{name}.conv13"),
            Conv2dSpec::rect(out_channels, out_channels, 1, 3),
            seed.wrapping_mul(31).wrapping_add(3),
        )?;
        let conv11 = Conv2d::new(
            &format!("{name}.conv11"),
            Conv2dSpec::square(out_channels, out_channels, 1, 1),
            seed.wrapping_mul(31).wrapping_add(4),
        )?;
        let proj = if in_channels != out_channels || stride != 1 {
            Some(Conv2d::new(
                &format!("{name}.proj"),
                Conv2dSpec::square(in_channels, out_channels, 1, stride),
                seed.wrapping_mul(31).wrapping_add(5),
            )?)
        } else {
            None
        };
        Ok(StudentBlock {
            in_channels,
            out_channels,
            stride,
            bn: BatchNorm2d::new(&format!("{name}.bn"), in_channels),
            relu_bn: Relu::new(),
            conv33,
            relu33: Relu::new(),
            conv31,
            relu31: Relu::new(),
            conv13,
            relu13: Relu::new(),
            conv11,
            proj,
            cache_block_input: None,
        })
    }

    /// Training-mode forward pass (caches everything backward needs).
    pub fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        self.cache_block_input = Some(input.clone());
        let x = self.bn.forward_train(input)?;
        let x = self.relu_bn.forward(&x);
        let x = self.conv33.forward(&x)?;
        let x = self.relu33.forward(&x);
        let x = self.conv31.forward(&x)?;
        let x = self.relu31.forward(&x);
        let x = self.conv13.forward(&x)?;
        let x = self.relu13.forward(&x);
        let x = self.conv11.forward(&x)?;
        let shortcut = match &mut self.proj {
            Some(p) => p.forward(input)?,
            None => input.clone(),
        };
        x.add(&shortcut)
    }

    /// [`StudentBlock::forward_train`] when `train`, otherwise a cache-free
    /// [`StudentBlock::forward_inference`] (stale training caches dropped).
    pub fn forward_mode(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        if train {
            self.forward_train(input)
        } else {
            self.clear_caches();
            self.forward_inference(input)
        }
    }

    /// Drop every layer's forward cache (frees im2col and activation buffers
    /// kept for a backward pass that frozen blocks never run).
    pub fn clear_caches(&mut self) {
        self.cache_block_input = None;
        self.bn.clear_cache();
        self.relu_bn = Relu::new();
        self.conv33.clear_cache();
        self.relu33 = Relu::new();
        self.conv31.clear_cache();
        self.relu31 = Relu::new();
        self.conv13.clear_cache();
        self.relu13 = Relu::new();
        self.conv11.clear_cache();
        if let Some(p) = &mut self.proj {
            p.clear_cache();
        }
    }

    /// Inference-mode forward pass (running statistics, no caches).
    pub fn forward_inference(&self, input: &Tensor) -> Result<Tensor> {
        let x = self.bn.forward_inference(input)?;
        let x = self.relu_bn.forward_inference(&x);
        let x = self.conv33.forward_inference(&x)?;
        let x = self.relu33.forward_inference(&x);
        let x = self.conv31.forward_inference(&x)?;
        let x = self.relu31.forward_inference(&x);
        let x = self.conv13.forward_inference(&x)?;
        let x = self.relu13.forward_inference(&x);
        let x = self.conv11.forward_inference(&x)?;
        let shortcut = match &self.proj {
            Some(p) => p.forward_inference(input)?,
            None => input.clone(),
        };
        x.add(&shortcut)
    }

    /// Backward pass. Accumulates parameter gradients; returns the gradient
    /// with respect to the block input when `need_input_grad` is true.
    pub fn backward(&mut self, grad_out: &Tensor, need_input_grad: bool) -> Result<Option<Tensor>> {
        // Main path.
        let g = self
            .conv11
            .backward(grad_out, true)?
            .expect("input grad requested");
        let g = self.relu13.backward(&g)?;
        let g = self
            .conv13
            .backward(&g, true)?
            .expect("input grad requested");
        let g = self.relu31.backward(&g)?;
        let g = self
            .conv31
            .backward(&g, true)?
            .expect("input grad requested");
        let g = self.relu33.backward(&g)?;
        // Whether the BN/conv33 front needs to propagate further down.
        let g = self
            .conv33
            .backward(&g, true)?
            .expect("input grad requested");
        let g = self.relu_bn.backward(&g)?;
        let main_in_grad = self.bn.backward(&g, need_input_grad)?;

        // Shortcut path: grad_out flows straight through the residual add.
        let shortcut_in_grad = match &mut self.proj {
            Some(p) => p.backward(grad_out, need_input_grad)?,
            None => {
                if need_input_grad {
                    Some(grad_out.clone())
                } else {
                    None
                }
            }
        };

        if !need_input_grad {
            return Ok(None);
        }
        let mut total = main_in_grad.expect("requested input grad");
        total.add_assign(&shortcut_in_grad.expect("requested input grad"))?;
        Ok(Some(total))
    }

    /// Total number of parameters in the block.
    pub fn param_count(&self) -> usize {
        let mut n = self.bn.param_count()
            + self.conv33.param_count()
            + self.conv31.param_count()
            + self.conv13.param_count()
            + self.conv11.param_count();
        if let Some(p) = &self.proj {
            n += p.param_count();
        }
        n
    }

    /// Visit the block's non-parameter state (the batch-norm running
    /// statistics) in a stable order.
    pub fn visit_buffers(
        &mut self,
        visitor: &mut dyn FnMut(&str, &mut Tensor, bool),
        trainable: bool,
    ) {
        self.bn.visit_buffers(visitor, trainable);
    }

    /// Visit all parameters in a stable order.
    pub fn visit_params(&mut self, visitor: &mut dyn ParamVisitor, trainable: bool) {
        self.bn.visit_params(visitor, trainable);
        self.conv33.visit_params(visitor, trainable);
        self.conv31.visit_params(visitor, trainable);
        self.conv13.visit_params(visitor, trainable);
        self.conv11.visit_params(visitor, trainable);
        if let Some(p) = &mut self.proj {
            p.visit_params(visitor, trainable);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use st_tensor::{random, Shape};

    #[test]
    fn identity_shaped_block_has_no_projection() {
        let b = StudentBlock::new("sb", 8, 8, 1, 1).unwrap();
        assert!(b.proj.is_none());
        let b2 = StudentBlock::new("sb", 8, 16, 1, 1).unwrap();
        assert!(b2.proj.is_some());
        let b3 = StudentBlock::new("sb", 8, 8, 2, 1).unwrap();
        assert!(b3.proj.is_some());
    }

    #[test]
    fn forward_shapes() {
        let mut b = StudentBlock::new("sb", 4, 8, 2, 2).unwrap();
        let x = random::uniform(Shape::nchw(1, 4, 8, 12), -1.0, 1.0, 3);
        let y = b.forward_train(&x).unwrap();
        assert_eq!(y.shape().dims(), &[1, 8, 4, 6]);
        let yi = b.forward_inference(&x).unwrap();
        assert_eq!(yi.shape().dims(), &[1, 8, 4, 6]);
    }

    #[test]
    fn batched_inference_matches_per_frame() {
        // The block's inference path is built from batched layers (batched
        // im2col conv, running-stat batch norm, elementwise ReLU and the
        // residual add), so a stacked forward must equal per-frame forwards
        // bit-for-bit.
        let mut b = StudentBlock::new("sb", 3, 6, 2, 9).unwrap();
        // Nudge the running stats off their init values first.
        let warm = random::uniform(Shape::nchw(1, 3, 8, 8), -1.0, 1.0, 10);
        b.forward_train(&warm).unwrap();
        let frames: Vec<Tensor> = (0..3)
            .map(|i| random::uniform(Shape::nchw(1, 3, 8, 8), -1.0, 1.0, 20 + i))
            .collect();
        let refs: Vec<&Tensor> = frames.iter().collect();
        let batch = Tensor::stack_batch(&refs).unwrap();
        let batched = b.forward_inference(&batch).unwrap();
        assert_eq!(batched.shape().dims(), &[3, 6, 4, 4]);
        let out_len = 6 * 4 * 4;
        for (i, frame) in frames.iter().enumerate() {
            let solo = b.forward_inference(frame).unwrap();
            assert_eq!(
                solo.data(),
                &batched.data()[i * out_len..(i + 1) * out_len],
                "frame {i} differs from its batched slice"
            );
        }
    }

    #[test]
    fn backward_produces_finite_grads_for_all_params() {
        let mut b = StudentBlock::new("sb", 3, 6, 1, 4).unwrap();
        let x = random::uniform(Shape::nchw(1, 3, 6, 6), -1.0, 1.0, 5);
        let y = b.forward_train(&x).unwrap();
        let gin = b
            .backward(&Tensor::ones(y.shape().clone()), true)
            .unwrap()
            .unwrap();
        assert_eq!(gin.shape(), x.shape());
        assert!(gin.all_finite());
        let mut all_have_grad = true;
        let mut v = |p: &mut Param, _t: bool| {
            if !p.grad.all_finite() || p.grad.norm() == 0.0 {
                // Bias terms of later convs always receive gradient; batch-norm
                // beta too. Zero gradients indicate a wiring bug.
                all_have_grad = p.name.contains("proj");
            }
        };
        b.visit_params(&mut v, true);
        assert!(all_have_grad, "some parameter received no gradient");
    }

    #[test]
    fn block_gradient_matches_numerical_on_sample_weights() {
        let mut b = StudentBlock::new("sb", 2, 4, 1, 7).unwrap();
        let x = random::uniform(Shape::nchw(1, 2, 5, 5), -1.0, 1.0, 8);
        let coeff = random::uniform(Shape::nchw(1, 4, 5, 5), -1.0, 1.0, 9);
        // analytic
        let _ = b.forward_train(&x).unwrap();
        b.backward(&coeff, false).unwrap();
        let analytic = b.conv11.weight.grad.clone();
        // numerical on a few conv11 weights (last conv => unaffected by BN
        // running-stat drift between evaluations in training mode).
        let eps = 1e-2f32;
        for idx in [0usize, 3, 10] {
            let mut bp = b.clone();
            bp.conv11.weight.value.data_mut()[idx] += eps;
            let mut bm = b.clone();
            bm.conv11.weight.value.data_mut()[idx] -= eps;
            let lp = bp.forward_train(&x).unwrap().mul(&coeff).unwrap().sum();
            let lm = bm.forward_train(&x).unwrap().mul(&coeff).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = analytic.data()[idx];
            assert!((num - ana).abs() < 5e-2, "idx {idx}: num {num} ana {ana}");
        }
    }

    #[test]
    fn param_count_consistent_with_visit() {
        let mut b = StudentBlock::new("sb", 5, 7, 2, 11).unwrap();
        let mut seen = 0usize;
        let mut v = |p: &mut Param, _| seen += p.numel();
        b.visit_params(&mut v, true);
        assert_eq!(seen, b.param_count());
    }
}
