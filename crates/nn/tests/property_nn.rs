//! Property-based tests of the NN substrate invariants ShadowTutor relies on.

use proptest::prelude::*;
use st_nn::loss::{weighted_cross_entropy, WeightMap};
use st_nn::metrics::{miou, ConfusionMatrix};
use st_nn::snapshot::{PayloadSizes, SnapshotScope, WeightSnapshot};
use st_nn::student::{FreezePoint, Stage, StudentConfig, StudentNet};
use st_nn::Param;
use st_tensor::{random, Shape};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A prediction identical to the label always scores mIoU = 1, and mIoU
    /// is symmetric in prediction/label.
    #[test]
    fn miou_identity_and_symmetry(labels in prop::collection::vec(0usize..5, 1..200)) {
        let perfect = miou(&labels, &labels, 5).unwrap();
        prop_assert!((perfect.value - 1.0).abs() < 1e-12);
        let shifted: Vec<usize> = labels.iter().map(|&l| (l + 1) % 5).collect();
        let a = miou(&shifted, &labels, 5).unwrap();
        let b = miou(&labels, &shifted, 5).unwrap();
        prop_assert!((a.value - b.value).abs() < 1e-12);
        prop_assert!(a.value >= 0.0 && a.value <= 1.0);
    }

    /// Pixel accuracy and mIoU agree on the extremes.
    #[test]
    fn confusion_matrix_extremes(labels in prop::collection::vec(0usize..3, 1..100)) {
        let mut cm = ConfusionMatrix::new(3);
        cm.update(&labels, &labels).unwrap();
        prop_assert!((cm.pixel_accuracy() - 1.0).abs() < 1e-12);
        let wrong: Vec<usize> = labels.iter().map(|&l| (l + 1) % 3).collect();
        let mut cm2 = ConfusionMatrix::new(3);
        cm2.update(&wrong, &labels).unwrap();
        prop_assert_eq!(cm2.pixel_accuracy(), 0.0);
        prop_assert_eq!(cm2.mean_iou(true).value, 0.0);
    }

    /// The cross-entropy loss is non-negative and its gradient sums to ~zero
    /// over channels for every pixel (softmax gradient property).
    #[test]
    fn cross_entropy_gradient_structure(seed in any::<u64>()) {
        let logits = random::uniform(Shape::nchw(1, 4, 3, 3), -2.0, 2.0, seed);
        let labels: Vec<usize> = (0..9).map(|i| (i + seed as usize) % 4).collect();
        let weights = WeightMap::uniform(9);
        let (loss, grad) = weighted_cross_entropy(&logits, &labels, &weights).unwrap();
        prop_assert!(loss >= 0.0);
        let plane = 9;
        for p in 0..plane {
            let channel_sum: f32 = (0..4).map(|c| grad.data()[c * plane + p]).sum();
            prop_assert!(channel_sum.abs() < 1e-4, "gradient over channels must sum to zero");
        }
    }

    /// Loss weights only take the two values {1, OBJECT_WEIGHT} and weighting
    /// never decreases the count of emphasised pixels as the radius grows.
    #[test]
    fn weight_map_monotone_in_radius(seed in any::<u64>()) {
        let h = 8usize;
        let w = 8usize;
        let labels: Vec<usize> = (0..h * w).map(|i| usize::from((i * 7 + seed as usize).is_multiple_of(13))).collect();
        let small = WeightMap::from_labels(&labels, h, w, 0, 1).unwrap();
        let large = WeightMap::from_labels(&labels, h, w, 0, 3).unwrap();
        let count = |m: &WeightMap| m.weights().iter().filter(|&&v| v > 1.0).count();
        prop_assert!(count(&large) >= count(&small));
        for &v in small.weights() {
            prop_assert!(v == 1.0 || v == st_nn::loss::OBJECT_WEIGHT);
        }
    }

    /// Partial snapshots are always a strict subset of full snapshots (fewer
    /// entries, fewer bytes), and applying a full snapshot makes two students
    /// with different seeds identical.
    #[test]
    fn snapshot_subset_and_identity(seed_a in 0u64..500, seed_b in 500u64..1000) {
        let mut a = StudentNet::new(StudentConfig { seed: seed_a, ..StudentConfig::tiny() }).unwrap();
        a.freeze = FreezePoint::paper_partial();
        let sizes = PayloadSizes::of(&mut a);
        prop_assert!(sizes.partial_bytes < sizes.full_bytes);
        prop_assert!(sizes.trainable_params < sizes.total_params);

        let full = WeightSnapshot::capture(&mut a, SnapshotScope::Full);
        let partial = WeightSnapshot::capture(&mut a, SnapshotScope::TrainableOnly);
        prop_assert!(partial.entry_count() < full.entry_count());

        let mut b = StudentNet::new(StudentConfig { seed: seed_b, ..StudentConfig::tiny() }).unwrap();
        b.freeze = FreezePoint::paper_partial();
        full.apply(&mut b).unwrap();
        let b_full = WeightSnapshot::capture(&mut b, SnapshotScope::Full);
        prop_assert!(full.distance(&b_full).unwrap() < 1e-9);
    }

    /// Freeze points partition the parameters: trainable + frozen = total,
    /// and later freeze boundaries never increase the trainable count.
    #[test]
    fn freeze_point_partition(seed in 0u64..200) {
        let mut net = StudentNet::new(StudentConfig { seed, ..StudentConfig::tiny() }).unwrap();
        let total = net.param_count();
        let mut previous = usize::MAX;
        for stage in [Stage::Sb3, Stage::Sb5, Stage::Out1, Stage::Out3] {
            net.freeze = FreezePoint::TrainFrom(stage);
            let trainable = net.trainable_param_count();
            let mut frozen = 0usize;
            let mut v = |p: &mut Param, t: bool| {
                if !t {
                    frozen += p.numel();
                }
            };
            net.visit_params(&mut v);
            prop_assert_eq!(trainable + frozen, total);
            prop_assert!(trainable <= previous, "later freeze points must not train more");
            previous = trainable;
        }
    }

    /// Inference is deterministic: the same input through the same weights
    /// always yields the same prediction.
    #[test]
    fn inference_is_deterministic(seed in any::<u64>()) {
        let net = StudentNet::new(StudentConfig::tiny()).unwrap();
        let x = random::uniform(Shape::nchw(1, 3, 16, 16), 0.0, 1.0, seed);
        let a = net.predict(&x).unwrap();
        let b = net.predict(&x).unwrap();
        prop_assert_eq!(a, b);
    }
}
