//! A CNN teacher: a wider instance of the student architecture.
//!
//! This teacher exists to exercise the *full* distillation code path
//! (teacher forward pass → pseudo-label → student training) with a genuinely
//! learned model rather than the oracle. It is pre-trained on frames drawn
//! from the same generator family ("public education" in the paper's terms)
//! and then frozen; at serving time it only runs inference on key frames.

use crate::{logits_to_labels, Result, Teacher};
use st_nn::loss::{weighted_cross_entropy, WeightMap};
use st_nn::optim::Adam;
use st_nn::student::{FreezePoint, StudentConfig, StudentNet};
use st_tensor::Tensor;
use st_video::{Frame, VideoGenerator};

/// A CNN teacher built from a widened student network.
#[derive(Debug)]
pub struct CnnTeacher {
    net: StudentNet,
    latency: f64,
    param_count: usize,
}

impl CnnTeacher {
    /// Create an untrained CNN teacher with roughly `width_multiple`× the
    /// tiny student's channel widths.
    pub fn untrained(width_multiple: usize, seed: u64) -> Result<Self> {
        let base = StudentConfig::tiny();
        let m = width_multiple.max(1);
        let config = StudentConfig {
            c_stem: base.c_stem * m,
            c_enc1: base.c_enc1 * m,
            c_enc2: base.c_enc2 * m,
            c_dec1: base.c_dec1 * m,
            c_dec2: base.c_dec2 * m,
            c_head: base.c_head * m,
            seed,
            ..base
        };
        let mut net = StudentNet::new(config)?;
        net.freeze = FreezePoint::None;
        let param_count = net.param_count();
        Ok(CnnTeacher {
            net,
            latency: 0.044,
            param_count,
        })
    }

    /// Pre-train the teacher on `steps` frames drawn from `generator`, using
    /// the generator's ground truth as supervision ("public education").
    pub fn pretrain(
        &mut self,
        generator: &mut VideoGenerator,
        steps: usize,
        lr: f32,
    ) -> Result<f32> {
        let mut opt = Adam::new(lr);
        let mut last_loss = 0.0f32;
        for _ in 0..steps {
            let frame = generator.next_frame();
            let logits = self.net.forward_train(&frame.image)?;
            let weights =
                WeightMap::from_labels(&frame.ground_truth, frame.height, frame.width, 0, 1)?;
            let (loss, grad) = weighted_cross_entropy(&logits, &frame.ground_truth, &weights)?;
            self.net.backward(&grad)?;
            opt.step(&mut self.net);
            last_loss = loss;
        }
        Ok(last_loss)
    }

    /// Override the nominal inference latency (seconds).
    pub fn with_latency(mut self, latency: f64) -> Self {
        self.latency = latency;
        self
    }

    /// Access the underlying network (e.g. to inspect parameter counts).
    pub fn network(&self) -> &StudentNet {
        &self.net
    }
}

impl Teacher for CnnTeacher {
    fn pseudo_label(&mut self, frame: &Frame) -> Result<Vec<usize>> {
        let logits = self.net.forward_inference(&frame.image)?;
        logits_to_labels(&logits)
    }

    /// A genuinely batched forward: co-scheduled frames of equal resolution
    /// are stacked into one `(N, C, H, W)` input and run through a single
    /// batched im2col + GEMM forward pass, so the network-level fixed costs
    /// (weight packing, buffer allocation, kernel setup) are paid once per
    /// batch instead of once per frame — and large enough batches cross the
    /// GEMM's parallel threshold and fan out across cores, which per-frame
    /// forwards of small frames never do.
    ///
    /// Frames of different resolutions are grouped and each group is run
    /// batched; output order matches the input order. The batched forward is
    /// bit-for-bit identical to per-frame [`CnnTeacher::pseudo_label`] calls
    /// (the packed GEMM's per-element accumulation order is independent of
    /// the batch width).
    fn pseudo_label_batch(&mut self, frames: &[&Frame]) -> Result<Vec<Vec<usize>>> {
        let mut out: Vec<Option<Vec<usize>>> = vec![None; frames.len()];
        // Group frame indices by resolution, preserving first-seen order.
        let mut groups: Vec<((usize, usize), Vec<usize>)> = Vec::new();
        for (i, frame) in frames.iter().enumerate() {
            let key = (frame.height, frame.width);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((key, vec![i])),
            }
        }
        for ((h, w), idxs) in groups {
            let images: Vec<&Tensor> = idxs.iter().map(|&i| &frames[i].image).collect();
            let batch = Tensor::stack_batch(&images)?;
            let logits = self.net.forward_inference(&batch)?;
            let labels = logits.argmax_channels()?;
            let plane = h * w;
            for (slot, &i) in idxs.iter().enumerate() {
                out[i] = Some(labels[slot * plane..(slot + 1) * plane].to_vec());
            }
        }
        Ok(out
            .into_iter()
            .map(|l| l.expect("every frame labelled"))
            .collect())
    }

    fn inference_latency(&self) -> f64 {
        self.latency
    }

    fn param_count(&self) -> usize {
        self.param_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_video::{CameraMotion, SceneKind, VideoCategory, VideoConfig};

    fn generator(seed: u64) -> VideoGenerator {
        let cat = VideoCategory {
            camera: CameraMotion::Fixed,
            scene: SceneKind::People,
        };
        VideoGenerator::new(VideoConfig::for_category(cat, 32, 24, seed)).unwrap()
    }

    #[test]
    fn untrained_teacher_produces_valid_labels() {
        let mut t = CnnTeacher::untrained(2, 1).unwrap();
        let mut g = generator(2);
        let f = g.next_frame();
        let labels = t.pseudo_label(&f).unwrap();
        assert_eq!(labels.len(), f.ground_truth.len());
        assert!(labels.iter().all(|&l| l < st_video::NUM_CLASSES));
    }

    #[test]
    fn batched_labels_match_per_frame_bit_for_bit() {
        let mut t = CnnTeacher::untrained(2, 5).unwrap();
        let mut g = generator(6);
        let frames: Vec<_> = (0..4).map(|_| g.next_frame()).collect();
        let refs: Vec<&_> = frames.iter().collect();
        let batched = t.pseudo_label_batch(&refs).unwrap();
        assert_eq!(batched.len(), frames.len());
        for (frame, batched_labels) in frames.iter().zip(&batched) {
            let solo = t.pseudo_label(frame).unwrap();
            assert_eq!(&solo, batched_labels);
        }
    }

    #[test]
    fn batched_labels_handle_mixed_resolutions() {
        // Streams of different frame sizes can be co-scheduled onto one
        // shard; the batched forward groups them by resolution and keeps
        // the output order aligned with the input order.
        let mut t = CnnTeacher::untrained(1, 7).unwrap();
        let mut g_small = generator(8);
        let cat = VideoCategory {
            camera: CameraMotion::Fixed,
            scene: SceneKind::Street,
        };
        let mut g_large = VideoGenerator::new(VideoConfig::for_category(cat, 48, 32, 9)).unwrap();
        let frames = [
            g_small.next_frame(),
            g_large.next_frame(),
            g_small.next_frame(),
            g_large.next_frame(),
        ];
        let refs: Vec<&_> = frames.iter().collect();
        let batched = t.pseudo_label_batch(&refs).unwrap();
        for (frame, batched_labels) in frames.iter().zip(&batched) {
            assert_eq!(batched_labels.len(), frame.height * frame.width);
            let solo = t.pseudo_label(frame).unwrap();
            assert_eq!(&solo, batched_labels);
        }
        // Empty batches are fine.
        assert!(t.pseudo_label_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn wider_teacher_has_more_params_than_tiny_student() {
        let t = CnnTeacher::untrained(2, 1).unwrap();
        let mut tiny = StudentNet::new(StudentConfig::tiny()).unwrap();
        assert!(t.param_count() > tiny.param_count());
        // Same widths => same parameter count, independent of the seed.
        let t2 = CnnTeacher::untrained(2, 99).unwrap();
        assert_eq!(t.param_count(), t2.param_count());
    }

    #[test]
    fn pretraining_reduces_loss() {
        let mut t = CnnTeacher::untrained(1, 3).unwrap();
        let mut g = generator(4);
        // First step's loss vs the loss after a few steps on the same stream.
        let first = t.pretrain(&mut g, 1, 0.01).unwrap();
        let later = t.pretrain(&mut g, 6, 0.01).unwrap();
        assert!(later.is_finite());
        assert!(
            later < first * 1.5,
            "pre-training diverged: {first} -> {later}"
        );
    }

    #[test]
    fn latency_override() {
        let t = CnnTeacher::untrained(1, 1).unwrap().with_latency(0.2);
        assert!((t.inference_latency() - 0.2).abs() < 1e-12);
    }
}
