//! # st-teacher
//!
//! Teacher substrates for the ShadowTutor reproduction.
//!
//! In the paper the teacher is a COCO-pre-trained Mask R-CNN (44 M
//! parameters) running on a server GPU; the student only ever consumes the
//! teacher's *final per-pixel output* (§6: "the student ... is only
//! interested in the final output of the teacher, regardless of all the
//! intermediate operations"), and accuracy is measured *against* that output
//! because LVS itself was labelled with Mask R-CNN.
//!
//! Two teachers are provided:
//!
//! * [`OracleTeacher`] — the default. It produces pseudo-labels from the
//!   synthetic generator's ground truth, optionally corrupted with a
//!   Mask-R-CNN-like error model (boundary erosion/dilation, small-object
//!   misses, class confusion). Because the paper's accuracy metric is
//!   "agreement with the teacher", the oracle plays exactly the role Mask
//!   R-CNN plays in the original evaluation.
//! * [`CnnTeacher`] — a wider instance of the student architecture that can
//!   be pre-trained on generated frames and then queried like a real CNN
//!   teacher. It exercises the full distillation code path end-to-end when a
//!   genuinely learned teacher is desired (slower; used in one example).
//!
//! Both implement the [`Teacher`] trait consumed by the ShadowTutor server
//! loop, and both report a nominal inference latency used by the timing
//! model (`t_ti` in Table 1 of the paper).

pub mod cnn;
pub mod oracle;

pub use cnn::CnnTeacher;
pub use oracle::{CorruptionModel, OracleTeacher};

use st_tensor::Tensor;
use st_video::Frame;

/// Result alias re-using the tensor error type.
pub type Result<T> = st_tensor::Result<T>;

/// A teacher model: given a key frame, produce a per-pixel pseudo-label map.
pub trait Teacher {
    /// Produce the pseudo-label (length `H*W` class indices) for a frame.
    fn pseudo_label(&mut self, frame: &Frame) -> Result<Vec<usize>>;

    /// Produce pseudo-labels for a batch of key frames in one call.
    ///
    /// The multi-stream server pool co-schedules key frames from different
    /// client streams onto one teacher so a single (batched) forward pass is
    /// amortized across them. The default implementation simply labels each
    /// frame in turn — semantically identical, so implementors only override
    /// this when a genuinely batched forward is cheaper. [`CnnTeacher`]
    /// overrides it with a real batched forward (stacked input, one batched
    /// im2col + GEMM per layer) whose output is bit-for-bit the per-frame
    /// result.
    fn pseudo_label_batch(&mut self, frames: &[&Frame]) -> Result<Vec<Vec<usize>>> {
        frames.iter().map(|f| self.pseudo_label(f)).collect()
    }

    /// Nominal inference latency of this teacher in seconds (`t_ti`).
    ///
    /// The virtual-time runtime charges this latency per key frame; it does
    /// not depend on how long the Rust call actually takes, so experiments
    /// are reproducible across machines.
    fn inference_latency(&self) -> f64;

    /// Nominal latency of one *batched* forward pass over `batch` frames.
    ///
    /// GPU teachers are strongly sub-linear in batch size; the default
    /// models that as a full-latency first item plus
    /// [`st_sim::DEFAULT_BATCH_MARGINAL_COST`] per additional item — the
    /// same constant the analytic contention model assumes — which is the
    /// amortization the multi-stream pool charges when it co-schedules key
    /// frames (`batch == 0` costs nothing).
    fn batched_inference_latency(&self, batch: usize) -> f64 {
        if batch == 0 {
            0.0
        } else {
            self.inference_latency()
                * (1.0 + st_sim::DEFAULT_BATCH_MARGINAL_COST * (batch as f64 - 1.0))
        }
    }

    /// Number of parameters of the teacher (for reporting teacher/student
    /// size ratios as in §5.2 of the paper).
    fn param_count(&self) -> usize;
}

/// Helper shared by teachers: argmax over channel logits into a label map.
pub fn logits_to_labels(logits: &Tensor) -> Result<Vec<usize>> {
    logits.argmax_channels()
}
