//! The oracle teacher: ground-truth-derived pseudo-labels with a
//! Mask-R-CNN-like corruption model.
//!
//! Mask R-CNN on LVS is imperfect in characteristic ways: object boundaries
//! are slightly off, very small objects are occasionally missed entirely, and
//! visually similar classes are sometimes confused. The [`CorruptionModel`]
//! reproduces those three error modes on top of the generator's ground truth
//! so the student is distilled from labels with realistic imperfections, while
//! the *evaluation* (which, as in the paper, compares the student to the
//! teacher's own output) stays self-consistent.

use crate::{Result, Teacher};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use st_video::{Frame, NUM_CLASSES};

/// Configuration of the teacher's error model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorruptionModel {
    /// Probability that a boundary pixel (a pixel with a differently-labelled
    /// 4-neighbour) flips to that neighbour's label.
    pub boundary_flip_prob: f64,
    /// Objects smaller than this many pixels are dropped (labelled
    /// background) with probability [`CorruptionModel::small_object_miss_prob`].
    pub small_object_threshold: usize,
    /// Probability of missing a small object entirely.
    pub small_object_miss_prob: f64,
    /// Probability that an entire object's class is swapped for another
    /// foreground class (class confusion).
    pub class_confusion_prob: f64,
}

impl CorruptionModel {
    /// A perfect teacher (no corruption).
    pub fn perfect() -> Self {
        CorruptionModel {
            boundary_flip_prob: 0.0,
            small_object_threshold: 0,
            small_object_miss_prob: 0.0,
            class_confusion_prob: 0.0,
        }
    }

    /// Default Mask-R-CNN-like imperfection level.
    pub fn realistic() -> Self {
        CorruptionModel {
            boundary_flip_prob: 0.25,
            small_object_threshold: 12,
            small_object_miss_prob: 0.15,
            class_confusion_prob: 0.01,
        }
    }
}

/// Ground-truth-based teacher with configurable corruption and latency.
#[derive(Debug)]
pub struct OracleTeacher {
    corruption: CorruptionModel,
    /// Nominal inference latency in seconds (`t_ti`; paper measures 44 ms
    /// for Mask R-CNN on the RTX 2080 Ti).
    latency: f64,
    /// Nominal parameter count reported for size-ratio bookkeeping
    /// (Mask R-CNN: 44.34 M).
    nominal_params: usize,
    rng: StdRng,
}

impl OracleTeacher {
    /// Teacher with the paper's nominal latency and size and a given
    /// corruption model.
    pub fn new(corruption: CorruptionModel, seed: u64) -> Self {
        OracleTeacher {
            corruption,
            latency: 0.044,
            nominal_params: 44_340_000,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A perfect oracle (labels equal to ground truth).
    pub fn perfect(seed: u64) -> Self {
        OracleTeacher::new(CorruptionModel::perfect(), seed)
    }

    /// A realistically imperfect oracle.
    pub fn realistic(seed: u64) -> Self {
        OracleTeacher::new(CorruptionModel::realistic(), seed)
    }

    /// Override the nominal inference latency (seconds).
    pub fn with_latency(mut self, latency: f64) -> Self {
        self.latency = latency;
        self
    }

    fn corrupt(&mut self, labels: &[usize], h: usize, w: usize) -> Vec<usize> {
        let mut out = labels.to_vec();
        let c = self.corruption;

        // Per-class pixel counts for the small-object and confusion passes.
        let mut counts = [0usize; NUM_CLASSES];
        for &l in labels {
            if l < NUM_CLASSES {
                counts[l] += 1;
            }
        }

        // Class-level decisions: miss small objects, confuse classes.
        let mut class_map: [usize; NUM_CLASSES] = core::array::from_fn(|i| i);
        for cls in 1..NUM_CLASSES {
            if counts[cls] == 0 {
                continue;
            }
            if counts[cls] <= c.small_object_threshold
                && self.rng.random::<f64>() < c.small_object_miss_prob
            {
                class_map[cls] = 0; // background
            } else if self.rng.random::<f64>() < c.class_confusion_prob {
                // Swap to a random other foreground class.
                let other = 1 + (self.rng.random::<u32>() as usize) % (NUM_CLASSES - 1);
                class_map[cls] = other;
            }
        }
        if class_map.iter().enumerate().any(|(i, &m)| m != i) {
            for l in &mut out {
                *l = class_map[*l];
            }
        }

        // Boundary jitter: flip boundary pixels to a neighbour's label.
        if c.boundary_flip_prob > 0.0 {
            let original = out.clone();
            for y in 0..h {
                for x in 0..w {
                    let idx = y * w + x;
                    let here = original[idx];
                    let neighbours = [
                        (x > 0).then(|| original[idx - 1]),
                        (x + 1 < w).then(|| original[idx + 1]),
                        (y > 0).then(|| original[idx - w]),
                        (y + 1 < h).then(|| original[idx + w]),
                    ];
                    for n in neighbours.into_iter().flatten() {
                        if n != here {
                            if self.rng.random::<f64>() < c.boundary_flip_prob {
                                out[idx] = n;
                            }
                            break;
                        }
                    }
                }
            }
        }
        out
    }
}

impl Teacher for OracleTeacher {
    fn pseudo_label(&mut self, frame: &Frame) -> Result<Vec<usize>> {
        Ok(self.corrupt(&frame.ground_truth, frame.height, frame.width))
    }

    fn inference_latency(&self) -> f64 {
        self.latency
    }

    fn param_count(&self) -> usize {
        self.nominal_params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_video::{CameraMotion, SceneKind, VideoCategory, VideoConfig, VideoGenerator};

    fn frame(seed: u64) -> Frame {
        let cat = VideoCategory {
            camera: CameraMotion::Fixed,
            scene: SceneKind::Street,
        };
        let mut g = VideoGenerator::new(VideoConfig::for_category(cat, 32, 24, seed)).unwrap();
        g.next_frame()
    }

    #[test]
    fn perfect_oracle_returns_ground_truth() {
        let f = frame(1);
        let mut t = OracleTeacher::perfect(0);
        let labels = t.pseudo_label(&f).unwrap();
        assert_eq!(labels, f.ground_truth);
        assert_eq!(t.param_count(), 44_340_000);
        assert!((t.inference_latency() - 0.044).abs() < 1e-9);
    }

    #[test]
    fn realistic_oracle_differs_only_moderately() {
        let f = frame(2);
        let mut t = OracleTeacher::realistic(0);
        let labels = t.pseudo_label(&f).unwrap();
        let diff = labels
            .iter()
            .zip(f.ground_truth.iter())
            .filter(|(a, b)| a != b)
            .count();
        assert!(diff > 0, "realistic corruption should perturb something");
        assert!(
            (diff as f64) < 0.15 * labels.len() as f64,
            "corruption too aggressive: {diff}/{}",
            labels.len()
        );
        // All labels remain valid class indices.
        assert!(labels.iter().all(|&l| l < NUM_CLASSES));
    }

    #[test]
    fn boundary_flips_touch_only_boundary_pixels() {
        let f = frame(3);
        let mut t = OracleTeacher::new(
            CorruptionModel {
                boundary_flip_prob: 1.0,
                small_object_threshold: 0,
                small_object_miss_prob: 0.0,
                class_confusion_prob: 0.0,
            },
            0,
        );
        let labels = t.pseudo_label(&f).unwrap();
        let w = f.width;
        for (idx, (&new, &old)) in labels.iter().zip(f.ground_truth.iter()).enumerate() {
            if new != old {
                // The changed pixel must have had a differently-labelled 4-neighbour.
                let x = idx % w;
                let y = idx / w;
                let mut has_diff_neighbour = false;
                if x > 0 && f.ground_truth[idx - 1] != old {
                    has_diff_neighbour = true;
                }
                if x + 1 < w && f.ground_truth[idx + 1] != old {
                    has_diff_neighbour = true;
                }
                if y > 0 && f.ground_truth[idx - w] != old {
                    has_diff_neighbour = true;
                }
                if y + 1 < f.height && f.ground_truth[idx + w] != old {
                    has_diff_neighbour = true;
                }
                assert!(has_diff_neighbour, "interior pixel {idx} was flipped");
            }
        }
    }

    #[test]
    fn latency_override() {
        let t = OracleTeacher::perfect(0).with_latency(0.1);
        assert!((t.inference_latency() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let f = frame(4);
        let a = OracleTeacher::realistic(9).pseudo_label(&f).unwrap();
        let b = OracleTeacher::realistic(9).pseudo_label(&f).unwrap();
        assert_eq!(a, b);
    }
}
