//! Close-semantics regression tests for [`st_net::Poller`], in two tiers:
//!
//! * **std tier** (always compiled): pin the drain-after-close contract on
//!   the plain-`std` build — tokens queued before *or after* `close()` are
//!   still delivered; only an empty queue returns empty, and registering a
//!   waker against a closed poller is allowed and functional (a shard that
//!   exits while a peer is mid-`connect` must not panic the pool).
//! * **model tier** (`--features model-check`): the same contract plus the
//!   no-lost-wakeup property, proven over every bounded interleaving of the
//!   park / wake / close races by the `st_check` model checker — the poller
//!   is the reactor's only wakeup path, so a lost wakeup is a hung shard.
//!
//! Model-tier timeouts are an hour on purpose: under the checker a timeout
//! is a scheduling *alternative* (both outcomes are explored), never wall
//! time, and the huge value guarantees the std fall-back path of an
//! instrumented build cannot flip a decision by actually timing out.

use std::time::Duration;

use st_net::Poller;

/// Tokens already queued when `close()` lands are still delivered: consumer
/// loops drain their backlog before they observe closure and exit.
#[test]
fn wake_before_close_is_drained_after_close() {
    let poller = Poller::new();
    poller.waker(3).wake();
    poller.close();
    assert_eq!(poller.poll(Duration::from_secs(30)).tokens(), &[3]);
    assert!(poller.poll(Duration::from_millis(1)).is_empty());
}

/// A wake that arrives *after* `close()` is also delivered — closure stops
/// parking, not delivery. (The pool relies on this: `join()` closes the
/// poller, then each shard's final drain still needs its doorbell.)
#[test]
fn wake_after_close_is_still_delivered() {
    let poller = Poller::new();
    poller.close();
    assert!(poller.is_closed());
    poller.waker(5).wake();
    assert_eq!(poller.poll_one(Duration::from_secs(30)), Some(5));
    assert_eq!(poller.poll_one(Duration::from_millis(1)), None);
}

/// Creating and using a waker for a token first seen after closure works:
/// registration is not gated on the poller being open.
#[test]
fn register_during_close_is_functional() {
    let poller = Poller::new();
    poller.close();
    let late = poller.waker(11);
    late.wake();
    late.wake(); // dedup must still hold after close
    assert_eq!(poller.wakeups(), 1);
    let ready = poller.poll(Duration::from_secs(30));
    assert_eq!(ready.tokens(), &[11]);
}

/// Closing twice is idempotent and keeps returning empty immediately.
#[test]
fn double_close_is_idempotent() {
    let poller = Poller::new();
    poller.close();
    poller.close();
    assert!(poller.is_closed());
    assert!(poller.poll(Duration::from_secs(30)).is_empty());
}

#[cfg(feature = "model-check")]
mod model {
    use super::*;
    use std::sync::Arc;

    use st_check::model::{check_with, Config};
    use st_check::sync::thread;

    /// An hour: under the checker, "can time out" is explored as a branch,
    /// and the std fall-back can never actually wait this long.
    const FOREVER: Duration = Duration::from_secs(3600);

    fn cfg() -> Config {
        Config::from_env()
    }

    fn assert_clean(report: &st_check::model::Report, what: &str) {
        if let Some(cx) = &report.counterexample {
            panic!("false positive on {what}:\n{}", cx.render());
        }
        assert!(report.exhausted, "{what}: exploration did not exhaust");
    }

    /// No lost wakeup: whatever way a concurrent `wake` interleaves with a
    /// parked (or timing-out) poll, the token is observable by the time the
    /// waker thread is joined.
    #[test]
    fn wake_is_never_lost_across_park_races() {
        let report = check_with(cfg(), || {
            let poller = Arc::new(Poller::new());
            let waker = poller.waker(1);
            let t = thread::spawn(move || waker.wake());
            let first = poller.poll(FOREVER);
            t.join().expect("join waker");
            if first.is_empty() {
                // The poll took its timeout branch before the wake landed;
                // the token must still be queued.
                assert_eq!(poller.poll(FOREVER).tokens(), &[1], "wakeup lost");
            } else {
                assert_eq!(first.tokens(), &[1], "wrong token delivered");
            }
        });
        assert_clean(&report, "the park/wake race");
    }

    /// Wake-then-close from a second thread: the close releases a parked
    /// poller, and the token queued just before it is never lost — polls
    /// drain after close, and only then come back empty.
    #[test]
    fn close_releases_parked_poller_without_dropping_the_wake() {
        let report = check_with(cfg(), || {
            let poller = Arc::new(Poller::new());
            let waker = poller.waker(2);
            let closer = Arc::clone(&poller);
            let t = thread::spawn(move || {
                waker.wake();
                closer.close();
            });
            let mut got = poller.poll(FOREVER);
            t.join().expect("join closer");
            if got.is_empty() {
                // Timeout branch fired before the wake; post-join the token
                // is certainly queued and closure must not eat it.
                got = poller.poll(FOREVER);
            }
            assert_eq!(got.tokens(), &[2], "wake lost across close");
            assert!(poller.is_closed(), "close not visible after join");
            assert!(poller.poll(FOREVER).is_empty(), "drained poller not empty");
        });
        assert_clean(&report, "the park/close race");
    }

    /// `poll_one` under a concurrent waker: each token is delivered exactly
    /// once across any number of one-token polls.
    #[test]
    fn poll_one_delivers_each_token_exactly_once() {
        let report = check_with(cfg(), || {
            let poller = Arc::new(Poller::new());
            let (w1, w2) = (poller.waker(1), poller.waker(2));
            let t = thread::spawn(move || {
                w1.wake();
                w2.wake();
            });
            let mut got = Vec::new();
            got.extend(poller.poll_one(FOREVER));
            got.extend(poller.poll_one(FOREVER));
            t.join().expect("join waker");
            while let Some(token) = poller.poll_one(FOREVER) {
                got.push(token);
            }
            got.sort_unstable();
            assert_eq!(got, vec![1, 2], "tokens lost or duplicated");
        });
        assert_clean(&report, "one-token dispatch");
    }

    /// The std-tier close-semantics contract, re-proven under the checker:
    /// wake-after-close still delivers, then polls return empty.
    #[test]
    fn wake_after_close_is_delivered_under_the_model() {
        let report = check_with(cfg(), || {
            let poller = Arc::new(Poller::new());
            let waker = poller.waker(5);
            let closer = Arc::clone(&poller);
            let t = thread::spawn(move || {
                closer.close();
                waker.wake();
            });
            t.join().expect("join closer");
            assert_eq!(poller.poll_one(FOREVER), Some(5), "post-close wake lost");
            assert_eq!(poller.poll_one(FOREVER), None, "closed poller not empty");
        });
        assert_clean(&report, "wake-after-close under the model");
    }
}
