//! Model-checking the shared-memory ring protocol.
//!
//! [`st_net::ring`] is generic over its storage ([`RingMem`]), so these tests
//! run the *production* `try_push`/`try_pop`/`ready` functions — the exact
//! code the shm transport ships — over a heap-allocated mock whose atomics
//! are instrumented by the `st_check` model checker. Two properties:
//!
//! * **Conservation**: every pushed chunk is popped exactly once, in some
//!   order, under every explored interleaving of concurrent producers and a
//!   consumer.
//! * **No torn reads**: the payload is written as two halves with plain
//!   (Relaxed) stores; the seqlock-style publication protocol alone must
//!   make both halves visible before a consumer can accept the slot. A
//!   popped chunk whose halves disagree — or that carries the cell's initial
//!   bytes — is a torn read.
//!
//! The mutant tests weaken one ordering at a time through a [`RingMem`]
//! adapter (the production code is untouched) and require the checker to
//! produce a counterexample: if a deliberately broken ring passes, the
//! checker is not actually guarding the protocol.
#![cfg(feature = "model-check")]

use std::sync::Arc;

use st_check::model::{check_with, Config, Report};
use st_check::sync::thread;
use st_check::sync::{AtomicU64, Ordering};
use st_net::ring::{self, PushOutcome, RingMem};

/// Default exploration bounds (honours `ST_CHECK_BOUND` / `ST_CHECK_SEED`).
fn cfg() -> Config {
    Config::from_env()
}

fn assert_caught(report: &Report, what: &str) {
    let cx = report
        .counterexample
        .as_ref()
        .unwrap_or_else(|| panic!("checker failed to catch {what}"));
    assert!(!cx.schedule.is_empty(), "counterexample is not replayable");
}

fn assert_clean(report: &Report, what: &str) {
    if let Some(cx) = &report.counterexample {
        panic!("false positive on {what}:\n{}", cx.render());
    }
    assert!(report.exhausted, "{what}: exploration did not exhaust");
}

/// Heap-allocated ring storage over instrumented atomics. The payload of
/// each slot is two `u64` halves written with Relaxed stores — stand-ins for
/// the plain `memcpy` of the real shared-memory segment, so a missing
/// release/acquire edge shows up as a half carrying a stale value.
struct TestRing {
    slots: usize,
    tail: AtomicU64,
    head: AtomicU64,
    seq: Vec<AtomicU64>,
    lo: Vec<AtomicU64>,
    hi: Vec<AtomicU64>,
}

/// Initial payload bytes of every cell; a popped chunk must never carry it.
const STALE: u8 = 0xEE;

impl TestRing {
    fn new(slots: usize) -> Self {
        TestRing {
            slots,
            tail: AtomicU64::new(0),
            head: AtomicU64::new(0),
            seq: (0..slots).map(|i| AtomicU64::new(i as u64)).collect(),
            lo: (0..slots).map(|_| AtomicU64::new(STALE as u64)).collect(),
            hi: (0..slots).map(|_| AtomicU64::new(STALE as u64)).collect(),
        }
    }
}

impl RingMem for TestRing {
    fn slots(&self) -> usize {
        self.slots
    }

    fn chunk_capacity(&self) -> usize {
        1
    }

    fn tail_load(&self, order: Ordering) -> u64 {
        self.tail.load(order)
    }

    fn tail_compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.tail
            .compare_exchange_weak(current, new, success, failure)
    }

    fn head_load(&self, order: Ordering) -> u64 {
        self.head.load(order)
    }

    fn head_compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.head
            .compare_exchange_weak(current, new, success, failure)
    }

    fn seq_load(&self, index: usize, order: Ordering) -> u64 {
        self.seq[index].load(order)
    }

    fn seq_store(&self, index: usize, value: u64, order: Ordering) {
        self.seq[index].store(value, order);
    }

    fn payload_write(&self, index: usize, chunk: &[u8]) {
        // ORDER: deliberately Relaxed — plain memory; publication is the
        // protocol's job, and exactly what this suite is probing.
        self.lo[index].store(chunk[0] as u64, Ordering::Relaxed);
        self.hi[index].store(chunk[0] as u64, Ordering::Relaxed);
    }

    fn payload_read(&self, index: usize, out: &mut Vec<u8>) {
        // ORDER: deliberately Relaxed — see `payload_write`.
        out.push(self.lo[index].load(Ordering::Relaxed) as u8);
        out.push(self.hi[index].load(Ordering::Relaxed) as u8);
    }
}

/// [`RingMem`] adapter that demotes one class of ordering to Relaxed,
/// leaving the production algorithm untouched — the checker must catch the
/// resulting torn/stale reads for the suite to mean anything.
#[derive(Clone)]
struct Weaken {
    inner: Arc<TestRing>,
    /// Demote the release `seq` stores (the producer's publication and the
    /// consumer's retirement) to Relaxed.
    demote_seq_store: bool,
    /// Demote the acquire `seq` loads (the producer's free-check and the
    /// consumer's acceptance) to Relaxed.
    demote_seq_load: bool,
}

impl RingMem for Weaken {
    fn slots(&self) -> usize {
        self.inner.slots()
    }

    fn chunk_capacity(&self) -> usize {
        self.inner.chunk_capacity()
    }

    fn tail_load(&self, order: Ordering) -> u64 {
        self.inner.tail_load(order)
    }

    fn tail_compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.inner
            .tail_compare_exchange_weak(current, new, success, failure)
    }

    fn head_load(&self, order: Ordering) -> u64 {
        self.inner.head_load(order)
    }

    fn head_compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.inner
            .head_compare_exchange_weak(current, new, success, failure)
    }

    fn seq_load(&self, index: usize, order: Ordering) -> u64 {
        let order = if self.demote_seq_load && order == Ordering::Acquire {
            Ordering::Relaxed
        } else {
            order
        };
        self.inner.seq_load(index, order)
    }

    fn seq_store(&self, index: usize, value: u64, order: Ordering) {
        let order = if self.demote_seq_store && order == Ordering::Release {
            Ordering::Relaxed
        } else {
            order
        };
        self.inner.seq_store(index, value, order);
    }

    fn payload_write(&self, index: usize, chunk: &[u8]) {
        self.inner.payload_write(index, chunk);
    }

    fn payload_read(&self, index: usize, out: &mut Vec<u8>) {
        self.inner.payload_read(index, out);
    }
}

/// Split the raw pop bytes back into (lo, hi) chunk halves and assert each
/// chunk is whole: halves equal, and never the cell's initial bytes.
fn chunks(out: &[u8]) -> Vec<u8> {
    assert_eq!(out.len() % 2, 0, "pop wrote a half chunk");
    out.chunks(2)
        .map(|pair| {
            assert_eq!(pair[0], pair[1], "torn read: payload halves disagree");
            assert_ne!(pair[0], STALE, "stale read: initial payload observed");
            pair[0]
        })
        .collect()
}

/// Conservation + wholeness under every bounded interleaving of two
/// producers and one consumer on a 2-slot ring.
#[test]
fn ring_conserves_chunks_and_never_tears() {
    let report = check_with(cfg(), || {
        let ring = Arc::new(TestRing::new(2));
        let (r1, r2) = (Arc::clone(&ring), Arc::clone(&ring));
        let t1 = thread::spawn(move || ring::try_push(&*r1, &[7]));
        let t2 = thread::spawn(move || ring::try_push(&*r2, &[9]));
        let mut out = Vec::new();
        // Concurrent pops: bounded attempts, so the consumer never spins the
        // schedule out; whatever they miss the post-join drain picks up.
        for _ in 0..2 {
            ring::try_pop(&*ring, &mut out);
        }
        let p1 = t1.join().expect("join producer 1");
        let p2 = t2.join().expect("join producer 2");
        // A 2-slot ring with 2 producers never reports Full.
        assert_eq!(p1, PushOutcome::Pushed, "producer 1 found the ring full");
        assert_eq!(p2, PushOutcome::Pushed, "producer 2 found the ring full");
        while ring::try_pop(&*ring, &mut out) {}
        let mut got = chunks(&out);
        got.sort_unstable();
        assert_eq!(got, vec![7, 9], "chunks lost or duplicated");
        assert!(!ring::ready(&*ring), "drained ring still reports ready");
    });
    assert_clean(&report, "ring conservation");
}

/// A full ring refuses the push without corrupting anything, and frees a
/// slot after one pop.
#[test]
fn ring_full_rejects_then_recovers() {
    let report = check_with(cfg(), || {
        let ring = TestRing::new(2);
        assert_eq!(ring::try_push(&ring, &[1]), PushOutcome::Pushed);
        assert_eq!(ring::try_push(&ring, &[2]), PushOutcome::Pushed);
        assert_eq!(ring::try_push(&ring, &[3]), PushOutcome::Full);
        let mut out = Vec::new();
        assert!(ring::try_pop(&ring, &mut out));
        assert_eq!(ring::try_push(&ring, &[3]), PushOutcome::Pushed);
        assert!(ring::try_pop(&ring, &mut out));
        assert!(ring::try_pop(&ring, &mut out));
        assert_eq!(chunks(&out), vec![1, 2, 3], "FIFO order violated");
    });
    assert_clean(&report, "full-ring rejection");
}

/// Mutant: demoting the release `seq` stores to Relaxed breaks publication —
/// a consumer can accept a slot whose payload writes it cannot yet see. The
/// checker must find the torn/stale read.
#[test]
fn seq_store_release_mutant_is_caught() {
    let report = check_with(cfg(), || {
        let ring = Arc::new(TestRing::new(2));
        let weak = Weaken {
            inner: Arc::clone(&ring),
            demote_seq_store: true,
            demote_seq_load: false,
        };
        let producer = weak.clone();
        let t = thread::spawn(move || ring::try_push(&producer, &[7]));
        let mut out = Vec::new();
        for _ in 0..2 {
            ring::try_pop(&weak, &mut out);
        }
        t.join().expect("join producer");
        while ring::try_pop(&weak, &mut out) {}
        assert_eq!(chunks(&out), vec![7], "chunk lost");
    });
    assert_caught(&report, "the Relaxed-publication mutant");
}

/// Mutant: demoting the acquire `seq` loads to Relaxed breaks acceptance —
/// the consumer can see the published sequence word without the payload
/// bytes it guards. The checker must find the torn/stale read.
#[test]
fn seq_load_acquire_mutant_is_caught() {
    let report = check_with(cfg(), || {
        let ring = Arc::new(TestRing::new(2));
        let weak = Weaken {
            inner: Arc::clone(&ring),
            demote_seq_store: false,
            demote_seq_load: true,
        };
        let producer = weak.clone();
        let t = thread::spawn(move || ring::try_push(&producer, &[7]));
        let mut out = Vec::new();
        for _ in 0..2 {
            ring::try_pop(&weak, &mut out);
        }
        t.join().expect("join producer");
        while ring::try_pop(&weak, &mut out) {}
        assert_eq!(chunks(&out), vec![7], "chunk lost");
    });
    assert_caught(&report, "the Relaxed-acceptance mutant");
}

/// Replay determinism: the same seed explores the same schedules and pins
/// the same counterexample, bit for bit — `ST_CHECK_SEED` makes a CI
/// failure reproducible at a desk.
#[test]
fn ring_counterexample_replays_deterministically() {
    fn run() -> Report {
        // Fixed seed on purpose: this test pins exact traces, which the
        // env-var override would (correctly) change.
        let cfg = Config {
            seed: 41,
            ..Config::default()
        };
        check_with(cfg, || {
            let ring = Arc::new(TestRing::new(2));
            let weak = Weaken {
                inner: Arc::clone(&ring),
                demote_seq_store: true,
                demote_seq_load: false,
            };
            let producer = weak.clone();
            let t = thread::spawn(move || ring::try_push(&producer, &[7]));
            let mut out = Vec::new();
            for _ in 0..2 {
                ring::try_pop(&weak, &mut out);
            }
            t.join().expect("join producer");
            while ring::try_pop(&weak, &mut out) {}
            assert_eq!(chunks(&out), vec![7], "chunk lost");
        })
    }
    let (first, second) = (run(), run());
    let a = first.counterexample.expect("run 1 caught nothing");
    let b = second.counterexample.expect("run 2 caught nothing");
    assert_eq!(a.schedule, b.schedule, "schedules differ for equal seeds");
    assert_eq!(a.trace, b.trace, "traces differ for equal seeds");
    assert_eq!(a.message, b.message, "messages differ for equal seeds");
}
