//! # st-net
//!
//! Network substrate for the ShadowTutor reproduction.
//!
//! The paper runs the client and server over Wi-Fi with uplink and downlink
//! capped at 80 Mbps and studies how the system behaves when that bandwidth
//! shrinks (Figure 4). This crate models exactly the pieces the evaluation
//! needs:
//!
//! * [`link`] — a bandwidth/latency link model that converts message sizes
//!   into transfer times (`t_net` in the paper's Table 1), supporting
//!   asymmetric uplink/downlink and a base round-trip latency.
//! * [`message`] — the messages exchanged by the client and server (key
//!   frames up, weight diffs + metric down) and their wire sizes, which feed
//!   Table 4.
//! * [`wire`] — the versioned binary wire format: a hand-rolled
//!   little-endian encoding ([`wire::Wire`]) with magic + version framing
//!   and typed decode errors ([`wire::WireError`]). This is what actually
//!   crosses a process boundary, and what the measured traffic numbers
//!   (Tables 4/5) count.
//! * [`codec`] — the [`codec::Codec`] seam between messages and framed
//!   bytes; [`codec::WireCodec`] is the production implementation.
//! * [`transport`] — the [`transport::Transport`] backend seam and the
//!   [`transport::Endpoint`] protocol endpoint over it, constructed through
//!   the [`connect()`] builder. The default backend is the in-process
//!   channel pair ([`transport::DuplexTransport`]) with an optional delay
//!   injector so wall-clock runs can emulate a slow link.
//! * [`ring`] — the lock-free bounded-ring algorithm itself, generic over
//!   its storage ([`ring::RingMem`]): the shared-memory backend runs it over
//!   a mapped segment and the model-check suite runs the same code over
//!   instrumented atomics.
//! * [`shm`] — the cross-process backend: a lock-free circular-array ring
//!   over a file-backed shared-memory segment ([`shm::ShmTransport`]), so
//!   client and pool can run as separate OS processes.
//! * [`poll`] — a readiness interface ([`poll::Poller`] / [`poll::ReadySet`])
//!   for reactor-style consumers: wakeup tokens fire on send (see
//!   [`transport::DuplexTransport::wake_on_send`]) so one thread — or a
//!   fixed worker set — can multiplex thousands of mostly-idle endpoints
//!   without spinning `try_recv` or parking a thread per endpoint.
//!
//! The virtual-time runtime in the `shadowtutor` crate uses only [`link`] and
//! [`message`]; the threaded runtime uses [`transport`] as well.
//!
//! The multi-stream server pool additionally uses the stream-tagged
//! envelope ([`message::StreamTagged`]), the backpressure acks
//! ([`message::ServerToClient::Throttle`] / [`message::ServerToClient::Dropped`])
//! and the frame-cache recovery exchange
//! ([`message::ServerToClient::NeedFrame`] /
//! [`message::ClientToServer::ReShare`]); see `docs/ARCHITECTURE.md` at the
//! workspace root for how a key frame flows through them.

// Every public item of the wire-protocol crate must be documented: the
// messages *are* the protocol specification.
#![warn(missing_docs)]
// Unsafe operations inside `unsafe fn` bodies must be wrapped in explicit
// `unsafe {}` blocks (each carrying its own `// SAFETY:` comment — enforced
// by `st-lint`).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod codec;
pub mod link;
pub mod message;
pub mod poll;
pub mod ring;
pub mod shm;
pub mod transport;
pub mod wire;

pub use codec::{Codec, WireCodec};
pub use link::{Bandwidth, LinkModel};
pub use message::{
    ClientToServer, DropReason, KeyFrameTraffic, NaiveTraffic, Payload, ServerToClient, StreamId,
    StreamTagged,
};
pub use poll::{Poller, ReadySet, Waker};
pub use shm::{ShmConfig, ShmSide, ShmTransport};
pub use transport::{
    connect, ChannelClient, ChannelTransport, ClientEndpoint, Connector, DuplexTransport, Endpoint,
    ServerChannel, Transport, TransportError,
};
pub use wire::{Wire, WireError};

/// Result alias re-using the tensor error type for shape-ish failures.
pub type Result<T> = st_tensor::Result<T>;
