//! # st-net
//!
//! Network substrate for the ShadowTutor reproduction.
//!
//! The paper runs the client and server over Wi-Fi with uplink and downlink
//! capped at 80 Mbps and studies how the system behaves when that bandwidth
//! shrinks (Figure 4). This crate models exactly the pieces the evaluation
//! needs:
//!
//! * [`link`] — a bandwidth/latency link model that converts message sizes
//!   into transfer times (`t_net` in the paper's Table 1), supporting
//!   asymmetric uplink/downlink and a base round-trip latency.
//! * [`message`] — the messages exchanged by the client and server (key
//!   frames up, weight diffs + metric down) and their wire sizes, which feed
//!   Table 4.
//! * [`transport`] — a *live* transport built on crossbeam channels for the
//!   threaded runtime, with an optional delay injector so wall-clock runs can
//!   emulate a slow link.
//! * [`poll`] — a readiness interface ([`poll::Poller`] / [`poll::ReadySet`])
//!   for reactor-style consumers: wakeup tokens fire on send (see
//!   [`transport::DuplexTransport::wake_on_send`]) so one thread — or a
//!   fixed worker set — can multiplex thousands of mostly-idle endpoints
//!   without spinning `try_recv` or parking a thread per endpoint.
//!
//! The virtual-time runtime in the `shadowtutor` crate uses only [`link`] and
//! [`message`]; the threaded runtime uses [`transport`] as well.
//!
//! The multi-stream server pool additionally uses the stream-tagged
//! envelope ([`message::StreamTagged`]), the backpressure acks
//! ([`message::ServerToClient::Throttle`] / [`message::ServerToClient::Dropped`])
//! and the frame-cache recovery exchange
//! ([`message::ServerToClient::NeedFrame`] /
//! [`message::ClientToServer::ReShare`]); see `docs/ARCHITECTURE.md` at the
//! workspace root for how a key frame flows through them.

// Every public item of the wire-protocol crate must be documented: the
// messages *are* the protocol specification.
#![warn(missing_docs)]

pub mod link;
pub mod message;
pub mod poll;
pub mod transport;

pub use link::{Bandwidth, LinkModel};
pub use message::{
    ClientToServer, DropReason, KeyFrameTraffic, NaiveTraffic, Payload, ServerToClient, StreamId,
    StreamTagged,
};
pub use poll::{Poller, ReadySet, Waker};
pub use transport::{ClientEndpoint, DuplexTransport, TransportError};

/// Result alias re-using the tensor error type for shape-ish failures.
pub type Result<T> = st_tensor::Result<T>;
