//! Readiness interface over in-process transports.
//!
//! Crossbeam channels have no OS-pollable file descriptor, so a reactor
//! built on them needs its own wakeup plumbing: this module provides it.
//! A [`Poller`] owns a set of *tokens* (small integers — stream ids, shard
//! indices, whatever the caller multiplexes). Each token has a cheap,
//! cloneable [`Waker`] handle; calling [`Waker::wake`] marks the token
//! ready and rouses any thread blocked in [`Poller::poll`] /
//! [`Poller::poll_one`]. The intended wiring is *wake-on-send*: the sending
//! side of a channel wakes the receiving side's token right after every
//! send, so one thread can sleep on a single condition variable while
//! servicing thousands of mostly-idle endpoints — instead of spinning
//! `try_recv` across all of them or parking one OS thread per endpoint in
//! `recv_timeout`.
//!
//! [`DuplexTransport::wake_on_send`](crate::transport::DuplexTransport::wake_on_send)
//! attaches a waker to a transport endpoint so its peer's poller learns
//! about every message; the `shadowtutor` crate's server pool wires its
//! stream-tagged uplinks and downlinks the same way by hand.
//!
//! Readiness is *edge-ish*: a token is queued at most once until it is
//! returned by a poll, so a burst of sends costs one dispatch. Consumers
//! must therefore drain their channel completely when dispatched (the
//! standard readiness contract), or re-arm the token themselves with
//! [`Waker::wake`] when they stop early.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

// The sync facade: std's Mutex/Condvar in normal builds, the instrumented
// model-checking primitives under `--features model-check` (see the
// `st_check` crate). Production code is identical either way.
use st_check::sync::{Condvar, Mutex};

/// The readiness queue shared by a [`Poller`] and its [`Waker`]s.
struct PollShared {
    state: Mutex<PollState>,
    cond: Condvar,
}

struct PollState {
    /// Ready tokens in wake order (each at most once).
    queued: Vec<usize>,
    /// Membership set deduplicating `queued`.
    member: HashSet<usize>,
    /// Total [`Waker::wake`] calls that actually queued a token.
    wakeups: u64,
    /// Closed pollers return immediately from every poll.
    closed: bool,
}

/// A blocking readiness selector over wakeup tokens.
///
/// One `Poller` serves any number of producer-side [`Waker`]s and any
/// number of consumer threads (a single driver loop calling [`poll`], or a
/// fixed worker set each calling [`poll_one`]).
///
/// [`poll`]: Poller::poll
/// [`poll_one`]: Poller::poll_one
pub struct Poller {
    shared: Arc<PollShared>,
}

/// A cheap, cloneable handle that marks one token ready on its [`Poller`].
///
/// Send one to the producer side of a channel and call [`wake`](Waker::wake)
/// after every send.
#[derive(Clone)]
pub struct Waker {
    shared: Arc<PollShared>,
    token: usize,
}

/// One batch of ready tokens drained from a [`Poller::poll`] call, in wake
/// order, each token at most once.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ReadySet {
    tokens: Vec<usize>,
}

impl ReadySet {
    /// The ready tokens in wake order.
    pub fn tokens(&self) -> &[usize] {
        &self.tokens
    }

    /// Number of ready tokens in the batch.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the batch is empty (the poll timed out or the poller closed).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Whether `token` is in the batch.
    pub fn contains(&self, token: usize) -> bool {
        self.tokens.contains(&token)
    }
}

impl IntoIterator for ReadySet {
    type Item = usize;
    type IntoIter = std::vec::IntoIter<usize>;

    fn into_iter(self) -> Self::IntoIter {
        self.tokens.into_iter()
    }
}

impl Default for Poller {
    fn default() -> Self {
        Self::new()
    }
}

impl Poller {
    /// A poller with no ready tokens.
    pub fn new() -> Self {
        Poller {
            shared: Arc::new(PollShared {
                state: Mutex::new(PollState {
                    queued: Vec::new(),
                    member: HashSet::new(),
                    wakeups: 0,
                    closed: false,
                }),
                cond: Condvar::new(),
            }),
        }
    }

    /// A waker that marks `token` ready on this poller.
    pub fn waker(&self, token: usize) -> Waker {
        Waker {
            shared: Arc::clone(&self.shared),
            token,
        }
    }

    /// Block until at least one token is ready (or `timeout` passes, or the
    /// poller is closed) and drain the whole ready batch.
    ///
    /// An empty [`ReadySet`] means timeout or closure, never a spurious
    /// wakeup.
    pub fn poll(&self, timeout: Duration) -> ReadySet {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("poller lock");
        loop {
            if !state.queued.is_empty() {
                state.member.clear();
                return ReadySet {
                    tokens: std::mem::take(&mut state.queued),
                };
            }
            if state.closed {
                return ReadySet::default();
            }
            let now = Instant::now();
            if now >= deadline {
                return ReadySet::default();
            }
            let (next, timed_out) = self
                .shared
                .cond
                .wait_timeout(state, deadline - now)
                .expect("poller lock");
            state = next;
            if timed_out.timed_out() && state.queued.is_empty() {
                return ReadySet::default();
            }
        }
    }

    /// Block until one token is ready and take just that token, leaving the
    /// rest queued for other consumer threads.
    ///
    /// This is the fixed-worker-set entry point: each worker takes one ready
    /// token, services it, and comes back, so concurrent readiness spreads
    /// across the set instead of being drained by whichever thread polled
    /// first. Returns `None` on timeout or closure.
    pub fn poll_one(&self, timeout: Duration) -> Option<usize> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("poller lock");
        loop {
            if !state.queued.is_empty() {
                let token = state.queued.remove(0);
                state.member.remove(&token);
                return Some(token);
            }
            if state.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, timed_out) = self
                .shared
                .cond
                .wait_timeout(state, deadline - now)
                .expect("poller lock");
            state = next;
            if timed_out.timed_out() && state.queued.is_empty() {
                return None;
            }
        }
    }

    /// Total wake calls that queued a not-already-ready token so far.
    pub fn wakeups(&self) -> u64 {
        self.shared.state.lock().expect("poller lock").wakeups
    }

    /// Close the poller: every blocked and future poll returns empty
    /// immediately. Used for shutdown — consumer loops exit when a poll
    /// comes back empty and their work is done.
    pub fn close(&self) {
        let mut state = self.shared.state.lock().expect("poller lock");
        state.closed = true;
        self.shared.cond.notify_all();
    }

    /// Whether [`close`](Poller::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.shared.state.lock().expect("poller lock").closed
    }
}

impl Waker {
    /// Mark the token ready and rouse a blocked poller. Idempotent while the
    /// token is still queued: a burst of wakes costs one dispatch.
    pub fn wake(&self) {
        let mut state = self.shared.state.lock().expect("poller lock");
        if state.member.insert(self.token) {
            state.queued.push(self.token);
            state.wakeups += 1;
            self.shared.cond.notify_one();
        }
    }

    /// The token this waker marks ready.
    pub fn token(&self) -> usize {
        self.token
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.state.lock().expect("poller lock");
        f.debug_struct("Poller")
            .field("ready", &state.queued)
            .field("wakeups", &state.wakeups)
            .field("closed", &state.closed)
            .finish()
    }
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Waker").field("token", &self.token).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn wake_before_poll_is_not_lost() {
        let poller = Poller::new();
        poller.waker(3).wake();
        let ready = poller.poll(Duration::from_millis(1));
        assert_eq!(ready.tokens(), &[3]);
        assert!(ready.contains(3) && !ready.contains(4));
        assert_eq!(ready.len(), 1);
    }

    #[test]
    fn duplicate_wakes_coalesce_until_polled() {
        let poller = Poller::new();
        let waker = poller.waker(7);
        waker.wake();
        waker.wake();
        waker.wake();
        assert_eq!(poller.wakeups(), 1);
        assert_eq!(poller.poll(Duration::from_millis(1)).tokens(), &[7]);
        // After the poll the token can be queued again.
        waker.wake();
        assert_eq!(poller.wakeups(), 2);
        assert_eq!(poller.poll(Duration::from_millis(1)).tokens(), &[7]);
    }

    #[test]
    fn poll_preserves_wake_order_across_tokens() {
        let poller = Poller::new();
        poller.waker(2).wake();
        poller.waker(0).wake();
        poller.waker(5).wake();
        assert_eq!(poller.poll(Duration::from_millis(1)).tokens(), &[2, 0, 5]);
    }

    #[test]
    fn poll_times_out_empty() {
        let poller = Poller::new();
        let started = Instant::now();
        assert!(poller.poll(Duration::from_millis(20)).is_empty());
        assert!(started.elapsed() >= Duration::from_millis(20));
        assert_eq!(poller.poll_one(Duration::from_millis(1)), None);
    }

    #[test]
    fn poll_one_hands_tokens_to_distinct_callers() {
        let poller = Poller::new();
        poller.waker(1).wake();
        poller.waker(2).wake();
        assert_eq!(poller.poll_one(Duration::from_millis(1)), Some(1));
        assert_eq!(poller.poll_one(Duration::from_millis(1)), Some(2));
        assert_eq!(poller.poll_one(Duration::from_millis(1)), None);
    }

    #[test]
    fn cross_thread_wake_rouses_a_blocked_poll() {
        let poller = Poller::new();
        let waker = poller.waker(9);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            waker.wake();
        });
        let ready = poller.poll(Duration::from_secs(5));
        assert_eq!(ready.tokens(), &[9]);
        handle.join().unwrap();
    }

    #[test]
    fn close_releases_blocked_pollers() {
        let poller = Poller::new();
        let closer = poller.waker(0); // clone the shared state via a waker
        let _ = closer;
        assert!(!poller.is_closed());
        std::thread::scope(|scope| {
            let p = &poller;
            let t = scope.spawn(move || p.poll(Duration::from_secs(30)));
            std::thread::sleep(Duration::from_millis(10));
            p.close();
            assert!(t.join().unwrap().is_empty());
        });
        assert!(poller.is_closed());
        // Polls after closure return immediately.
        assert!(poller.poll(Duration::from_secs(30)).is_empty());
        assert_eq!(poller.poll_one(Duration::from_secs(30)), None);
    }

    #[test]
    fn ready_set_iterates_tokens() {
        let poller = Poller::new();
        poller.waker(4).wake();
        poller.waker(8).wake();
        let collected: Vec<usize> = poller.poll(Duration::from_millis(1)).into_iter().collect();
        assert_eq!(collected, vec![4, 8]);
    }
}
