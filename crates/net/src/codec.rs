//! Pluggable message ↔ frame codecs.
//!
//! A [`Codec`] turns a [`Wire`]-encodable message into a self-describing
//! byte frame and back. There is exactly one production codec today —
//! [`WireCodec`], the versioned binary format of [`crate::wire`] — but the
//! seam exists so an [`Endpoint`](crate::transport::Endpoint) can swap the
//! encoding (compression, encryption, a future v2 layout) without touching
//! the transport underneath or the protocol logic above.

use crate::wire::{self, Wire, WireError};

/// Encodes messages into framed bytes and decodes them back.
///
/// Implementations must be inverses (`decode(encode(m)) == Ok(m)`) and
/// [`Codec::frame_len`] must equal the length of the frame
/// [`Codec::encode`] produces, so transports can preallocate and the
/// traffic accounting can measure without encoding twice.
pub trait Codec {
    /// Encode `message` into one complete frame.
    fn encode<M: Wire>(&self, message: &M) -> Vec<u8>;

    /// Decode one complete frame back into a message.
    fn decode<M: Wire>(&self, frame: &[u8]) -> Result<M, WireError>;

    /// Exact frame size [`Codec::encode`] would produce for `message`.
    fn frame_len<M: Wire>(&self, message: &M) -> usize;
}

/// The versioned binary wire format: magic + version + length header, then
/// the hand-rolled little-endian body of [`crate::wire`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireCodec;

impl Codec for WireCodec {
    fn encode<M: Wire>(&self, message: &M) -> Vec<u8> {
        wire::encode_frame(message)
    }

    fn decode<M: Wire>(&self, frame: &[u8]) -> Result<M, WireError> {
        wire::decode_frame(frame)
    }

    fn frame_len<M: Wire>(&self, message: &M) -> usize {
        wire::frame_len(message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ClientToServer;

    #[test]
    fn wire_codec_round_trips_and_sizes() {
        let codec = WireCodec;
        let msg = ClientToServer::KeyFrame {
            frame_index: 3,
            payload: crate::message::Payload::sized(64),
        };
        let frame = codec.encode(&msg);
        assert_eq!(frame.len(), codec.frame_len(&msg));
        assert_eq!(codec.decode::<ClientToServer>(&frame).unwrap(), msg);
    }
}
