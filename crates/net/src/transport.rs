//! Live duplex transports and the [`Transport`]/[`Endpoint`] seam.
//!
//! The threaded runtime runs the client and the server as real OS threads
//! (the paper uses OpenMPI ranks) or — with the shared-memory backend in
//! [`crate::shm`] — as separate OS processes. The pieces compose in three
//! layers:
//!
//! * [`Transport`] — the backend seam: a duplex mover of protocol messages.
//!   [`DuplexTransport`] is the in-process channel backend (the default,
//!   bit-identical to the pre-seam behaviour);
//!   [`ShmTransport`](crate::shm::ShmTransport) moves real encoded frames
//!   through a lock-free shared-memory ring between processes.
//! * [`Endpoint`] — a protocol endpoint over any backend, pairing a
//!   [`Codec`] with a [`Transport`] and keeping byte-honest accounting
//!   ([`Endpoint::wire_sent_bytes`] / [`Endpoint::wire_received_bytes`]
//!   measure the *framed binary encoding* of every message that passes,
//!   whichever backend carries it).
//! * [`ClientEndpoint`] — the trait Algorithm 4's client loop is written
//!   against. It is now a thin veneer over `Endpoint<C, T>`: the blanket
//!   implementation below makes every `Endpoint` a `ClientEndpoint`, and
//!   [`ChannelClient`] names the default concrete shape. Construct either
//!   through the [`connect()`] builder.
//!
//! An optional [`DelayInjector`] emulates a bandwidth-limited link by
//! sleeping proportionally to the message size before delivery — which is
//! how the live examples demonstrate the robustness experiment without real
//! network hardware.

use crate::codec::{Codec, WireCodec};
use crate::link::LinkModel;
use crate::message::{ClientToServer, ServerToClient};
use crate::wire::Wire;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::fmt;
use std::time::Duration;

/// Errors produced by the live transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer endpoint has been dropped.
    Disconnected,
    /// A blocking receive timed out.
    Timeout,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "transport peer disconnected"),
            TransportError::Timeout => write!(f, "transport receive timed out"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Optional artificial delay applied before each send, emulating a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayInjector {
    /// The link whose transfer time is emulated.
    pub link: LinkModel,
    /// Whether this endpoint sends over the uplink (client side) or the
    /// downlink (server side).
    pub is_uplink: bool,
    /// Scale factor on the computed delay (1.0 = real time; smaller values
    /// speed up demonstrations while preserving relative behaviour).
    pub time_scale: f64,
}

impl DelayInjector {
    /// Delay to apply for a message of `bytes` bytes.
    pub fn delay_for(&self, bytes: usize) -> Duration {
        let t = if self.is_uplink {
            self.link.uplink_time(bytes)
        } else {
            self.link.downlink_time(bytes)
        };
        Duration::from_secs_f64((t * self.time_scale).max(0.0))
    }
}

/// The backend seam: a duplex mover of typed protocol messages.
///
/// `S` is what this side sends, `R` what it receives. Two backends exist:
/// the in-process [`DuplexTransport`] (typed crossbeam channels, the
/// default) and the cross-process [`ShmTransport`](crate::shm::ShmTransport)
/// (every message crosses as its framed binary encoding through a
/// lock-free shared-memory ring). Protocol code never talks to a backend
/// directly — it goes through an [`Endpoint`], which adds the codec and the
/// byte accounting.
pub trait Transport<S, R> {
    /// Send a message annotated with its *modelled* wire size (the size the
    /// virtual-time link model charges; measured bytes are the
    /// [`Endpoint`]'s business).
    fn send(&mut self, message: S, bytes: usize) -> Result<(), TransportError>;

    /// Non-blocking receive. `Ok(None)` means no message is waiting.
    fn try_recv(&mut self) -> Result<Option<R>, TransportError>;

    /// Blocking receive with a timeout.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<R, TransportError>;

    /// Arrange for `waker.wake()` to fire whenever a message becomes
    /// receivable on this endpoint, returning `true` if the backend can
    /// signal receiver-side readiness. The shared-memory backend spawns a
    /// spin-then-park notifier; the channel backend returns `false` because
    /// its readiness is wired at pair-creation time from the *sender* side
    /// ([`DuplexTransport::wake_on_send`] on the peer), which the
    /// [`connect()`] builder does for you.
    fn wake_on_message(&mut self, waker: crate::poll::Waker) -> bool {
        let _ = waker;
        false
    }
}

/// The client-side view of a transport: what Algorithm 4's message loop
/// needs, independently of whether the peer is a dedicated server thread
/// (the single-stream [`DuplexTransport`]) or a stream-multiplexed worker
/// pool (the `shadowtutor` crate's `StreamClient`).
///
/// Since the codec/transport redesign this trait is a thin veneer over
/// [`Endpoint`]: every `Endpoint<C, T>` implements it via the blanket impl
/// below, and [`ChannelClient`] is the default concrete shape produced by
/// [`connect()`]. The trait itself survives for the places that implement
/// the protocol without a backend at all (the pool's `StreamClient`,
/// scripted endpoints in tests).
pub trait ClientEndpoint {
    /// Send a client → server message annotated with its wire size.
    fn send(&mut self, message: crate::ClientToServer, bytes: usize) -> Result<(), TransportError>;

    /// Non-blocking receive. `Ok(None)` means no message is waiting.
    fn try_recv(&mut self) -> Result<Option<crate::ServerToClient>, TransportError>;

    /// Blocking receive with a timeout.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<crate::ServerToClient, TransportError>;

    /// Attempt to re-establish a dropped connection. The default refuses —
    /// most endpoints (a channel pair, a shared-memory ring) cannot re-dial
    /// a dead peer. Endpoints that *can* (the pool's `StreamClient`, whose
    /// route is re-pointed at a warm standby during failover) override this;
    /// `Ok(())` means the endpoint is usable again and the caller may resume
    /// sending. Callers retry with backoff, not in a tight loop.
    fn reconnect(&mut self) -> Result<(), TransportError> {
        Err(TransportError::Disconnected)
    }
}

impl ClientEndpoint for DuplexTransport<crate::ClientToServer, crate::ServerToClient> {
    fn send(&mut self, message: crate::ClientToServer, bytes: usize) -> Result<(), TransportError> {
        DuplexTransport::send(self, message, bytes)
    }

    fn try_recv(&mut self) -> Result<Option<crate::ServerToClient>, TransportError> {
        DuplexTransport::try_recv(self)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<crate::ServerToClient, TransportError> {
        DuplexTransport::recv_timeout(self, timeout)
    }
}

/// One endpoint of a bidirectional, typed channel pair.
#[derive(Debug)]
pub struct DuplexTransport<TSend, TRecv> {
    tx: Sender<(usize, TSend)>,
    rx: Receiver<(usize, TRecv)>,
    delay: Option<DelayInjector>,
    /// Readiness hook: woken after every send so the *peer's* poller learns
    /// a message is waiting (see [`DuplexTransport::wake_on_send`]).
    waker: Option<crate::poll::Waker>,
    sent_bytes: usize,
    received_bytes: usize,
    sent_messages: usize,
    received_messages: usize,
}

impl<TSend, TRecv> DuplexTransport<TSend, TRecv> {
    /// Create a connected pair of endpoints: `(a, b)` where messages sent on
    /// `a` arrive at `b` and vice versa.
    pub fn pair() -> (DuplexTransport<TSend, TRecv>, DuplexTransport<TRecv, TSend>) {
        let (tx_ab, rx_ab) = unbounded();
        let (tx_ba, rx_ba) = unbounded();
        (
            DuplexTransport {
                tx: tx_ab,
                rx: rx_ba,
                delay: None,
                waker: None,
                sent_bytes: 0,
                received_bytes: 0,
                sent_messages: 0,
                received_messages: 0,
            },
            DuplexTransport {
                tx: tx_ba,
                rx: rx_ab,
                delay: None,
                waker: None,
                sent_bytes: 0,
                received_bytes: 0,
                sent_messages: 0,
                received_messages: 0,
            },
        )
    }

    /// Attach a delay injector to this endpoint's sends.
    pub fn with_delay(mut self, delay: DelayInjector) -> Self {
        self.delay = Some(delay);
        self
    }

    /// Attach a readiness waker fired after every send on *this* endpoint,
    /// so the peer's [`crate::poll::Poller`] learns a message is waiting.
    /// This is how a reactor multiplexes many transports: each peer
    /// registers a token for its counterpart's sender and sleeps in one
    /// `poll` instead of blocking per endpoint.
    pub fn wake_on_send(mut self, waker: crate::poll::Waker) -> Self {
        self.waker = Some(waker);
        self
    }

    /// Send a message annotated with its wire size in bytes.
    ///
    /// When a delay injector is attached the call sleeps for the emulated
    /// transfer time before the message becomes available to the peer
    /// (approximating a store-and-forward link).
    pub fn send(&mut self, message: TSend, bytes: usize) -> Result<(), TransportError> {
        if let Some(delay) = &self.delay {
            std::thread::sleep(delay.delay_for(bytes));
        }
        self.tx
            .send((bytes, message))
            .map_err(|_| TransportError::Disconnected)?;
        if let Some(waker) = &self.waker {
            waker.wake();
        }
        self.sent_bytes += bytes;
        self.sent_messages += 1;
        Ok(())
    }

    /// Non-blocking receive. `Ok(None)` means no message is waiting.
    pub fn try_recv(&mut self) -> Result<Option<TRecv>, TransportError> {
        match self.rx.try_recv() {
            Ok((bytes, msg)) => {
                self.received_bytes += bytes;
                self.received_messages += 1;
                Ok(Some(msg))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Disconnected),
        }
    }

    /// Blocking receive with a timeout.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<TRecv, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok((bytes, msg)) => {
                self.received_bytes += bytes;
                self.received_messages += 1;
                Ok(msg)
            }
            Err(RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }

    /// Total bytes sent so far.
    pub fn sent_bytes(&self) -> usize {
        self.sent_bytes
    }

    /// Total bytes received so far.
    pub fn received_bytes(&self) -> usize {
        self.received_bytes
    }

    /// Number of messages sent so far.
    pub fn sent_messages(&self) -> usize {
        self.sent_messages
    }

    /// Number of messages received so far.
    pub fn received_messages(&self) -> usize {
        self.received_messages
    }
}

impl<S, R> Transport<S, R> for DuplexTransport<S, R> {
    fn send(&mut self, message: S, bytes: usize) -> Result<(), TransportError> {
        DuplexTransport::send(self, message, bytes)
    }

    fn try_recv(&mut self) -> Result<Option<R>, TransportError> {
        DuplexTransport::try_recv(self)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<R, TransportError> {
        DuplexTransport::recv_timeout(self, timeout)
    }
}

/// A protocol endpoint: a [`Codec`] over a [`Transport`] backend, with
/// byte-honest accounting.
///
/// The endpoint counts the *framed binary encoding* of every message that
/// passes through it ([`Endpoint::wire_sent_bytes`] /
/// [`Endpoint::wire_received_bytes`]), whichever backend carries the
/// message — for the shared-memory backend those bytes physically crossed
/// the ring; for the in-process channel backend they are what *would* cross
/// a real link, measured from the same encoder. This is what makes the
/// Table 4/5 traffic numbers measured rather than modelled.
///
/// Construct endpoints through the [`connect()`] builder.
#[derive(Debug)]
pub struct Endpoint<C: Codec, T> {
    codec: C,
    transport: T,
    wire_sent_bytes: usize,
    wire_received_bytes: usize,
}

/// The default client transport: typed in-process channels.
pub type ChannelTransport = DuplexTransport<ClientToServer, ServerToClient>;

/// The server-side counterpart of [`ChannelTransport`].
pub type ServerChannel = DuplexTransport<ServerToClient, ClientToServer>;

/// The default concrete client endpoint: the versioned binary codec over
/// the in-process channel backend. This is what "`ClientEndpoint`" means
/// when nothing else is specified — the thin alias the redesign collapsed
/// the ad-hoc endpoint shapes into.
pub type ChannelClient = Endpoint<WireCodec, ChannelTransport>;

impl<C: Codec, T> Endpoint<C, T> {
    /// Wrap `transport` with `codec`. Prefer [`connect()`] unless you are
    /// assembling an exotic combination by hand.
    pub fn new(codec: C, transport: T) -> Self {
        Endpoint {
            codec,
            transport,
            wire_sent_bytes: 0,
            wire_received_bytes: 0,
        }
    }

    /// Measured bytes sent: the sum of the framed encodings of every
    /// message sent through this endpoint.
    pub fn wire_sent_bytes(&self) -> usize {
        self.wire_sent_bytes
    }

    /// Measured bytes received: the sum of the framed encodings of every
    /// message received through this endpoint.
    pub fn wire_received_bytes(&self) -> usize {
        self.wire_received_bytes
    }

    /// Borrow the backend (e.g. for its own counters).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Mutably borrow the backend.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Unwrap the backend.
    pub fn into_transport(self) -> T {
        self.transport
    }
}

impl<C, T> ClientEndpoint for Endpoint<C, T>
where
    C: Codec,
    T: Transport<ClientToServer, ServerToClient>,
{
    fn send(&mut self, message: ClientToServer, bytes: usize) -> Result<(), TransportError> {
        self.wire_sent_bytes += self.codec.frame_len(&message);
        self.transport.send(message, bytes)
    }

    fn try_recv(&mut self) -> Result<Option<ServerToClient>, TransportError> {
        let received = self.transport.try_recv()?;
        if let Some(message) = &received {
            self.wire_received_bytes += self.codec.frame_len(message);
        }
        Ok(received)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<ServerToClient, TransportError> {
        let message = self.transport.recv_timeout(timeout)?;
        self.wire_received_bytes += self.codec.frame_len(&message);
        Ok(message)
    }
}

/// Start building a client connection — the single constructor surface for
/// every endpoint shape.
///
/// ```
/// use st_net::{connect, ClientEndpoint, ClientToServer, Poller};
/// use std::time::Duration;
///
/// // Default in-process backend: a connected (client, server) pair.
/// let poller = Poller::new();
/// let (mut client, mut server) = connect().with_waker(poller.waker(0)).channel();
/// client.send(ClientToServer::Register, 64).unwrap();
/// let registered = server.recv_timeout(Duration::from_secs(1)).unwrap();
/// assert_eq!(registered, ClientToServer::Register);
/// ```
///
/// For the cross-process backend, hand the builder a transport:
/// `connect().with_transport(shm_transport)`.
pub fn connect() -> Connector {
    Connector {
        waker: None,
        uplink_delay: None,
        downlink_delay: None,
    }
}

/// Builder returned by [`connect()`].
#[derive(Debug, Default)]
pub struct Connector {
    waker: Option<crate::poll::Waker>,
    uplink_delay: Option<DelayInjector>,
    downlink_delay: Option<DelayInjector>,
}

impl Connector {
    /// Wake this [`Poller`](crate::poll::Poller) token whenever a
    /// server → client message becomes receivable, so a reactor can
    /// multiplex many clients from one thread.
    pub fn with_waker(mut self, waker: crate::poll::Waker) -> Self {
        self.waker = Some(waker);
        self
    }

    /// Emulate a bandwidth-limited link on client → server sends.
    pub fn with_delay(mut self, delay: DelayInjector) -> Self {
        self.uplink_delay = Some(delay);
        self
    }

    /// Emulate a bandwidth-limited link on server → client sends
    /// (channel backend only — the server half is created by
    /// [`Connector::channel`]).
    pub fn with_downlink_delay(mut self, delay: DelayInjector) -> Self {
        self.downlink_delay = Some(delay);
        self
    }

    /// Finish with the default in-process channel backend, returning the
    /// client endpoint and the server-side channel half.
    pub fn channel(self) -> (ChannelClient, ServerChannel) {
        let (mut client_side, mut server_side) = DuplexTransport::pair();
        if let Some(delay) = self.uplink_delay {
            client_side = client_side.with_delay(delay);
        }
        if let Some(delay) = self.downlink_delay {
            server_side = server_side.with_delay(delay);
        }
        if let Some(waker) = self.waker {
            // Channel readiness is sender-side: the server half wakes the
            // client's poller token on every downlink send.
            server_side = server_side.wake_on_send(waker);
        }
        (Endpoint::new(WireCodec, client_side), server_side)
    }

    /// Finish with an explicit backend (e.g.
    /// [`ShmTransport`](crate::shm::ShmTransport) for the cross-process
    /// ring). A waker set with [`Connector::with_waker`] is handed to
    /// [`Transport::wake_on_message`]; a downlink delay cannot apply here
    /// (the server half lives elsewhere) and is ignored.
    pub fn with_transport<T>(self, mut transport: T) -> Endpoint<WireCodec, T>
    where
        T: Transport<ClientToServer, ServerToClient>,
    {
        if let Some(waker) = self.waker {
            transport.wake_on_message(waker);
        }
        Endpoint::new(WireCodec, transport)
    }
}

/// Measured framed size of a message, as the [`Endpoint`] accounting
/// counts it — a convenience re-export of
/// [`wire::frame_len`](crate::wire::frame_len) under the name the traffic
/// tables use.
pub fn wire_frame_len<M: Wire>(message: &M) -> usize {
    crate::wire::frame_len(message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_delivers_messages_both_ways() {
        let (mut a, mut b) = DuplexTransport::<String, u32>::pair();
        a.send("hello".to_string(), 5).unwrap();
        let got = b.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(got, "hello");
        b.send(42u32, 4).unwrap();
        assert_eq!(a.try_recv().unwrap(), Some(42));
        assert_eq!(a.try_recv().unwrap(), None);
        assert_eq!(a.sent_bytes(), 5);
        assert_eq!(a.received_bytes(), 4);
        assert_eq!(b.sent_messages(), 1);
        assert_eq!(b.received_messages(), 1);
    }

    #[test]
    fn disconnected_peer_is_reported() {
        let (mut a, b) = DuplexTransport::<u8, u8>::pair();
        drop(b);
        assert_eq!(a.send(1, 1), Err(TransportError::Disconnected));
        assert_eq!(a.try_recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn recv_timeout_expires() {
        let (mut a, _b) = DuplexTransport::<u8, u8>::pair();
        let err = a.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, TransportError::Timeout);
    }

    #[test]
    fn delay_injector_scales_with_size_and_direction() {
        let link = LinkModel::symmetric_mbps(8.0); // 1 MB/s
        let up = DelayInjector {
            link,
            is_uplink: true,
            time_scale: 1.0,
        };
        let d_small = up.delay_for(10_000);
        let d_big = up.delay_for(100_000);
        assert!(d_big > d_small);
        let scaled = DelayInjector {
            time_scale: 0.1,
            ..up
        };
        assert!(scaled.delay_for(100_000) < d_big);
    }

    #[test]
    fn wake_on_send_marks_the_peer_ready() {
        use crate::poll::Poller;
        let poller = Poller::new();
        let (a, mut b) = DuplexTransport::<u8, u8>::pair();
        // Token 0 stands for endpoint `b`'s readiness; endpoint `a` wakes it
        // on every send. A reactor multiplexing many `b`-side endpoints
        // sleeps in one poll instead of blocking per endpoint.
        let mut a = a.wake_on_send(poller.waker(0));
        assert!(poller.poll(Duration::from_millis(1)).is_empty());
        a.send(42, 1).unwrap();
        let ready = poller.poll(Duration::from_secs(1));
        assert_eq!(ready.tokens(), &[0]);
        assert_eq!(b.try_recv().unwrap(), Some(42));
    }

    #[test]
    fn threaded_ping_pong() {
        let (mut a, mut b) = DuplexTransport::<u32, u32>::pair();
        let handle = std::thread::spawn(move || {
            // Echo server: receive n, send n+1, stop at 5 messages.
            for _ in 0..5 {
                let n = b.recv_timeout(Duration::from_secs(1)).unwrap();
                b.send(n + 1, 4).unwrap();
            }
            b.received_messages()
        });
        let mut value = 0u32;
        for _ in 0..5 {
            a.send(value, 4).unwrap();
            value = a.recv_timeout(Duration::from_secs(1)).unwrap();
        }
        assert_eq!(value, 5);
        assert_eq!(handle.join().unwrap(), 5);
    }
}
