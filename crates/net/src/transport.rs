//! Live duplex transport built on crossbeam channels.
//!
//! The threaded runtime runs the client and the server as real OS threads
//! (the paper uses OpenMPI ranks). [`DuplexTransport::pair`] creates the two
//! connected endpoints. Each endpoint can send and receive, non-blockingly or
//! blockingly, and an optional [`DelayInjector`] emulates a bandwidth-limited
//! link by sleeping proportionally to the message size before delivery —
//! which is how the live examples demonstrate the robustness experiment
//! without real network hardware.

use crate::link::LinkModel;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::fmt;
use std::time::Duration;

/// Errors produced by the live transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer endpoint has been dropped.
    Disconnected,
    /// A blocking receive timed out.
    Timeout,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "transport peer disconnected"),
            TransportError::Timeout => write!(f, "transport receive timed out"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Optional artificial delay applied before each send, emulating a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayInjector {
    /// The link whose transfer time is emulated.
    pub link: LinkModel,
    /// Whether this endpoint sends over the uplink (client side) or the
    /// downlink (server side).
    pub is_uplink: bool,
    /// Scale factor on the computed delay (1.0 = real time; smaller values
    /// speed up demonstrations while preserving relative behaviour).
    pub time_scale: f64,
}

impl DelayInjector {
    /// Delay to apply for a message of `bytes` bytes.
    pub fn delay_for(&self, bytes: usize) -> Duration {
        let t = if self.is_uplink {
            self.link.uplink_time(bytes)
        } else {
            self.link.downlink_time(bytes)
        };
        Duration::from_secs_f64((t * self.time_scale).max(0.0))
    }
}

/// The client-side view of a transport: what Algorithm 4's message loop
/// needs, independently of whether the peer is a dedicated server thread
/// (the single-stream [`DuplexTransport`]) or a stream-multiplexed worker
/// pool (the `shadowtutor` crate's `StreamClient`).
pub trait ClientEndpoint {
    /// Send a client → server message annotated with its wire size.
    fn send(&mut self, message: crate::ClientToServer, bytes: usize) -> Result<(), TransportError>;

    /// Non-blocking receive. `Ok(None)` means no message is waiting.
    fn try_recv(&mut self) -> Result<Option<crate::ServerToClient>, TransportError>;

    /// Blocking receive with a timeout.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<crate::ServerToClient, TransportError>;
}

impl ClientEndpoint for DuplexTransport<crate::ClientToServer, crate::ServerToClient> {
    fn send(&mut self, message: crate::ClientToServer, bytes: usize) -> Result<(), TransportError> {
        DuplexTransport::send(self, message, bytes)
    }

    fn try_recv(&mut self) -> Result<Option<crate::ServerToClient>, TransportError> {
        DuplexTransport::try_recv(self)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<crate::ServerToClient, TransportError> {
        DuplexTransport::recv_timeout(self, timeout)
    }
}

/// One endpoint of a bidirectional, typed channel pair.
#[derive(Debug)]
pub struct DuplexTransport<TSend, TRecv> {
    tx: Sender<(usize, TSend)>,
    rx: Receiver<(usize, TRecv)>,
    delay: Option<DelayInjector>,
    /// Readiness hook: woken after every send so the *peer's* poller learns
    /// a message is waiting (see [`DuplexTransport::wake_on_send`]).
    waker: Option<crate::poll::Waker>,
    sent_bytes: usize,
    received_bytes: usize,
    sent_messages: usize,
    received_messages: usize,
}

impl<TSend, TRecv> DuplexTransport<TSend, TRecv> {
    /// Create a connected pair of endpoints: `(a, b)` where messages sent on
    /// `a` arrive at `b` and vice versa.
    pub fn pair() -> (DuplexTransport<TSend, TRecv>, DuplexTransport<TRecv, TSend>) {
        let (tx_ab, rx_ab) = unbounded();
        let (tx_ba, rx_ba) = unbounded();
        (
            DuplexTransport {
                tx: tx_ab,
                rx: rx_ba,
                delay: None,
                waker: None,
                sent_bytes: 0,
                received_bytes: 0,
                sent_messages: 0,
                received_messages: 0,
            },
            DuplexTransport {
                tx: tx_ba,
                rx: rx_ab,
                delay: None,
                waker: None,
                sent_bytes: 0,
                received_bytes: 0,
                sent_messages: 0,
                received_messages: 0,
            },
        )
    }

    /// Attach a delay injector to this endpoint's sends.
    pub fn with_delay(mut self, delay: DelayInjector) -> Self {
        self.delay = Some(delay);
        self
    }

    /// Attach a readiness waker fired after every send on *this* endpoint,
    /// so the peer's [`crate::poll::Poller`] learns a message is waiting.
    /// This is how a reactor multiplexes many transports: each peer
    /// registers a token for its counterpart's sender and sleeps in one
    /// `poll` instead of blocking per endpoint.
    pub fn wake_on_send(mut self, waker: crate::poll::Waker) -> Self {
        self.waker = Some(waker);
        self
    }

    /// Send a message annotated with its wire size in bytes.
    ///
    /// When a delay injector is attached the call sleeps for the emulated
    /// transfer time before the message becomes available to the peer
    /// (approximating a store-and-forward link).
    pub fn send(&mut self, message: TSend, bytes: usize) -> Result<(), TransportError> {
        if let Some(delay) = &self.delay {
            std::thread::sleep(delay.delay_for(bytes));
        }
        self.tx
            .send((bytes, message))
            .map_err(|_| TransportError::Disconnected)?;
        if let Some(waker) = &self.waker {
            waker.wake();
        }
        self.sent_bytes += bytes;
        self.sent_messages += 1;
        Ok(())
    }

    /// Non-blocking receive. `Ok(None)` means no message is waiting.
    pub fn try_recv(&mut self) -> Result<Option<TRecv>, TransportError> {
        match self.rx.try_recv() {
            Ok((bytes, msg)) => {
                self.received_bytes += bytes;
                self.received_messages += 1;
                Ok(Some(msg))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Disconnected),
        }
    }

    /// Blocking receive with a timeout.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<TRecv, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok((bytes, msg)) => {
                self.received_bytes += bytes;
                self.received_messages += 1;
                Ok(msg)
            }
            Err(RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }

    /// Total bytes sent so far.
    pub fn sent_bytes(&self) -> usize {
        self.sent_bytes
    }

    /// Total bytes received so far.
    pub fn received_bytes(&self) -> usize {
        self.received_bytes
    }

    /// Number of messages sent so far.
    pub fn sent_messages(&self) -> usize {
        self.sent_messages
    }

    /// Number of messages received so far.
    pub fn received_messages(&self) -> usize {
        self.received_messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_delivers_messages_both_ways() {
        let (mut a, mut b) = DuplexTransport::<String, u32>::pair();
        a.send("hello".to_string(), 5).unwrap();
        let got = b.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(got, "hello");
        b.send(42u32, 4).unwrap();
        assert_eq!(a.try_recv().unwrap(), Some(42));
        assert_eq!(a.try_recv().unwrap(), None);
        assert_eq!(a.sent_bytes(), 5);
        assert_eq!(a.received_bytes(), 4);
        assert_eq!(b.sent_messages(), 1);
        assert_eq!(b.received_messages(), 1);
    }

    #[test]
    fn disconnected_peer_is_reported() {
        let (mut a, b) = DuplexTransport::<u8, u8>::pair();
        drop(b);
        assert_eq!(a.send(1, 1), Err(TransportError::Disconnected));
        assert_eq!(a.try_recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn recv_timeout_expires() {
        let (mut a, _b) = DuplexTransport::<u8, u8>::pair();
        let err = a.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, TransportError::Timeout);
    }

    #[test]
    fn delay_injector_scales_with_size_and_direction() {
        let link = LinkModel::symmetric_mbps(8.0); // 1 MB/s
        let up = DelayInjector {
            link,
            is_uplink: true,
            time_scale: 1.0,
        };
        let d_small = up.delay_for(10_000);
        let d_big = up.delay_for(100_000);
        assert!(d_big > d_small);
        let scaled = DelayInjector {
            time_scale: 0.1,
            ..up
        };
        assert!(scaled.delay_for(100_000) < d_big);
    }

    #[test]
    fn wake_on_send_marks_the_peer_ready() {
        use crate::poll::Poller;
        let poller = Poller::new();
        let (a, mut b) = DuplexTransport::<u8, u8>::pair();
        // Token 0 stands for endpoint `b`'s readiness; endpoint `a` wakes it
        // on every send. A reactor multiplexing many `b`-side endpoints
        // sleeps in one poll instead of blocking per endpoint.
        let mut a = a.wake_on_send(poller.waker(0));
        assert!(poller.poll(Duration::from_millis(1)).is_empty());
        a.send(42, 1).unwrap();
        let ready = poller.poll(Duration::from_secs(1));
        assert_eq!(ready.tokens(), &[0]);
        assert_eq!(b.try_recv().unwrap(), Some(42));
    }

    #[test]
    fn threaded_ping_pong() {
        let (mut a, mut b) = DuplexTransport::<u32, u32>::pair();
        let handle = std::thread::spawn(move || {
            // Echo server: receive n, send n+1, stop at 5 messages.
            for _ in 0..5 {
                let n = b.recv_timeout(Duration::from_secs(1)).unwrap();
                b.send(n + 1, 4).unwrap();
            }
            b.received_messages()
        });
        let mut value = 0u32;
        for _ in 0..5 {
            a.send(value, 4).unwrap();
            value = a.recv_timeout(Duration::from_secs(1)).unwrap();
        }
        assert_eq!(value, 5);
        assert_eq!(handle.join().unwrap(), 5);
    }
}
