//! The versioned binary wire format of the ShadowTutor protocol.
//!
//! Every message that crosses a process boundary is encoded by hand into an
//! explicit little-endian byte layout — no derive magic, no schema compiler,
//! in the same spirit as the hand-rolled JSON writer in `st_bench::json`.
//! The format is the protocol specification:
//!
//! ```text
//! frame     := magic(4) version(1) body_len(4, LE u32) body
//! magic     := "STWP" (0x53 0x54 0x57 0x50)
//! version   := 0x01
//! body      := one Wire-encoded message
//!
//! u8/u16/u32/u64 : little-endian, fixed width
//! usize          : encoded as u64
//! f32/f64        : IEEE-754 bits, little-endian
//! bool           : one byte, 0 or 1 (anything else is InvalidValue)
//! string         : u32 byte length + UTF-8 bytes
//! bytes          : u32 byte length + raw bytes
//! Option<T>      : u8 tag (0 = None, 1 = Some) + payload if Some
//! Vec<T>         : u32 element count + elements
//! enum           : u8 variant tag + variant fields in declaration order
//! ```
//!
//! Decoding never panics: every failure mode is a typed [`WireError`] —
//! truncation, a flipped magic byte, a frame from a future protocol
//! version, an unknown enum variant, or a value outside its domain.
//!
//! The [`Wire`] trait is deliberately symmetrical ([`Wire::encode_into`] /
//! [`Wire::decode`]) and sized ([`Wire::encoded_len`]) so transports can
//! preallocate exact buffers and the traffic accounting (Tables 4/5) can
//! report *measured* wire bytes instead of modelled estimates.

use crate::message::{
    ClientToServer, DropReason, KeyFrameTraffic, NaiveTraffic, Payload, ServerToClient,
    StreamTagged,
};
use bytes::Bytes;
use std::fmt;

/// The 4-byte magic prefix of every framed message: `"STWP"`.
pub const WIRE_MAGIC: [u8; 4] = *b"STWP";

/// The current protocol version. Decoders reject frames from later versions
/// with [`WireError::UnsupportedVersion`] instead of misinterpreting bytes.
pub const WIRE_VERSION: u8 = 1;

/// Bytes of framing prepended to each message body: magic (4), version (1),
/// body length (4).
pub const FRAME_HEADER_BYTES: usize = 9;

/// Typed decode failures. Every decoding path returns one of these — the
/// decoder never panics on attacker-controlled (or merely corrupted) bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated {
        /// Bytes the decoder needed to make progress.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// The frame did not start with [`WIRE_MAGIC`].
    BadMagic {
        /// The four bytes found where the magic was expected.
        found: [u8; 4],
    },
    /// The frame was produced by a protocol version this decoder does not
    /// understand (greater than [`WIRE_VERSION`]).
    UnsupportedVersion {
        /// The version byte found in the frame header.
        found: u8,
    },
    /// An enum tag byte did not name any known variant of the target type.
    UnknownVariant {
        /// The type being decoded.
        type_name: &'static str,
        /// The unrecognised tag byte.
        tag: u8,
    },
    /// A field decoded to a value outside its domain (a non-boolean bool
    /// byte, a non-UTF-8 string, a length that overflows the buffer…).
    InvalidValue {
        /// What was wrong, in protocol terms.
        what: &'static str,
    },
    /// The body was longer than the value it encoded — a framing bug on the
    /// sending side or bytes from a different message type.
    TrailingBytes {
        /// Bytes left over after the value decoded.
        remaining: usize,
    },
    /// A weight delta named a base checkpoint this receiver has never held —
    /// it cannot be applied against anything; the sender must fall back to a
    /// full snapshot.
    UnknownBaseCheckpoint {
        /// The combined checkpoint hash the delta was computed against.
        base: u64,
    },
    /// A weight delta was computed against a checkpoint the receiver *used*
    /// to hold but has since advanced past (a missed or re-ordered update) —
    /// applying it would silently corrupt the weights.
    StaleBaseCheckpoint {
        /// The superseded combined checkpoint hash the delta named.
        base: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated wire data: needed {needed} bytes, {available} available"
                )
            }
            WireError::BadMagic { found } => write!(f, "bad wire magic {found:02x?}"),
            WireError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported wire version {found} (supported: {WIRE_VERSION})"
                )
            }
            WireError::UnknownVariant { type_name, tag } => {
                write!(f, "unknown {type_name} variant tag {tag}")
            }
            WireError::InvalidValue { what } => write!(f, "invalid wire value: {what}"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decoded value")
            }
            WireError::UnknownBaseCheckpoint { base } => {
                write!(
                    f,
                    "weight delta against unknown base checkpoint {base:#018x}"
                )
            }
            WireError::StaleBaseCheckpoint { base } => {
                write!(f, "weight delta against stale base checkpoint {base:#018x}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A type with a hand-specified binary encoding.
///
/// Implementations must be exact inverses: `decode(&mut &encode(x)[..]) ==
/// Ok(x)` bit-for-bit, and `encoded_len` must equal the number of bytes
/// `encode_into` appends. The corruption tests in this module (and the
/// property tests in `tests/bounds_and_properties.rs`) hold every
/// implementor to that contract.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decode one value from the front of `input`, advancing it past the
    /// consumed bytes. Never panics; all failures are typed [`WireError`]s.
    fn decode(input: &mut &[u8]) -> Result<Self, WireError>;

    /// Exact number of bytes [`Wire::encode_into`] appends for this value.
    fn encoded_len(&self) -> usize;

    /// Convenience: encode into a fresh, exactly-sized buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        debug_assert_eq!(out.len(), self.encoded_len());
        out
    }
}

/// Encode `message` as a complete frame: magic, version, length, body.
pub fn encode_frame<M: Wire>(message: &M) -> Vec<u8> {
    let body_len = message.encoded_len();
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + body_len);
    out.extend_from_slice(&WIRE_MAGIC);
    out.push(WIRE_VERSION);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    message.encode_into(&mut out);
    debug_assert_eq!(out.len(), FRAME_HEADER_BYTES + body_len);
    out
}

/// Total wire size of `message` once framed (header + body).
pub fn frame_len<M: Wire>(message: &M) -> usize {
    FRAME_HEADER_BYTES + message.encoded_len()
}

/// Decode a complete frame produced by [`encode_frame`], validating the
/// magic, version, and body length, and rejecting trailing bytes.
pub fn decode_frame<M: Wire>(buf: &[u8]) -> Result<M, WireError> {
    let mut input = buf;
    let header = take(&mut input, 4)?;
    let found = [header[0], header[1], header[2], header[3]];
    if found != WIRE_MAGIC {
        return Err(WireError::BadMagic { found });
    }
    let version = u8::decode(&mut input)?;
    if version == 0 || version > WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    let body_len = u32::decode(&mut input)? as usize;
    if input.len() < body_len {
        return Err(WireError::Truncated {
            needed: body_len,
            available: input.len(),
        });
    }
    if input.len() > body_len {
        return Err(WireError::TrailingBytes {
            remaining: input.len() - body_len,
        });
    }
    let message = M::decode(&mut input)?;
    if !input.is_empty() {
        return Err(WireError::TrailingBytes {
            remaining: input.len(),
        });
    }
    Ok(message)
}

/// Take exactly `n` bytes off the front of `input`.
fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if input.len() < n {
        return Err(WireError::Truncated {
            needed: n,
            available: input.len(),
        });
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

macro_rules! int_wire {
    ($($ty:ty),*) => {$(
        impl Wire for $ty {
            fn encode_into(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
                let raw = take(input, std::mem::size_of::<$ty>())?;
                Ok(<$ty>::from_le_bytes(raw.try_into().expect("sized take")))
            }
            fn encoded_len(&self) -> usize {
                std::mem::size_of::<$ty>()
            }
        }
    )*};
}

int_wire!(u8, u16, u32, u64);

impl Wire for usize {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (*self as u64).encode_into(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let v = u64::decode(input)?;
        usize::try_from(v).map_err(|_| WireError::InvalidValue {
            what: "u64 length does not fit in usize",
        })
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Wire for f32 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(f32::from_bits(u32::decode(input)?))
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl Wire for f64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::decode(input)?))
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Wire for bool {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::InvalidValue {
                what: "bool byte not 0 or 1",
            }),
        }
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

/// Encode a raw byte slice with a u32 length prefix.
fn encode_len_bytes(bytes: &[u8], out: &mut Vec<u8>) {
    (bytes.len() as u32).encode_into(out);
    out.extend_from_slice(bytes);
}

/// Decode a u32-length-prefixed byte run, borrowing from the input.
fn decode_len_bytes<'a>(input: &mut &'a [u8]) -> Result<&'a [u8], WireError> {
    let len = u32::decode(input)? as usize;
    take(input, len)
}

impl Wire for String {
    fn encode_into(&self, out: &mut Vec<u8>) {
        encode_len_bytes(self.as_bytes(), out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let raw = decode_len_bytes(input)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::InvalidValue {
            what: "string is not valid UTF-8",
        })
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl Wire for Bytes {
    fn encode_into(&self, out: &mut Vec<u8>) {
        encode_len_bytes(self, out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Bytes::from(decode_len_bytes(input)?.to_vec()))
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            tag => Err(WireError::UnknownVariant {
                type_name: "Option",
                tag,
            }),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::encoded_len)
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode_into(out);
        for item in self {
            item.encode_into(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = u32::decode(input)? as usize;
        // Cap the preallocation by what the buffer could possibly hold so a
        // corrupted length cannot request an absurd reservation; each element
        // is at least one byte.
        let mut items = Vec::with_capacity(len.min(input.len()));
        for _ in 0..len {
            items.push(T::decode(input)?);
        }
        Ok(items)
    }
    fn encoded_len(&self) -> usize {
        4 + self.iter().map(Wire::encoded_len).sum::<usize>()
    }
}

impl Wire for Payload {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.bytes.encode_into(out);
        self.data.encode_into(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Payload {
            bytes: usize::decode(input)?,
            data: Option::<Bytes>::decode(input)?,
        })
    }
    fn encoded_len(&self) -> usize {
        self.bytes.encoded_len() + self.data.encoded_len()
    }
}

impl Wire for ClientToServer {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            ClientToServer::Register => out.push(0),
            ClientToServer::KeyFrame {
                frame_index,
                payload,
            } => {
                out.push(1);
                frame_index.encode_into(out);
                payload.encode_into(out);
            }
            ClientToServer::ReShare {
                frame_index,
                payload,
            } => {
                out.push(2);
                frame_index.encode_into(out);
                payload.encode_into(out);
            }
            ClientToServer::Shutdown => out.push(3),
            ClientToServer::RegisterCaps { supports_delta } => {
                out.push(4);
                supports_delta.encode_into(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(ClientToServer::Register),
            1 => Ok(ClientToServer::KeyFrame {
                frame_index: usize::decode(input)?,
                payload: Payload::decode(input)?,
            }),
            2 => Ok(ClientToServer::ReShare {
                frame_index: usize::decode(input)?,
                payload: Payload::decode(input)?,
            }),
            3 => Ok(ClientToServer::Shutdown),
            4 => Ok(ClientToServer::RegisterCaps {
                supports_delta: bool::decode(input)?,
            }),
            tag => Err(WireError::UnknownVariant {
                type_name: "ClientToServer",
                tag,
            }),
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            ClientToServer::Register | ClientToServer::Shutdown => 1,
            ClientToServer::RegisterCaps { .. } => 2,
            ClientToServer::KeyFrame {
                frame_index,
                payload,
            }
            | ClientToServer::ReShare {
                frame_index,
                payload,
            } => 1 + frame_index.encoded_len() + payload.encoded_len(),
        }
    }
}

impl Wire for DropReason {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self {
            DropReason::UnknownStream => 0,
            DropReason::UnknownFrame => 1,
            DropReason::ShardFailed => 2,
        });
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(DropReason::UnknownStream),
            1 => Ok(DropReason::UnknownFrame),
            2 => Ok(DropReason::ShardFailed),
            tag => Err(WireError::UnknownVariant {
                type_name: "DropReason",
                tag,
            }),
        }
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Wire for ServerToClient {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            ServerToClient::InitialStudent { payload } => {
                out.push(0);
                payload.encode_into(out);
            }
            ServerToClient::StudentUpdate {
                frame_index,
                metric,
                distill_steps,
                payload,
            } => {
                out.push(1);
                frame_index.encode_into(out);
                metric.encode_into(out);
                distill_steps.encode_into(out);
                payload.encode_into(out);
            }
            ServerToClient::Throttle { frame_index } => {
                out.push(2);
                frame_index.encode_into(out);
            }
            ServerToClient::NeedFrame { frame_index } => {
                out.push(3);
                frame_index.encode_into(out);
            }
            ServerToClient::Dropped {
                frame_index,
                reason,
            } => {
                out.push(4);
                frame_index.encode_into(out);
                reason.encode_into(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(ServerToClient::InitialStudent {
                payload: Payload::decode(input)?,
            }),
            1 => Ok(ServerToClient::StudentUpdate {
                frame_index: usize::decode(input)?,
                metric: f64::decode(input)?,
                distill_steps: usize::decode(input)?,
                payload: Payload::decode(input)?,
            }),
            2 => Ok(ServerToClient::Throttle {
                frame_index: usize::decode(input)?,
            }),
            3 => Ok(ServerToClient::NeedFrame {
                frame_index: usize::decode(input)?,
            }),
            4 => Ok(ServerToClient::Dropped {
                frame_index: usize::decode(input)?,
                reason: DropReason::decode(input)?,
            }),
            tag => Err(WireError::UnknownVariant {
                type_name: "ServerToClient",
                tag,
            }),
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            ServerToClient::InitialStudent { payload } => 1 + payload.encoded_len(),
            ServerToClient::StudentUpdate {
                frame_index,
                metric,
                distill_steps,
                payload,
            } => {
                1 + frame_index.encoded_len()
                    + metric.encoded_len()
                    + distill_steps.encoded_len()
                    + payload.encoded_len()
            }
            ServerToClient::Throttle { frame_index }
            | ServerToClient::NeedFrame { frame_index } => 1 + frame_index.encoded_len(),
            ServerToClient::Dropped {
                frame_index,
                reason,
            } => 1 + frame_index.encoded_len() + reason.encoded_len(),
        }
    }
}

impl<M: Wire> Wire for StreamTagged<M> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.stream_id.encode_into(out);
        self.message.encode_into(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(StreamTagged {
            stream_id: u64::decode(input)?,
            message: M::decode(input)?,
        })
    }
    fn encoded_len(&self) -> usize {
        self.stream_id.encoded_len() + self.message.encoded_len()
    }
}

impl Wire for KeyFrameTraffic {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.to_server_bytes.encode_into(out);
        self.to_client_bytes.encode_into(out);
        self.wire_bytes_up.encode_into(out);
        self.wire_bytes_down.encode_into(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(KeyFrameTraffic {
            to_server_bytes: usize::decode(input)?,
            to_client_bytes: usize::decode(input)?,
            wire_bytes_up: usize::decode(input)?,
            wire_bytes_down: usize::decode(input)?,
        })
    }
    fn encoded_len(&self) -> usize {
        32
    }
}

impl Wire for NaiveTraffic {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.to_server_bytes.encode_into(out);
        self.to_client_bytes.encode_into(out);
        self.wire_bytes_up.encode_into(out);
        self.wire_bytes_down.encode_into(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(NaiveTraffic {
            to_server_bytes: usize::decode(input)?,
            to_client_bytes: usize::decode(input)?,
            wire_bytes_up: usize::decode(input)?,
            wire_bytes_down: usize::decode(input)?,
        })
    }
    fn encoded_len(&self) -> usize {
        32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<M: Wire + PartialEq + std::fmt::Debug>(value: M) {
        let encoded = value.encode();
        assert_eq!(encoded.len(), value.encoded_len(), "encoded_len contract");
        let mut input = &encoded[..];
        let decoded = M::decode(&mut input).expect("decode");
        assert!(input.is_empty(), "decode consumed everything");
        assert_eq!(decoded, value);
        // And through the framed path.
        let frame = encode_frame(&value);
        assert_eq!(frame.len(), frame_len(&value));
        assert_eq!(decode_frame::<M>(&frame).expect("frame decode"), value);
    }

    fn sample_payloads() -> Vec<Payload> {
        vec![
            Payload::sized(0),
            Payload::sized(1_000_000),
            Payload::with_data(Bytes::from(vec![0u8, 1, 2, 255, 128])),
            Payload::with_data(Bytes::new()),
        ]
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(-0.0f32);
        round_trip(f32::MIN_POSITIVE);
        round_trip(f64::MAX);
        round_trip(true);
        round_trip(false);
        round_trip("κλμ utf-8 ✓".to_string());
        round_trip(String::new());
        round_trip(Bytes::from(vec![9u8; 300]));
        round_trip(Option::<u32>::None);
        round_trip(Some(77u32));
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u8>::new());
    }

    #[test]
    fn every_client_to_server_variant_round_trips() {
        round_trip(ClientToServer::Register);
        round_trip(ClientToServer::Shutdown);
        for payload in sample_payloads() {
            round_trip(ClientToServer::KeyFrame {
                frame_index: 1234,
                payload: payload.clone(),
            });
            round_trip(ClientToServer::ReShare {
                frame_index: usize::MAX,
                payload,
            });
        }
    }

    #[test]
    fn every_server_to_client_variant_round_trips() {
        for payload in sample_payloads() {
            round_trip(ServerToClient::InitialStudent {
                payload: payload.clone(),
            });
            round_trip(ServerToClient::StudentUpdate {
                frame_index: 7,
                metric: 0.8125,
                distill_steps: 30,
                payload,
            });
        }
        round_trip(ServerToClient::Throttle { frame_index: 3 });
        round_trip(ServerToClient::NeedFrame { frame_index: 0 });
        round_trip(ServerToClient::Dropped {
            frame_index: 11,
            reason: DropReason::UnknownStream,
        });
        round_trip(ServerToClient::Dropped {
            frame_index: 12,
            reason: DropReason::UnknownFrame,
        });
        round_trip(ServerToClient::Dropped {
            frame_index: 13,
            reason: DropReason::ShardFailed,
        });
    }

    #[test]
    fn stream_tagged_and_traffic_round_trip() {
        round_trip(StreamTagged::new(
            u64::MAX,
            ClientToServer::KeyFrame {
                frame_index: 5,
                payload: Payload::with_data(Bytes::from(vec![7u8; 64])),
            },
        ));
        round_trip(StreamTagged::new(
            0,
            ServerToClient::Throttle { frame_index: 1 },
        ));
        round_trip(KeyFrameTraffic::new(2_764_800, 160_000));
        round_trip(NaiveTraffic::for_frame(1280, 720));
    }

    #[test]
    fn layout_is_stable_little_endian() {
        // The byte layout is the protocol: pin it so a refactor cannot
        // silently change what peers see.
        let msg = ServerToClient::Throttle {
            frame_index: 0x0102,
        };
        assert_eq!(msg.encode(), vec![2, 0x02, 0x01, 0, 0, 0, 0, 0, 0]);
        let frame = encode_frame(&msg);
        assert_eq!(&frame[..4], b"STWP");
        assert_eq!(frame[4], WIRE_VERSION);
        assert_eq!(&frame[5..9], &9u32.to_le_bytes());
    }

    #[test]
    fn truncated_buffers_report_truncation_everywhere() {
        let msg = StreamTagged::new(
            9,
            ClientToServer::KeyFrame {
                frame_index: 5,
                payload: Payload::with_data(Bytes::from(vec![1u8; 32])),
            },
        );
        let encoded = msg.encode();
        // Every proper prefix must fail with a typed error, never panic.
        for cut in 0..encoded.len() {
            let mut input = &encoded[..cut];
            let err =
                StreamTagged::<ClientToServer>::decode(&mut input).expect_err("prefix decoded");
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
        // Framed: truncations inside the header and inside the body.
        let frame = encode_frame(&msg);
        for cut in 0..frame.len() {
            let err = decode_frame::<StreamTagged<ClientToServer>>(&frame[..cut])
                .expect_err("truncated frame decoded");
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn flipped_magic_is_rejected() {
        let frame = encode_frame(&ClientToServer::Register);
        for i in 0..4 {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            match decode_frame::<ClientToServer>(&bad) {
                Err(WireError::BadMagic { found }) => assert_eq!(found[i], frame[i] ^ 0x40),
                other => panic!("expected BadMagic, got {other:?}"),
            }
        }
    }

    #[test]
    fn future_version_is_rejected() {
        let mut frame = encode_frame(&ClientToServer::Shutdown);
        frame[4] = WIRE_VERSION + 1;
        assert_eq!(
            decode_frame::<ClientToServer>(&frame),
            Err(WireError::UnsupportedVersion {
                found: WIRE_VERSION + 1
            })
        );
        frame[4] = 0;
        assert_eq!(
            decode_frame::<ClientToServer>(&frame),
            Err(WireError::UnsupportedVersion { found: 0 })
        );
    }

    #[test]
    fn unknown_variant_tags_are_rejected() {
        let mut input: &[u8] = &[200u8];
        assert_eq!(
            ClientToServer::decode(&mut input),
            Err(WireError::UnknownVariant {
                type_name: "ClientToServer",
                tag: 200
            })
        );
        let mut input: &[u8] = &[9u8];
        assert_eq!(
            ServerToClient::decode(&mut input),
            Err(WireError::UnknownVariant {
                type_name: "ServerToClient",
                tag: 9
            })
        );
        let mut input: &[u8] = &[7u8];
        assert_eq!(
            DropReason::decode(&mut input),
            Err(WireError::UnknownVariant {
                type_name: "DropReason",
                tag: 7
            })
        );
        let mut input: &[u8] = &[3u8, 1];
        assert_eq!(
            Option::<u8>::decode(&mut input),
            Err(WireError::UnknownVariant {
                type_name: "Option",
                tag: 3
            })
        );
    }

    #[test]
    fn domain_violations_are_invalid_values() {
        let mut input: &[u8] = &[2u8];
        assert!(matches!(
            bool::decode(&mut input),
            Err(WireError::InvalidValue { .. })
        ));
        // 1-byte string whose byte is not UTF-8-complete.
        let mut input: &[u8] = &[1, 0, 0, 0, 0xFF];
        assert!(matches!(
            String::decode(&mut input),
            Err(WireError::InvalidValue { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected_in_frames() {
        let mut frame = encode_frame(&ClientToServer::Register);
        frame.push(0);
        assert!(matches!(
            decode_frame::<ClientToServer>(&frame),
            Err(WireError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn corrupt_length_prefix_cannot_overallocate() {
        // A Vec length prefix claiming 4 billion elements over a 6-byte
        // buffer must fail with truncation, not abort on allocation.
        let mut bytes = u32::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[1, 2]);
        let mut input = &bytes[..];
        assert!(matches!(
            Vec::<u64>::decode(&mut input),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn wire_errors_display() {
        // Display formatting is part of the operator surface (logs).
        for err in [
            WireError::Truncated {
                needed: 4,
                available: 1,
            },
            WireError::BadMagic { found: [0; 4] },
            WireError::UnsupportedVersion { found: 9 },
            WireError::UnknownVariant {
                type_name: "X",
                tag: 1,
            },
            WireError::InvalidValue { what: "nope" },
            WireError::TrailingBytes { remaining: 3 },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
