//! Bandwidth/latency link model.

/// A network bandwidth value.
///
/// Stored in bits per second; constructors and accessors are provided for
/// the Mbps values the paper uses (8–90 Mbps in Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth {
    bits_per_second: f64,
}

impl Bandwidth {
    /// Bandwidth from megabits per second.
    pub fn from_mbps(mbps: f64) -> Self {
        Bandwidth {
            bits_per_second: mbps * 1e6,
        }
    }

    /// Bandwidth from bits per second.
    pub fn from_bps(bps: f64) -> Self {
        Bandwidth {
            bits_per_second: bps,
        }
    }

    /// Megabits per second.
    pub fn mbps(&self) -> f64 {
        self.bits_per_second / 1e6
    }

    /// Bits per second.
    pub fn bps(&self) -> f64 {
        self.bits_per_second
    }

    /// Time in seconds to transfer `bytes` bytes at this bandwidth.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        if self.bits_per_second <= 0.0 {
            return f64::INFINITY;
        }
        (bytes as f64 * 8.0) / self.bits_per_second
    }
}

/// A full-duplex link with (possibly asymmetric) uplink/downlink bandwidth
/// and a fixed per-message base latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Client → server bandwidth.
    pub uplink: Bandwidth,
    /// Server → client bandwidth.
    pub downlink: Bandwidth,
    /// Fixed one-way latency added to every message (propagation +
    /// protocol overhead), in seconds.
    pub base_latency: f64,
}

impl LinkModel {
    /// The paper's default configuration: 80 Mbps up and down, a few
    /// milliseconds of base latency (strong Wi-Fi, §5.1).
    pub fn paper_default() -> Self {
        LinkModel {
            uplink: Bandwidth::from_mbps(80.0),
            downlink: Bandwidth::from_mbps(80.0),
            base_latency: 0.004,
        }
    }

    /// A symmetric link at `mbps` with the paper's base latency.
    pub fn symmetric_mbps(mbps: f64) -> Self {
        LinkModel {
            uplink: Bandwidth::from_mbps(mbps),
            downlink: Bandwidth::from_mbps(mbps),
            base_latency: 0.004,
        }
    }

    /// Time to send `bytes` from the client to the server.
    pub fn uplink_time(&self, bytes: usize) -> f64 {
        self.base_latency + self.uplink.transfer_time(bytes)
    }

    /// Time to send `bytes` from the server to the client.
    pub fn downlink_time(&self, bytes: usize) -> f64 {
        self.base_latency + self.downlink.transfer_time(bytes)
    }

    /// `t_net` for one key frame: uplink of the frame plus downlink of the
    /// student update, i.e. the total network latency associated with one
    /// key-frame exchange (Table 1's `t_net`).
    pub fn key_frame_round_trip(&self, frame_bytes: usize, update_bytes: usize) -> f64 {
        self.uplink_time(frame_bytes) + self.downlink_time(update_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversions() {
        let b = Bandwidth::from_mbps(80.0);
        assert!((b.bps() - 80e6).abs() < 1.0);
        assert!((b.mbps() - 80.0).abs() < 1e-9);
        let b2 = Bandwidth::from_bps(1e6);
        assert!((b2.mbps() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let b = Bandwidth::from_mbps(8.0); // 1 MB/s
        assert!((b.transfer_time(1_000_000) - 1.0).abs() < 1e-9);
        assert!((b.transfer_time(500_000) - 0.5).abs() < 1e-9);
        assert_eq!(Bandwidth::from_bps(0.0).transfer_time(1), f64::INFINITY);
    }

    #[test]
    fn paper_default_round_trip_matches_measured_order() {
        // Paper: ~2.637 MB frame up + ~0.395 MB update down at 80 Mbps,
        // measured t_net = 0.303 s. The pure-bandwidth model gives ~0.31 s
        // (i.e. the measured value is essentially bandwidth-bound), which the
        // reproduction should reproduce to within ~20%.
        let link = LinkModel::paper_default();
        let t = link.key_frame_round_trip(2_637_000, 395_000);
        assert!((t - 0.303).abs() < 0.06, "round trip {t}");
    }

    #[test]
    fn narrower_link_is_slower() {
        let fast = LinkModel::symmetric_mbps(80.0);
        let slow = LinkModel::symmetric_mbps(8.0);
        assert!(slow.uplink_time(1_000_000) > fast.uplink_time(1_000_000));
        assert!(
            slow.key_frame_round_trip(1_000_000, 100_000)
                > fast.key_frame_round_trip(1_000_000, 100_000)
        );
    }

    #[test]
    fn asymmetric_links() {
        let link = LinkModel {
            uplink: Bandwidth::from_mbps(10.0),
            downlink: Bandwidth::from_mbps(100.0),
            base_latency: 0.0,
        };
        assert!(link.uplink_time(1_000_000) > link.downlink_time(1_000_000));
    }
}
