//! The lock-free bounded-ring algorithm, generic over its storage.
//!
//! [`shm`](crate::shm) maps a file-backed segment and runs this exact
//! algorithm over atomics living inside the mapping; the model-check suite
//! (`tests/model_ring.rs`) runs the *same* functions over a heap-allocated
//! mock whose atomics are instrumented by `st_check`. The protocol — and
//! every memory-ordering decision — lives here, once, so the code that is
//! model-checked is the code that ships.
//!
//! The algorithm is a Vyukov-style bounded MPMC queue with a per-slot
//! sequence word doubling as a seqlock-style publication header:
//!
//! * A producer reads `tail` and the slot's `seq`; when `seq == ticket` the
//!   slot is free, and the producer claims it by CAS on `tail`, writes the
//!   payload, then *publishes* with `seq = ticket + 1` (release).
//! * A consumer reads `head` and the slot's `seq`; when `seq == ticket + 1`
//!   the slot is published, and the consumer claims it by CAS on `head`,
//!   reads the payload, then *retires* with `seq = ticket + slots` (release)
//!   making the slot free for the next lap.
//!
//! Readers never observe a partially written payload: the only edges that
//! transfer payload bytes between threads are the two release stores of
//! `seq` paired with the acquire loads in the opposite role.

use std::sync::atomic::Ordering;

/// Outcome of a non-blocking ring push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The chunk was published.
    Pushed,
    /// The ring was full; nothing was written.
    Full,
}

/// Storage seam for the ring algorithm: `slots` payload cells plus a `head`
/// and `tail` cursor and one sequence word per cell.
///
/// Every atomic op takes its [`Ordering`] from the caller so the algorithm
/// in [`try_push`]/[`try_pop`]/[`ready`] owns the ordering decisions and an
/// implementation cannot accidentally strengthen (or weaken) them. Payload
/// access is deliberately non-atomic ([`payload_write`]/[`payload_read`]):
/// its safety is exactly what the sequence protocol has to establish, and
/// what the model-check suite probes with torn-read detectors.
///
/// [`payload_write`]: RingMem::payload_write
/// [`payload_read`]: RingMem::payload_read
pub trait RingMem {
    /// Number of slots; must be a power of two ≥ 2.
    fn slots(&self) -> usize;

    /// Usable payload bytes per slot.
    fn chunk_capacity(&self) -> usize;

    /// Load the producer cursor.
    fn tail_load(&self, order: Ordering) -> u64;

    /// Weak CAS on the producer cursor; returns the witnessed value on
    /// failure.
    fn tail_compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64>;

    /// Load the consumer cursor.
    fn head_load(&self, order: Ordering) -> u64;

    /// Weak CAS on the consumer cursor; returns the witnessed value on
    /// failure.
    fn head_compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64>;

    /// Load slot `index`'s sequence word.
    fn seq_load(&self, index: usize, order: Ordering) -> u64;

    /// Store slot `index`'s sequence word.
    fn seq_store(&self, index: usize, value: u64, order: Ordering);

    /// Copy `chunk` into slot `index`'s payload cell. Only called while the
    /// caller holds the slot's ticket (between the claiming CAS and the
    /// publishing `seq` store).
    fn payload_write(&self, index: usize, chunk: &[u8]);

    /// Append slot `index`'s payload to `out`. Only called while the caller
    /// holds the slot's ticket (between the accepting `seq` load and the
    /// retiring `seq` store).
    fn payload_read(&self, index: usize, out: &mut Vec<u8>);
}

/// Non-blocking push of one chunk (Vyukov enqueue). Returns
/// [`PushOutcome::Full`] when no slot is free. Panics if `chunk` exceeds
/// [`RingMem::chunk_capacity`] — fragmentation is the caller's job.
pub fn try_push<M: RingMem>(mem: &M, chunk: &[u8]) -> PushOutcome {
    assert!(
        chunk.len() <= mem.chunk_capacity(),
        "chunk exceeds slot capacity"
    );
    let mask = mem.slots() as u64 - 1;
    // ORDER: the cursor is only a hint for picking a slot; the CAS below
    // re-validates it and the slot's seq word carries the synchronization.
    let mut pos = mem.tail_load(Ordering::Relaxed);
    loop {
        let index = (pos & mask) as usize;
        // ORDER (Acquire): pairs with the retiring release store in
        // `try_pop`; seeing `seq == pos` must also mean the previous lap's
        // consumer is done reading the payload bytes we are about to
        // overwrite.
        let seq = mem.seq_load(index, Ordering::Acquire);
        let dif = seq.wrapping_sub(pos) as i64;
        if dif == 0 {
            // ORDER: Relaxed CAS — it only arbitrates which producer owns
            // the ticket; payload publication rides the release store of
            // `seq` below, and the failure load feeds the same hint loop.
            match mem.tail_compare_exchange_weak(pos, pos + 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    mem.payload_write(index, chunk);
                    // ORDER (Release): publishes the payload bytes to the
                    // consumer's accepting acquire load of `seq`.
                    mem.seq_store(index, pos + 1, Ordering::Release);
                    return PushOutcome::Pushed;
                }
                Err(actual) => pos = actual,
            }
        } else if dif < 0 {
            return PushOutcome::Full;
        } else {
            // Another producer claimed this ticket; refresh the hint.
            // ORDER: see the initial tail load.
            pos = mem.tail_load(Ordering::Relaxed);
        }
    }
}

/// Non-blocking pop of one chunk into `out` (appended). Returns whether a
/// chunk was consumed.
pub fn try_pop<M: RingMem>(mem: &M, out: &mut Vec<u8>) -> bool {
    let mask = mem.slots() as u64 - 1;
    let slots = mem.slots() as u64;
    // ORDER: cursor hint only; the CAS re-validates (see `try_push`).
    let mut pos = mem.head_load(Ordering::Relaxed);
    loop {
        let index = (pos & mask) as usize;
        // ORDER (Acquire): pairs with the publishing release store in
        // `try_push`; accepting `seq == pos + 1` must also make the
        // producer's payload bytes visible to `payload_read`.
        let seq = mem.seq_load(index, Ordering::Acquire);
        let dif = seq.wrapping_sub(pos + 1) as i64;
        if dif == 0 {
            // ORDER: Relaxed suffices for the claiming CAS — consumer
            // arbitration only; the payload handoff rides the seq edges.
            match mem.head_compare_exchange_weak(pos, pos + 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    mem.payload_read(index, out);
                    // ORDER (Release): retires the slot a full lap ahead;
                    // pairs with the producer's acquire load so reuse of the
                    // payload bytes cannot overtake our read of them.
                    mem.seq_store(index, pos + slots, Ordering::Release);
                    return true;
                }
                Err(actual) => pos = actual,
            }
        } else if dif < 0 {
            return false;
        } else {
            // Another consumer claimed this ticket; refresh the hint.
            // ORDER: see the initial head load.
            pos = mem.head_load(Ordering::Relaxed);
        }
    }
}

/// Whether a chunk is ready to pop (used by readiness notifiers). A `true`
/// answer is a snapshot, not a claim: a concurrent consumer may still win
/// the slot.
pub fn ready<M: RingMem>(mem: &M) -> bool {
    let mask = mem.slots() as u64 - 1;
    // ORDER: snapshot probe; staleness only delays a wakeup by one lap of
    // the notifier loop.
    let pos = mem.head_load(Ordering::Relaxed);
    let index = (pos & mask) as usize;
    // ORDER (Acquire): matches `try_pop`'s accepting load so a `true` here
    // implies a subsequent pop would also see the publication.
    let seq = mem.seq_load(index, Ordering::Acquire);
    seq.wrapping_sub(pos + 1) as i64 >= 0
}
