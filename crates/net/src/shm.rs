//! Cross-process transport over a lock-free shared-memory ring.
//!
//! This is the second [`Transport`] backend:
//! client and pool run as separate OS processes and every protocol message
//! crosses the boundary as its framed binary encoding ([`crate::wire`])
//! through a bounded circular array in a file-backed shared-memory
//! segment. The design follows cpp-ipc's `ipc::route`/`ipc::channel`:
//! fixed-capacity slots, a per-slot sequence word acting as a seqlock-style
//! publication header, spin-then-park waits, and N-producer capability for
//! the benchmark tables.
//!
//! # Segment layout
//!
//! ```text
//! offset 0    segment header (64 B):
//!             magic "STSH" · layout version · slot count · slot size ·
//!             ready flag · per-side close flags
//! offset 64   ring 0 header (client → server): tail (+0), head (+64)
//! offset 192  ring 0 slots: slots × (16 B slot header + slot_bytes)
//!             slot header: seq (u64) · chunk length (u32) · pad
//! ...         ring 1 header (server → client), ring 1 slots
//! ```
//!
//! Each ring is a Vyukov-style bounded MPMC queue: a producer claims a slot
//! by CAS on `tail` when the slot's `seq` equals the ticket, writes the
//! chunk, then *publishes* by storing `seq = ticket + 1` (release); a
//! consumer accepts when `seq == ticket + 1` and retires the slot with
//! `seq = ticket + slots`. Readers never see a partially written chunk —
//! the sequence word is the seqlock.
//!
//! Messages larger than one slot are fragmented into consecutive chunks and
//! reassembled on the consumer side; fragmentation assumes one producer per
//! ring (which is how [`ShmTransport`] uses it — one ring per direction).
//! The multi-producer path used by the `transport_ops` bench requires
//! single-chunk messages.
//!
//! Waiting is spin-then-park: a bounded busy-spin, then `yield_now`, then
//! short sleeps — there is no cross-process futex in std. Receiver-side
//! readiness integrates with the in-process
//! [`Poller`](crate::poll::Poller)/[`Waker`](crate::poll::Waker) interface
//! through [`ShmTransport::wake_on_message`], which parks a notifier thread
//! on the ring and fires the waker token whenever a chunk becomes
//! consumable.
//!
//! Platform: the segment is mapped with raw `mmap`/`munmap` syscalls
//! (x86_64 Linux; the workspace vendors no libc). On other targets the
//! constructors return [`std::io::ErrorKind::Unsupported`].

use crate::codec::{Codec, WireCodec};
use crate::ring::{self, RingMem};
use crate::transport::{Transport, TransportError};
use crate::wire::Wire;

pub use crate::ring::PushOutcome;
use std::fs::{File, OpenOptions};
use std::io;
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEG_MAGIC: u32 = u32::from_le_bytes(*b"STSH");
const SEG_LAYOUT_VERSION: u32 = 1;
const SEG_HEADER_BYTES: usize = 64;
const RING_HEADER_BYTES: usize = 128;
const SLOT_HEADER_BYTES: usize = 16;

// Segment-header field offsets.
const OFF_MAGIC: usize = 0;
const OFF_VERSION: usize = 4;
const OFF_SLOTS: usize = 8;
const OFF_SLOT_BYTES: usize = 12;
const OFF_READY: usize = 16;
const OFF_CLIENT_CLOSED: usize = 20;
const OFF_SERVER_CLOSED: usize = 24;

/// How long a blocked ring send waits for the consumer before giving up.
const SEND_TIMEOUT: Duration = Duration::from_secs(30);

/// Geometry of a shared-memory segment: two rings of `slots` fixed-size
/// slots each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShmConfig {
    /// Slots per ring. Must be a power of two, ≥ 2.
    pub slots: usize,
    /// Usable payload bytes per slot (rounded up to a multiple of 8).
    pub slot_bytes: usize,
}

impl Default for ShmConfig {
    fn default() -> Self {
        // 64 × 16 KiB per direction ≈ 1 MiB each way: a full 720p frame
        // fragments into ~169 chunks, small control messages fit in one.
        ShmConfig {
            slots: 64,
            slot_bytes: 16 * 1024,
        }
    }
}

impl ShmConfig {
    fn validated(mut self) -> io::Result<Self> {
        if self.slots < 2 || !self.slots.is_power_of_two() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "ShmConfig.slots must be a power of two >= 2",
            ));
        }
        if self.slot_bytes == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "ShmConfig.slot_bytes must be non-zero",
            ));
        }
        self.slot_bytes = (self.slot_bytes + 7) & !7;
        Ok(self)
    }

    fn ring_bytes(&self) -> usize {
        RING_HEADER_BYTES + self.slots * (SLOT_HEADER_BYTES + self.slot_bytes)
    }

    fn segment_bytes(&self) -> usize {
        SEG_HEADER_BYTES + 2 * self.ring_bytes()
    }
}

/// Which side of the duplex pair this process plays. The client sends on
/// ring 0 and receives on ring 1; the server the reverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShmSide {
    /// The stream client (typically the child process).
    Client,
    /// The serving pool (typically the creating parent process).
    Server,
}

// ---------------------------------------------------------------------------
// Raw memory mapping (x86_64 Linux syscalls; no libc in the workspace).
// ---------------------------------------------------------------------------

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use std::io;
    use std::os::unix::io::AsRawFd;

    const SYS_MMAP: isize = 9;
    const SYS_MUNMAP: isize = 11;
    const PROT_READ_WRITE: usize = 0x1 | 0x2;
    const MAP_SHARED: usize = 0x01;

    /// Map `len` bytes of `file` shared and read-write.
    pub fn map(file: &std::fs::File, len: usize) -> io::Result<*mut u8> {
        let fd = file.as_raw_fd() as isize;
        let ret: isize;
        // SAFETY: raw mmap syscall with a valid fd, zero offset, and no
        // requested address; the kernel validates everything else. rcx/r11
        // are clobbered by the syscall instruction itself.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") SYS_MMAP => ret,
                in("rdi") 0usize,
                in("rsi") len,
                in("rdx") PROT_READ_WRITE,
                in("r10") MAP_SHARED,
                in("r8") fd,
                in("r9") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as *mut u8)
        }
    }

    /// Unmap a mapping produced by [`map`].
    pub fn unmap(ptr: *mut u8, len: usize) {
        let ret: isize;
        // SAFETY: raw munmap of a mapping we own; failure is ignorable on
        // the drop path.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") SYS_MUNMAP => ret,
                in("rdi") ptr,
                in("rsi") len,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        let _ = ret;
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod sys {
    use std::io;

    pub fn map(_file: &std::fs::File, _len: usize) -> io::Result<*mut u8> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "shared-memory transport requires x86_64 Linux",
        ))
    }

    pub fn unmap(_ptr: *mut u8, _len: usize) {}
}

// ---------------------------------------------------------------------------
// The mapped segment.
// ---------------------------------------------------------------------------

/// A mapped shared-memory segment. Dropping the last owner-side handle
/// unlinks the backing file.
struct Segment {
    ptr: *mut u8,
    len: usize,
    config: ShmConfig,
    path: PathBuf,
    owner: bool,
    _file: File,
}

// SAFETY: all shared mutation inside the mapping goes through atomics (the
// ring headers and slot sequence words); slot payload bytes are published
// and retired under the slot's sequence protocol.
unsafe impl Send for Segment {}
// SAFETY: as above — the sequence protocol serializes all payload access.
unsafe impl Sync for Segment {}

impl Drop for Segment {
    fn drop(&mut self) {
        sys::unmap(self.ptr, self.len);
        if self.owner {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl Segment {
    fn atomic_u32(&self, offset: usize) -> &AtomicU32 {
        debug_assert!(offset + 4 <= self.len && offset.is_multiple_of(4));
        // SAFETY: in-bounds, aligned, and the mapping outlives `self`.
        unsafe { &*(self.ptr.add(offset) as *const AtomicU32) }
    }

    fn atomic_u64(&self, offset: usize) -> &AtomicU64 {
        debug_assert!(offset + 8 <= self.len && offset.is_multiple_of(8));
        // SAFETY: in-bounds, aligned, and the mapping outlives `self`.
        unsafe { &*(self.ptr.add(offset) as *const AtomicU64) }
    }

    fn ring_base(&self, ring: usize) -> usize {
        SEG_HEADER_BYTES + ring * self.config.ring_bytes()
    }

    fn tail(&self, ring: usize) -> &AtomicU64 {
        self.atomic_u64(self.ring_base(ring))
    }

    fn head(&self, ring: usize) -> &AtomicU64 {
        self.atomic_u64(self.ring_base(ring) + 64)
    }

    fn slot_offset(&self, ring: usize, index: usize) -> usize {
        self.ring_base(ring)
            + RING_HEADER_BYTES
            + index * (SLOT_HEADER_BYTES + self.config.slot_bytes)
    }

    fn slot_seq(&self, ring: usize, index: usize) -> &AtomicU64 {
        self.atomic_u64(self.slot_offset(ring, index))
    }

    fn slot_len(&self, ring: usize, index: usize) -> &AtomicU32 {
        self.atomic_u32(self.slot_offset(ring, index) + 8)
    }

    /// Copy `chunk` into the slot's payload area.
    fn write_slot(&self, ring: usize, index: usize, chunk: &[u8]) {
        debug_assert!(chunk.len() <= self.config.slot_bytes);
        let offset = self.slot_offset(ring, index) + SLOT_HEADER_BYTES;
        // SAFETY: the producer holds the slot ticket (seq protocol), so no
        // other thread or process touches these bytes until published.
        unsafe {
            std::ptr::copy_nonoverlapping(chunk.as_ptr(), self.ptr.add(offset), chunk.len());
        }
        // ORDER: the length is payload, not a synchronization word — it is
        // published to the consumer by the release store of `seq`.
        self.slot_len(ring, index)
            .store(chunk.len() as u32, Ordering::Relaxed);
    }

    /// Copy the slot's payload out.
    fn read_slot(&self, ring: usize, index: usize, out: &mut Vec<u8>) {
        // ORDER: payload read under the slot ticket; visibility was
        // established by the acquire load of `seq` that accepted the slot.
        let len = self.slot_len(ring, index).load(Ordering::Relaxed) as usize;
        let len = len.min(self.config.slot_bytes);
        let offset = self.slot_offset(ring, index) + SLOT_HEADER_BYTES;
        let start = out.len();
        out.resize(start + len, 0);
        // SAFETY: the consumer holds the slot ticket between the acquire
        // load of `seq` and the retiring store, so the producer cannot
        // reuse these bytes concurrently.
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.add(offset), out.as_mut_ptr().add(start), len);
        }
    }

    fn closed_flag(&self, side: ShmSide) -> &AtomicU32 {
        match side {
            ShmSide::Client => self.atomic_u32(OFF_CLIENT_CLOSED),
            ShmSide::Server => self.atomic_u32(OFF_SERVER_CLOSED),
        }
    }
}

/// Bounded exponential backoff: spin, then yield, then sleep.
struct Backoff {
    step: u32,
}

impl Backoff {
    fn new() -> Self {
        Backoff { step: 0 }
    }

    fn wait(&mut self) {
        if self.step < 64 {
            for _ in 0..(1 << self.step.min(6)) {
                std::hint::spin_loop();
            }
        } else if self.step < 128 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_micros(50));
        }
        self.step = self.step.saturating_add(1);
    }
}

// ---------------------------------------------------------------------------
// Ring producer / consumer.
// ---------------------------------------------------------------------------

/// One ring of a mapped segment, viewed through the [`RingMem`] storage
/// seam so the generic algorithm in [`crate::ring`] — the code the
/// model-check suite exercises — is also the code that runs here.
#[derive(Clone)]
struct SegRing {
    segment: Arc<Segment>,
    ring: usize,
}

impl RingMem for SegRing {
    fn slots(&self) -> usize {
        self.segment.config.slots
    }

    fn chunk_capacity(&self) -> usize {
        self.segment.config.slot_bytes
    }

    fn tail_load(&self, order: Ordering) -> u64 {
        self.segment.tail(self.ring).load(order)
    }

    fn tail_compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.segment
            .tail(self.ring)
            .compare_exchange_weak(current, new, success, failure)
    }

    fn head_load(&self, order: Ordering) -> u64 {
        self.segment.head(self.ring).load(order)
    }

    fn head_compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.segment
            .head(self.ring)
            .compare_exchange_weak(current, new, success, failure)
    }

    fn seq_load(&self, index: usize, order: Ordering) -> u64 {
        self.segment.slot_seq(self.ring, index).load(order)
    }

    fn seq_store(&self, index: usize, value: u64, order: Ordering) {
        self.segment.slot_seq(self.ring, index).store(value, order)
    }

    fn payload_write(&self, index: usize, chunk: &[u8]) {
        self.segment.write_slot(self.ring, index, chunk)
    }

    fn payload_read(&self, index: usize, out: &mut Vec<u8>) {
        self.segment.read_slot(self.ring, index, out)
    }
}

/// Producer handle onto one ring of a segment. Cloneable: multiple
/// producers may push concurrently (the `transport_ops` bench's N-producer
/// mode), as long as every message fits in a single chunk.
#[derive(Clone)]
pub struct RingProducer {
    mem: SegRing,
}

/// Consumer handle onto one ring of a segment.
pub struct RingConsumer {
    mem: SegRing,
}

impl RingProducer {
    /// Usable payload bytes per chunk.
    pub fn chunk_capacity(&self) -> usize {
        self.mem.chunk_capacity()
    }

    /// Non-blocking push of one chunk (Vyukov enqueue). Returns
    /// [`PushOutcome::Full`] when no slot is free. Panics if `chunk`
    /// exceeds [`RingProducer::chunk_capacity`] — fragmentation is the
    /// caller's job ([`ShmTransport`] does it for whole messages).
    pub fn try_push(&self, chunk: &[u8]) -> PushOutcome {
        ring::try_push(&self.mem, chunk)
    }

    /// Push one chunk, spin-then-parking while the ring is full. Gives up
    /// with `false` after `timeout` or when the consuming side closed.
    pub fn push_timeout(&self, chunk: &[u8], timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut backoff = Backoff::new();
        loop {
            match self.try_push(chunk) {
                PushOutcome::Pushed => return true,
                PushOutcome::Full => {
                    if Instant::now() >= deadline {
                        return false;
                    }
                    backoff.wait();
                }
            }
        }
    }
}

impl RingConsumer {
    /// Whether a chunk is ready to pop (used by the readiness notifier).
    pub fn ready(&self) -> bool {
        ring::ready(&self.mem)
    }

    /// Non-blocking pop of one chunk into `out` (appended). Returns whether
    /// a chunk was consumed.
    pub fn try_pop(&self, out: &mut Vec<u8>) -> bool {
        ring::try_pop(&self.mem, out)
    }
}

// ---------------------------------------------------------------------------
// Segment creation / attachment.
// ---------------------------------------------------------------------------

fn map_segment(path: &Path, config: ShmConfig, owner: bool, file: File) -> io::Result<Segment> {
    let len = config.segment_bytes();
    let ptr = sys::map(&file, len)?;
    Ok(Segment {
        ptr,
        len,
        config,
        path: path.to_path_buf(),
        owner,
        _file: file,
    })
}

fn create_segment(path: &Path, config: ShmConfig) -> io::Result<Arc<Segment>> {
    let config = config.validated()?;
    let file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)?;
    file.set_len(config.segment_bytes() as u64)?;
    let segment = map_segment(path, config, true, file)?;
    // Initialise slot sequence words to their indices (Vyukov invariant)
    // for both rings; heads and tails start at zero from the file zeroing.
    // ORDER: all initialisation stores below are Relaxed — nothing reads
    // them until the release store of the ready flag publishes the whole
    // segment, and peers acquire-load that flag before trusting anything.
    for ring in 0..2 {
        for index in 0..config.slots {
            // ORDER: published by the ready-flag release store below.
            segment
                .slot_seq(ring, index)
                .store(index as u64, Ordering::Relaxed);
        }
    }
    // ORDER: published by the ready-flag release store below.
    segment
        .atomic_u32(OFF_SLOTS)
        .store(config.slots as u32, Ordering::Relaxed);
    // ORDER: published by the ready-flag release store below.
    segment
        .atomic_u32(OFF_SLOT_BYTES)
        .store(config.slot_bytes as u32, Ordering::Relaxed);
    // ORDER: published by the ready-flag release store below.
    segment
        .atomic_u32(OFF_VERSION)
        .store(SEG_LAYOUT_VERSION, Ordering::Relaxed);
    // ORDER: published by the ready-flag release store below.
    segment
        .atomic_u32(OFF_MAGIC)
        .store(SEG_MAGIC, Ordering::Relaxed);
    // Publish: peers spin on the ready flag before trusting the geometry.
    segment.atomic_u32(OFF_READY).store(1, Ordering::Release);
    Ok(Arc::new(segment))
}

fn open_segment(path: &Path, timeout: Duration) -> io::Result<Arc<Segment>> {
    let deadline = Instant::now() + timeout;
    loop {
        match try_open_segment(path) {
            Ok(Some(segment)) => return Ok(segment),
            Ok(None) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "shared-memory segment {} never became ready",
                    path.display()
                ),
            ));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn try_open_segment(path: &Path) -> io::Result<Option<Arc<Segment>>> {
    let file = OpenOptions::new().read(true).write(true).open(path)?;
    if (file.metadata()?.len() as usize) < SEG_HEADER_BYTES {
        return Ok(None);
    }
    // Map just the header first to learn the geometry.
    let probe = sys::map(&file, SEG_HEADER_BYTES)?;
    // SAFETY: probe maps at least SEG_HEADER_BYTES, offsets are in-bounds
    // and 4-aligned, and the mapping lives until the unmap below.
    let header_u32 = |offset: usize| unsafe { &*(probe.add(offset) as *const AtomicU32) };
    let ready = header_u32(OFF_READY).load(Ordering::Acquire);
    // ORDER: the geometry words were written before the creator's release
    // store of the ready flag; the acquire load above synchronises them.
    let magic = header_u32(OFF_MAGIC).load(Ordering::Relaxed);
    // ORDER: see the ready-flag acquire above.
    let version = header_u32(OFF_VERSION).load(Ordering::Relaxed);
    // ORDER: see the ready-flag acquire above.
    let slots = header_u32(OFF_SLOTS).load(Ordering::Relaxed) as usize;
    // ORDER: see the ready-flag acquire above.
    let slot_bytes = header_u32(OFF_SLOT_BYTES).load(Ordering::Relaxed) as usize;
    sys::unmap(probe, SEG_HEADER_BYTES);
    if ready != 1 {
        return Ok(None);
    }
    if magic != SEG_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a ShadowTutor shared-memory segment (bad magic)",
        ));
    }
    if version != SEG_LAYOUT_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported segment layout version {version}"),
        ));
    }
    let config = ShmConfig { slots, slot_bytes }.validated()?;
    if (file.metadata()?.len() as usize) < config.segment_bytes() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "shared-memory segment shorter than its declared geometry",
        ));
    }
    Ok(Some(Arc::new(map_segment(path, config, false, file)?)))
}

/// Create a standalone single-ring channel for benchmarking: `(producer,
/// consumer)` handles onto ring 0 of a fresh segment at `path`. Clone the
/// producer for N-producer experiments.
pub fn ring_channel(path: &Path, config: ShmConfig) -> io::Result<(RingProducer, RingConsumer)> {
    let segment = create_segment(path, config)?;
    Ok((
        RingProducer {
            mem: SegRing {
                segment: Arc::clone(&segment),
                ring: 0,
            },
        },
        RingConsumer {
            mem: SegRing { segment, ring: 0 },
        },
    ))
}

// ---------------------------------------------------------------------------
// The duplex transport.
// ---------------------------------------------------------------------------

/// A duplex [`Transport`] over a shared-memory segment: the cross-process
/// backend. `S`/`R` are the sent/received message types; every message
/// crosses as its framed binary encoding ([`WireCodec`]), fragmented into
/// ring chunks and reassembled on the far side.
///
/// Typical shapes:
/// `ShmTransport<ClientToServer, ServerToClient>` in the client process
/// (wrap it with [`connect()`](crate::transport::connect)) and
/// `ShmTransport<ServerToClient, ClientToServer>` in the pool process.
pub struct ShmTransport<S, R> {
    producer: RingProducer,
    consumer: RingConsumer,
    side: ShmSide,
    codec: WireCodec,
    /// Reassembly state: accumulated bytes of the in-flight inbound frame.
    partial: Vec<u8>,
    /// Total frame length being reassembled (parsed from the stream's
    /// 4-byte length prefix), if mid-message.
    expected: Option<usize>,
    /// Leftover stream bytes not yet assigned to a frame (spans the length
    /// prefix itself when a chunk boundary splits it).
    stream: Vec<u8>,
    wire_sent_bytes: usize,
    wire_received_bytes: usize,
    notifier_stop: Option<Arc<AtomicBool>>,
    notifier: Option<std::thread::JoinHandle<()>>,
    _marker: PhantomData<fn(S) -> R>,
}

impl<S: Wire, R: Wire> ShmTransport<S, R> {
    /// Create the segment file at `path` and attach as `side`. The peer
    /// process attaches with [`ShmTransport::open`].
    pub fn create(path: &Path, side: ShmSide, config: ShmConfig) -> io::Result<Self> {
        Ok(Self::attach(create_segment(path, config)?, side))
    }

    /// Attach to a segment created by the peer, waiting up to `timeout` for
    /// the file to appear and its ready flag to be published.
    pub fn open(path: &Path, side: ShmSide, timeout: Duration) -> io::Result<Self> {
        Ok(Self::attach(open_segment(path, timeout)?, side))
    }

    fn attach(segment: Arc<Segment>, side: ShmSide) -> Self {
        // Ring 0 carries client → server, ring 1 server → client.
        let (send_ring, recv_ring) = match side {
            ShmSide::Client => (0, 1),
            ShmSide::Server => (1, 0),
        };
        ShmTransport {
            producer: RingProducer {
                mem: SegRing {
                    segment: Arc::clone(&segment),
                    ring: send_ring,
                },
            },
            consumer: RingConsumer {
                mem: SegRing {
                    segment,
                    ring: recv_ring,
                },
            },
            side,
            codec: WireCodec,
            partial: Vec::new(),
            expected: None,
            stream: Vec::new(),
            wire_sent_bytes: 0,
            wire_received_bytes: 0,
            notifier_stop: None,
            notifier: None,
            _marker: PhantomData,
        }
    }

    fn peer_side(&self) -> ShmSide {
        match self.side {
            ShmSide::Client => ShmSide::Server,
            ShmSide::Server => ShmSide::Client,
        }
    }

    fn peer_closed(&self) -> bool {
        self.producer
            .mem
            .segment
            .closed_flag(self.peer_side())
            .load(Ordering::Acquire)
            != 0
    }

    /// Measured bytes sent: framed encodings (plus the 4-byte stream length
    /// prefix each) that physically entered the ring.
    pub fn wire_sent_bytes(&self) -> usize {
        self.wire_sent_bytes
    }

    /// Measured bytes received off the ring.
    pub fn wire_received_bytes(&self) -> usize {
        self.wire_received_bytes
    }

    /// Drain ring chunks into the reassembly buffer and, if a whole frame
    /// has landed, decode it.
    fn pump_inbound(&mut self) -> Result<Option<R>, TransportError> {
        loop {
            // Complete frame already assembled?
            if let Some(expected) = self.expected {
                if self.partial.len() >= expected {
                    debug_assert_eq!(self.partial.len(), expected);
                    let frame = std::mem::take(&mut self.partial);
                    self.expected = None;
                    self.wire_received_bytes += 4 + frame.len();
                    let message = self
                        .codec
                        .decode::<R>(&frame)
                        .map_err(|_| TransportError::Disconnected)?;
                    return Ok(Some(message));
                }
            }
            // Move stream bytes into the frame under assembly.
            if self.expected.is_none() && self.stream.len() >= 4 {
                let len = u32::from_le_bytes([
                    self.stream[0],
                    self.stream[1],
                    self.stream[2],
                    self.stream[3],
                ]) as usize;
                self.expected = Some(len);
                self.stream.drain(..4);
                self.partial.reserve(len);
            }
            if let Some(expected) = self.expected {
                if !self.stream.is_empty() {
                    let want = expected - self.partial.len();
                    let take = want.min(self.stream.len());
                    self.partial.extend(self.stream.drain(..take));
                    continue;
                }
            }
            // Need more chunks.
            if !self.consumer.try_pop(&mut self.stream) {
                return Ok(None);
            }
        }
    }
}

impl<S: Wire, R: Wire> Transport<S, R> for ShmTransport<S, R> {
    fn send(&mut self, message: S, _bytes: usize) -> Result<(), TransportError> {
        if self.peer_closed() {
            return Err(TransportError::Disconnected);
        }
        let frame = self.codec.encode(&message);
        // Stream format: 4-byte LE frame length, then the frame, chunked to
        // slot capacity. One producer per ring keeps the chunks in order.
        let mut stream = Vec::with_capacity(4 + frame.len());
        stream.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        stream.extend_from_slice(&frame);
        for chunk in stream.chunks(self.producer.chunk_capacity()) {
            if !self.producer.push_timeout(chunk, SEND_TIMEOUT) {
                return Err(if self.peer_closed() {
                    TransportError::Disconnected
                } else {
                    TransportError::Timeout
                });
            }
        }
        self.wire_sent_bytes += stream.len();
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<R>, TransportError> {
        if let Some(message) = self.pump_inbound()? {
            return Ok(Some(message));
        }
        if self.peer_closed() {
            // Drain once more: the peer may have closed after its last send.
            if let Some(message) = self.pump_inbound()? {
                return Ok(Some(message));
            }
            return Err(TransportError::Disconnected);
        }
        Ok(None)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<R, TransportError> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Backoff::new();
        loop {
            match self.try_recv()? {
                Some(message) => return Ok(message),
                None => {
                    if Instant::now() >= deadline {
                        return Err(TransportError::Timeout);
                    }
                    backoff.wait();
                }
            }
        }
    }

    fn wake_on_message(&mut self, waker: crate::poll::Waker) -> bool {
        let stop = Arc::new(AtomicBool::new(false));
        let consumer = RingConsumer {
            mem: self.consumer.mem.clone(),
        };
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("shm-ready-notifier".into())
            .spawn(move || {
                // Spin-then-park on ring readiness; wakes are edge-ish and
                // coalesced by the Poller, so waking repeatedly while the
                // consumer catches up costs one dispatch.
                let mut backoff = Backoff::new();
                // ORDER: pure stop signal; the joining thread needs no data
                // published by this loop, only its eventual exit.
                while !stop_flag.load(Ordering::Relaxed) {
                    if consumer.ready() {
                        waker.wake();
                        backoff = Backoff::new();
                        std::thread::sleep(Duration::from_micros(200));
                    } else {
                        backoff.wait();
                    }
                }
            });
        match handle {
            Ok(handle) => {
                if let Some(old_stop) = self.notifier_stop.replace(stop) {
                    // ORDER: stop signal only; the join below synchronises.
                    old_stop.store(true, Ordering::Relaxed);
                }
                if let Some(old) = self.notifier.replace(handle) {
                    let _ = old.join();
                }
                true
            }
            Err(_) => false,
        }
    }
}

impl<S, R> Drop for ShmTransport<S, R> {
    fn drop(&mut self) {
        self.producer
            .mem
            .segment
            .closed_flag(self.side)
            .store(1, Ordering::Release);
        if let Some(stop) = self.notifier_stop.take() {
            // ORDER: stop signal only; the join below synchronises.
            stop.store(true, Ordering::Relaxed);
        }
        if let Some(handle) = self.notifier.take() {
            let _ = handle.join();
        }
    }
}

impl<S, R> fmt::Debug for ShmTransport<S, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShmTransport")
            .field("side", &self.side)
            .field("wire_sent_bytes", &self.wire_sent_bytes)
            .field("wire_received_bytes", &self.wire_received_bytes)
            .finish()
    }
}

use std::fmt;

/// A process-unique path for a fresh segment file, preferring `/dev/shm`
/// (a real tmpfs) and falling back to the system temp directory.
pub fn default_segment_path(tag: &str) -> PathBuf {
    let dir = if Path::new("/dev/shm").is_dir() {
        PathBuf::from("/dev/shm")
    } else {
        std::env::temp_dir()
    };
    dir.join(format!("st-shm-{}-{}", std::process::id(), tag))
}

#[cfg(all(test, target_os = "linux", target_arch = "x86_64"))]
mod tests {
    use super::*;
    use crate::message::{ClientToServer, Payload, ServerToClient};
    use bytes::Bytes;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "st-shm-test-{}-{}-{}",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "-"),
            tag
        ))
    }

    #[test]
    fn ring_pushes_and_pops_in_order() {
        let path = temp_path("order");
        let (producer, consumer) = ring_channel(
            &path,
            ShmConfig {
                slots: 8,
                slot_bytes: 64,
            },
        )
        .unwrap();
        for i in 0..5u8 {
            assert_eq!(producer.try_push(&[i; 3]), PushOutcome::Pushed);
        }
        let mut out = Vec::new();
        for i in 0..5u8 {
            out.clear();
            assert!(consumer.try_pop(&mut out));
            assert_eq!(out, vec![i; 3]);
        }
        assert!(!consumer.try_pop(&mut out));
    }

    #[test]
    fn full_ring_reports_full_then_recovers() {
        let path = temp_path("full");
        let (producer, consumer) = ring_channel(
            &path,
            ShmConfig {
                slots: 2,
                slot_bytes: 16,
            },
        )
        .unwrap();
        assert_eq!(producer.try_push(b"a"), PushOutcome::Pushed);
        assert_eq!(producer.try_push(b"b"), PushOutcome::Pushed);
        assert_eq!(producer.try_push(b"c"), PushOutcome::Full);
        let mut out = Vec::new();
        assert!(consumer.try_pop(&mut out));
        assert_eq!(producer.try_push(b"c"), PushOutcome::Pushed);
    }

    #[test]
    fn n_producers_one_consumer_delivers_everything() {
        let path = temp_path("nproducer");
        let (producer, consumer) = ring_channel(
            &path,
            ShmConfig {
                slots: 64,
                slot_bytes: 16,
            },
        )
        .unwrap();
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 500;
        std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let producer = producer.clone();
                scope.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let value = (p * PER_PRODUCER + i) as u32;
                        assert!(
                            producer.push_timeout(&value.to_le_bytes(), Duration::from_secs(10))
                        );
                    }
                });
            }
            let mut seen = vec![false; PRODUCERS * PER_PRODUCER];
            let mut got = 0;
            let mut buf = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(10);
            while got < PRODUCERS * PER_PRODUCER {
                buf.clear();
                if consumer.try_pop(&mut buf) {
                    let value = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
                    assert!(!seen[value], "duplicate {value}");
                    seen[value] = true;
                    got += 1;
                } else {
                    assert!(Instant::now() < deadline, "stalled at {got}");
                    std::hint::spin_loop();
                }
            }
        });
    }

    #[test]
    fn duplex_transport_round_trips_messages_and_counts_bytes() {
        let path = temp_path("duplex");
        let mut server = ShmTransport::<ServerToClient, ClientToServer>::create(
            &path,
            ShmSide::Server,
            ShmConfig {
                slots: 16,
                slot_bytes: 128,
            },
        )
        .unwrap();
        let mut client = ShmTransport::<ClientToServer, ServerToClient>::open(
            &path,
            ShmSide::Client,
            Duration::from_secs(5),
        )
        .unwrap();

        let up = ClientToServer::KeyFrame {
            frame_index: 42,
            // Larger than one 128-byte slot: exercises fragmentation.
            payload: Payload::with_data(Bytes::from(vec![7u8; 1000])),
        };
        client.send(up.clone(), 1000).unwrap();
        let got = server.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got, up);
        assert_eq!(
            client.wire_sent_bytes(),
            4 + crate::wire::frame_len(&up),
            "sent bytes are the framed encoding plus the stream prefix"
        );
        assert_eq!(server.wire_received_bytes(), client.wire_sent_bytes());

        let down = ServerToClient::Throttle { frame_index: 42 };
        server.send(down.clone(), 8).unwrap();
        assert_eq!(client.recv_timeout(Duration::from_secs(5)).unwrap(), down);
        assert_eq!(client.try_recv().unwrap(), None);
    }

    #[test]
    fn dropping_one_side_disconnects_the_peer() {
        let path = temp_path("close");
        let server = ShmTransport::<ServerToClient, ClientToServer>::create(
            &path,
            ShmSide::Server,
            ShmConfig::default(),
        )
        .unwrap();
        let mut client = ShmTransport::<ClientToServer, ServerToClient>::open(
            &path,
            ShmSide::Client,
            Duration::from_secs(5),
        )
        .unwrap();
        drop(server);
        assert_eq!(
            client.send(ClientToServer::Register, 64),
            Err(TransportError::Disconnected)
        );
        assert_eq!(client.try_recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn queued_messages_survive_peer_close() {
        let path = temp_path("drain");
        let mut server = ShmTransport::<ServerToClient, ClientToServer>::create(
            &path,
            ShmSide::Server,
            ShmConfig::default(),
        )
        .unwrap();
        let mut client = ShmTransport::<ClientToServer, ServerToClient>::open(
            &path,
            ShmSide::Client,
            Duration::from_secs(5),
        )
        .unwrap();
        client.send(ClientToServer::Shutdown, 64).unwrap();
        drop(client);
        // The chunk is still in the ring: the server drains it before
        // reporting the disconnect.
        assert_eq!(
            server.recv_timeout(Duration::from_secs(1)).unwrap(),
            ClientToServer::Shutdown
        );
        assert_eq!(server.try_recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn wake_on_message_fires_the_poller_token() {
        let path = temp_path("waker");
        let mut server = ShmTransport::<ServerToClient, ClientToServer>::create(
            &path,
            ShmSide::Server,
            ShmConfig::default(),
        )
        .unwrap();
        let mut client = ShmTransport::<ClientToServer, ServerToClient>::open(
            &path,
            ShmSide::Client,
            Duration::from_secs(5),
        )
        .unwrap();
        let poller = crate::poll::Poller::new();
        assert!(client.wake_on_message(poller.waker(9)));
        assert!(poller.poll(Duration::from_millis(5)).is_empty());
        server
            .send(ServerToClient::NeedFrame { frame_index: 3 }, 8)
            .unwrap();
        let ready = poller.poll(Duration::from_secs(5));
        assert_eq!(ready.tokens(), &[9]);
        assert_eq!(
            client.try_recv().unwrap(),
            Some(ServerToClient::NeedFrame { frame_index: 3 })
        );
    }

    #[test]
    fn open_rejects_corrupt_segments() {
        let path = temp_path("corrupt");
        std::fs::write(&path, vec![0xABu8; 4096]).unwrap();
        let err = ShmTransport::<ClientToServer, ServerToClient>::open(
            &path,
            ShmSide::Client,
            Duration::from_millis(50),
        )
        .unwrap_err();
        // A garbage ready flag reads as "never ready" or bad magic — either
        // way the open fails instead of trusting the bytes.
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::InvalidData | io::ErrorKind::TimedOut
            ),
            "{err:?}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn segment_file_is_unlinked_by_the_owner() {
        let path = temp_path("unlink");
        let server = ShmTransport::<ServerToClient, ClientToServer>::create(
            &path,
            ShmSide::Server,
            ShmConfig::default(),
        )
        .unwrap();
        assert!(path.exists());
        drop(server);
        assert!(!path.exists());
    }
}
