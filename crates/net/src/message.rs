//! Messages exchanged between the ShadowTutor client and server, and their
//! wire sizes.
//!
//! The sizes reported here are what the paper's Table 4 ("Data transmitted
//! on each key frame") measures: the uplink payload is one raw video frame,
//! the downlink payload is either the partial or the full student weight
//! snapshot (plus the post-training metric), and the naive-offloading
//! baseline instead downloads the teacher's per-pixel prediction.

use bytes::Bytes;

/// Framing overhead added to every message (headers, MPI envelope, etc.).
pub const MESSAGE_OVERHEAD_BYTES: usize = 64;

/// A payload with an explicit wire size.
///
/// The actual bytes are optional: the virtual-time runtime only needs sizes,
/// while the live transport ships real encoded bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct Payload {
    /// *Modelled* wire size in bytes, including [`MESSAGE_OVERHEAD_BYTES`].
    ///
    /// This is the size the virtual-time runtime charges to the link model.
    /// It predates the binary codec and is kept for the simulated paths;
    /// for bytes that actually cross a transport, measure with
    /// [`Wire::encoded_len`](crate::wire::Wire::encoded_len) (or
    /// [`wire::frame_len`](crate::wire::frame_len) for the framed size)
    /// instead.
    pub bytes: usize,
    /// The encoded content, when a live transport is in use.
    pub data: Option<Bytes>,
}

impl Payload {
    /// A size-only payload (virtual-time runtime).
    pub fn sized(content_bytes: usize) -> Self {
        Payload {
            bytes: content_bytes + MESSAGE_OVERHEAD_BYTES,
            data: None,
        }
    }

    /// A payload carrying real bytes (live transport).
    pub fn with_data(data: Bytes) -> Self {
        Payload {
            bytes: data.len() + MESSAGE_OVERHEAD_BYTES,
            data: Some(data),
        }
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientToServer {
    /// Announce a new stream. The multi-stream server pool creates the
    /// stream's distillation session and replies with
    /// [`ServerToClient::InitialStudent`]; the single-stream server sends the
    /// initial checkpoint unprompted and never sees this variant.
    Register,
    /// A key frame to distill on. Carries the frame index for bookkeeping and
    /// the encoded frame payload.
    KeyFrame {
        /// Index of the frame in the video stream.
        frame_index: usize,
        /// Encoded RGB frame.
        payload: Payload,
    },
    /// Re-upload of a frame the server evicted from its bounded frame cache
    /// and asked back for with [`ServerToClient::NeedFrame`]. The pending
    /// key-frame job for this index resumes once the content lands; a
    /// `ReShare` for a frame nobody asked about is answered with
    /// [`ServerToClient::Dropped`].
    ReShare {
        /// Index of the re-shared frame.
        frame_index: usize,
        /// Encoded RGB frame (same encoding as
        /// [`ClientToServer::KeyFrame`]).
        payload: Payload,
    },
    /// The client is done with the stream; the server loop should exit.
    Shutdown,
    /// Capability-announcing registration (wire tag 4, added with the
    /// delta-update protocol). Semantically [`ClientToServer::Register`]
    /// plus the client's announced capabilities; a peer predating the
    /// variant rejects it with a typed
    /// [`crate::WireError::UnknownVariant`], which is how the version
    /// negotiation degrades: such a client simply keeps sending `Register`
    /// and keeps receiving bare full snapshots.
    RegisterCaps {
        /// The client can decode [`ServerToClient`] weight payloads wrapped
        /// in the delta envelope (`WeightPayload`) and apply sparse deltas
        /// against its last-acked checkpoint.
        supports_delta: bool,
    },
}

/// Identifier of one client stream multiplexed onto a shared server.
pub type StreamId = u64;

/// A message tagged with the stream it belongs to.
///
/// The multi-stream server pool funnels every client's uplink into one
/// queue per shard; the tag is what routes a message to the right
/// per-stream distillation session and routes the response back. Tagging
/// costs [`STREAM_TAG_BYTES`] extra on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamTagged<M> {
    /// The originating (or destination) stream.
    pub stream_id: StreamId,
    /// The wrapped message.
    pub message: M,
}

/// Wire overhead of the stream tag (a fixed-width stream id).
pub const STREAM_TAG_BYTES: usize = 8;

impl<M> StreamTagged<M> {
    /// Tag `message` as belonging to `stream_id`.
    pub fn new(stream_id: StreamId, message: M) -> Self {
        StreamTagged { stream_id, message }
    }

    /// Wire size of the tagged message given the inner message's size.
    pub fn tagged_bytes(inner_bytes: usize) -> usize {
        inner_bytes + STREAM_TAG_BYTES
    }

    /// Discard the tag, keeping the inner message.
    pub fn into_inner(self) -> M {
        self.message
    }
}

/// Why the server refused (or lost) a key frame instead of serving it.
///
/// Sent back in [`ServerToClient::Dropped`] so the client's frame accounting
/// cannot silently skew: every key frame the client uploads is answered by
/// exactly one `StudentUpdate`, `Throttle`, or `Dropped`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The stream has no registered session (never registered, or the key
    /// frame arrived after the stream's `Shutdown`).
    UnknownStream,
    /// The stream is registered but the frame index was never pre-shared —
    /// or its content was evicted from the server's bounded frame cache and
    /// could not be recovered before the stream finished (the server asks
    /// for evicted content with [`ServerToClient::NeedFrame`] first; this
    /// reason is only sent when the re-share never arrived).
    UnknownFrame,
    /// The shard serving the stream died and the job could not be salvaged
    /// by the buddy shard's takeover (a torn failure lost the queued job, or
    /// no standby adopted the shard). Like every other reason this is an
    /// explicit ack: a shard failure must never make a key frame vanish
    /// silently.
    ShardFailed,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerToClient {
    /// The initial full student checkpoint sent when the system starts
    /// (Algorithm 3, line 1).
    InitialStudent {
        /// Encoded full weight snapshot.
        payload: Payload,
    },
    /// The updated (partial or full) student weights for a key frame plus the
    /// post-training metric the client feeds into the stride scheduler.
    StudentUpdate {
        /// Index of the key frame this update corresponds to.
        frame_index: usize,
        /// Post-distillation metric (mean IoU in `[0, 1]`) on the key frame.
        metric: f64,
        /// Number of distillation steps the server took.
        distill_steps: usize,
        /// Encoded weight snapshot (trainable subset under partial
        /// distillation, everything under full distillation).
        payload: Payload,
    },
    /// Admission control: the stream already has its maximum number of key
    /// frames in flight, so this one was rejected without being queued. The
    /// client should fall back to local-only inference for the frame (its
    /// student simply keeps serving with the current weights) and must not
    /// wait for a `StudentUpdate`.
    Throttle {
        /// Index of the rejected key frame.
        frame_index: usize,
    },
    /// The server holds a pending key-frame job for this frame but evicted
    /// the frame's content from its bounded cache; the client should answer
    /// with [`ClientToServer::ReShare`] carrying the content again. The job
    /// stays queued (with its original arrival time, so wait accounting
    /// stays honest) until the re-share arrives or the stream finishes.
    NeedFrame {
        /// Index of the frame whose content the server needs again.
        frame_index: usize,
    },
    /// The key frame could not be served at all (see [`DropReason`]). Like
    /// [`ServerToClient::Throttle`] this clears the client's outstanding
    /// update; unlike a throttle it indicates a protocol-level mismatch the
    /// server also counts in its shard statistics.
    Dropped {
        /// Index of the dropped key frame.
        frame_index: usize,
        /// Why the frame was dropped.
        reason: DropReason,
    },
}

/// Wire sizes of the recurring per-key-frame messages for a given
/// configuration — the rows of Table 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyFrameTraffic {
    /// Modelled bytes sent client → server per key frame (the raw frame).
    pub to_server_bytes: usize,
    /// Modelled bytes sent server → client per key frame (weights + metric).
    pub to_client_bytes: usize,
    /// *Measured* uplink bytes: the framed binary encoding of the actual
    /// `KeyFrame` message as produced by the wire codec. Zero until measured
    /// with [`KeyFrameTraffic::with_wire_bytes`].
    pub wire_bytes_up: usize,
    /// *Measured* downlink bytes: the framed binary encoding of the actual
    /// `StudentUpdate` message. Zero until measured.
    pub wire_bytes_down: usize,
}

impl KeyFrameTraffic {
    /// Build from a raw frame size and a weight-snapshot size.
    pub fn new(frame_bytes: usize, update_bytes: usize) -> Self {
        KeyFrameTraffic {
            to_server_bytes: frame_bytes + MESSAGE_OVERHEAD_BYTES,
            to_client_bytes: update_bytes + MESSAGE_OVERHEAD_BYTES,
            wire_bytes_up: 0,
            wire_bytes_down: 0,
        }
    }

    /// Attach measured wire sizes (framed bytes of the actual encoded
    /// uplink and downlink messages, e.g. from
    /// [`wire::frame_len`](crate::wire::frame_len)).
    pub fn with_wire_bytes(mut self, up: usize, down: usize) -> Self {
        self.wire_bytes_up = up;
        self.wire_bytes_down = down;
        self
    }

    /// Total *measured* bytes exchanged per key frame (0 until measured).
    pub fn wire_total_bytes(&self) -> usize {
        self.wire_bytes_up + self.wire_bytes_down
    }

    /// `(up, down, total)` of the measured wire bytes, in megabytes.
    pub fn wire_megabytes(&self) -> (f64, f64, f64) {
        (
            self.wire_bytes_up as f64 / 1e6,
            self.wire_bytes_down as f64 / 1e6,
            self.wire_total_bytes() as f64 / 1e6,
        )
    }

    /// Total bytes exchanged per key frame.
    pub fn total_bytes(&self) -> usize {
        self.to_server_bytes + self.to_client_bytes
    }

    /// `(to_server, to_client, total)` in megabytes, Table 4's unit.
    pub fn megabytes(&self) -> (f64, f64, f64) {
        (
            self.to_server_bytes as f64 / 1e6,
            self.to_client_bytes as f64 / 1e6,
            self.total_bytes() as f64 / 1e6,
        )
    }
}

/// Per-frame traffic of the naive-offloading baseline: every frame goes up,
/// and the teacher's per-pixel prediction (one byte per pixel, as a class-id
/// map) comes back down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaiveTraffic {
    /// Modelled bytes sent client → server per frame.
    pub to_server_bytes: usize,
    /// Modelled bytes sent server → client per frame.
    pub to_client_bytes: usize,
    /// *Measured* uplink bytes of the actual encoded frame-upload message.
    /// Zero until measured with [`NaiveTraffic::with_wire_bytes`].
    pub wire_bytes_up: usize,
    /// *Measured* downlink bytes of the actual encoded prediction message.
    /// Zero until measured.
    pub wire_bytes_down: usize,
}

impl NaiveTraffic {
    /// Build from frame dimensions: uplink is the raw RGB frame, downlink is
    /// a compressed per-pixel class map (the paper measures ~0.879 MB for a
    /// 720p prediction, ≈ 1 byte per pixel).
    pub fn for_frame(width: usize, height: usize) -> Self {
        NaiveTraffic {
            to_server_bytes: 3 * width * height + MESSAGE_OVERHEAD_BYTES,
            to_client_bytes: width * height + MESSAGE_OVERHEAD_BYTES,
            wire_bytes_up: 0,
            wire_bytes_down: 0,
        }
    }

    /// Attach measured wire sizes (framed bytes of the actual encoded
    /// uplink and downlink messages).
    pub fn with_wire_bytes(mut self, up: usize, down: usize) -> Self {
        self.wire_bytes_up = up;
        self.wire_bytes_down = down;
        self
    }

    /// Total *measured* bytes exchanged per frame (0 until measured).
    pub fn wire_total_bytes(&self) -> usize {
        self.wire_bytes_up + self.wire_bytes_down
    }

    /// Total bytes exchanged per frame.
    pub fn total_bytes(&self) -> usize {
        self.to_server_bytes + self.to_client_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_payload_includes_overhead() {
        let p = Payload::sized(1000);
        assert_eq!(p.bytes, 1000 + MESSAGE_OVERHEAD_BYTES);
        assert!(p.data.is_none());
    }

    #[test]
    fn data_payload_measures_real_bytes() {
        let p = Payload::with_data(Bytes::from(vec![0u8; 512]));
        assert_eq!(p.bytes, 512 + MESSAGE_OVERHEAD_BYTES);
        assert_eq!(p.data.as_ref().unwrap().len(), 512);
    }

    #[test]
    fn paper_hd_frame_size_matches_table4_order() {
        // 1280x720 RGB ≈ 2.76 MB raw; the paper reports 2.637 MB to server.
        let naive = NaiveTraffic::for_frame(1280, 720);
        let mb = naive.to_server_bytes as f64 / 1e6;
        assert!((mb - 2.7).abs() < 0.15, "uplink frame {mb} MB");
        // Teacher prediction downlink ≈ 0.92 MB vs paper's 0.879 MB.
        let down = naive.to_client_bytes as f64 / 1e6;
        assert!((down - 0.9).abs() < 0.1, "downlink prediction {down} MB");
    }

    #[test]
    fn key_frame_traffic_totals() {
        let t = KeyFrameTraffic::new(1_000_000, 200_000);
        assert_eq!(t.total_bytes(), 1_200_000 + 2 * MESSAGE_OVERHEAD_BYTES);
        let (up, down, total) = t.megabytes();
        assert!(up > down);
        assert!((total - up - down).abs() < 1e-9);
    }

    #[test]
    fn stream_tagging_round_trips_and_adds_fixed_overhead() {
        let inner = ClientToServer::KeyFrame {
            frame_index: 9,
            payload: Payload::sized(100),
        };
        let tagged = StreamTagged::new(3, inner.clone());
        assert_eq!(tagged.stream_id, 3);
        assert_eq!(
            StreamTagged::<ClientToServer>::tagged_bytes(100),
            100 + STREAM_TAG_BYTES
        );
        assert_eq!(tagged.into_inner(), inner);
        let reg = StreamTagged::new(7, ClientToServer::Register);
        assert_eq!(reg.message, ClientToServer::Register);
    }

    #[test]
    fn throttle_and_drop_identify_the_key_frame() {
        // Both rejection messages carry the frame index so the client can
        // reconcile exactly which upload will never be answered by an update.
        let t = ServerToClient::Throttle { frame_index: 42 };
        assert!(matches!(t, ServerToClient::Throttle { frame_index: 42 }));
        let d = ServerToClient::Dropped {
            frame_index: 7,
            reason: DropReason::UnknownStream,
        };
        match d {
            ServerToClient::Dropped {
                frame_index,
                reason,
            } => {
                assert_eq!(frame_index, 7);
                assert_eq!(reason, DropReason::UnknownStream);
                assert_ne!(reason, DropReason::UnknownFrame);
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn need_frame_and_reshare_identify_the_frame() {
        // The eviction-recovery exchange: the server names the frame it
        // evicted, the client re-uploads exactly that frame.
        let need = ServerToClient::NeedFrame { frame_index: 17 };
        assert!(matches!(
            need,
            ServerToClient::NeedFrame { frame_index: 17 }
        ));
        let reshare = ClientToServer::ReShare {
            frame_index: 17,
            payload: Payload::sized(3 * 1280 * 720),
        };
        match reshare {
            ClientToServer::ReShare {
                frame_index,
                payload,
            } => {
                assert_eq!(frame_index, 17);
                // The re-share costs the same wire bytes as the original
                // key-frame upload — eviction trades memory for bandwidth.
                assert_eq!(payload.bytes, 3 * 1280 * 720 + MESSAGE_OVERHEAD_BYTES);
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn message_variants_carry_payloads() {
        let m = ClientToServer::KeyFrame {
            frame_index: 5,
            payload: Payload::sized(10),
        };
        match m {
            ClientToServer::KeyFrame {
                frame_index,
                payload,
            } => {
                assert_eq!(frame_index, 5);
                assert!(payload.bytes > 10);
            }
            ClientToServer::Register
            | ClientToServer::ReShare { .. }
            | ClientToServer::Shutdown
            | ClientToServer::RegisterCaps { .. } => panic!("wrong variant"),
        }
        let s = ServerToClient::StudentUpdate {
            frame_index: 5,
            metric: 0.8,
            distill_steps: 3,
            payload: Payload::sized(100),
        };
        if let ServerToClient::StudentUpdate {
            metric,
            distill_steps,
            ..
        } = s
        {
            assert!(metric > 0.0 && distill_steps == 3);
        } else {
            panic!("wrong variant");
        }
    }
}
