//! Analytic bound on shard-failover takeover latency.
//!
//! The live pool's failover path (see `docs/ARCHITECTURE.md`, "Failure
//! model") has three sequential components, each with a modelled worst
//! case:
//!
//! 1. **Detection** — the warm standby notices its ward's death
//!    certificate on its next pass. An idle standby re-runs standby duty
//!    every [`FailoverModel::detect_tick`] seconds (the thread-per-shard
//!    driver's `FAILOVER_TICK`, the reactor's `REACTOR_IDLE_TICK`); a busy
//!    one may first have to finish the batch pass it is in, bounded by
//!    [`FailoverModel::pass_cost`].
//! 2. **Adoption** — claiming the carcass, flipping routes, merging
//!    mailboxes and counters: a fixed amount of pointer work, bounded by
//!    [`FailoverModel::adopt_cost`].
//! 3. **Restore** — decoding each replicated session checkpoint and
//!    re-registering the stream, linear in the number of adopted streams
//!    ([`FailoverModel::restore_cost_per_stream`]).
//!
//! [`FailoverModel::takeover_bound`] adds the three up. Like the
//! [`crate::ContentionModel`], this is a coarse *bound*, not a forecast:
//! the chaos tests assert the pool's measured takeover latency stays under
//! it, so a regression that, say, serializes restores behind an extra lock
//! or loses the detection tick shows up as a bound violation rather than
//! an unexplained slowdown.

use serde::{Deserialize, Serialize};

/// Worst-case takeover latency model for warm standby adoption.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailoverModel {
    /// Standby duty cadence in seconds: the longest an *idle* standby goes
    /// between checks of its ward's liveness.
    pub detect_tick: f64,
    /// Worst-case cost of the batch pass the standby may be in the middle
    /// of when the ward dies, in seconds (a batched teacher forward plus
    /// its distillation steps).
    pub pass_cost: f64,
    /// Fixed adoption overhead in seconds: claiming the carcass, flipping
    /// routes, merging mailbox/meters, re-queuing parked jobs.
    pub adopt_cost: f64,
    /// Per-adopted-stream restore cost in seconds: decoding the replicated
    /// checkpoint chunks and re-registering the session.
    pub restore_cost_per_stream: f64,
}

impl FailoverModel {
    /// Defaults matching the live pool's constants: a 50 ms worst-case
    /// detection tick (the reactor's idle tick; the thread-per-shard
    /// `FAILOVER_TICK` is tighter), a teacher-forward-sized pass and
    /// generous fixed costs. `pass_cost` should be raised to the measured
    /// batch cost when the teacher is not the paper's.
    pub fn paper_default() -> FailoverModel {
        FailoverModel {
            detect_tick: 0.050,
            pass_cost: 0.100,
            adopt_cost: 0.010,
            restore_cost_per_stream: 0.005,
        }
    }

    /// Worst-case delay between a shard's death and the standby *noticing*
    /// it: one full pass plus one idle tick.
    pub fn detection_bound(&self) -> f64 {
        self.pass_cost + self.detect_tick
    }

    /// Worst-case delay between a shard's death and the standby finishing
    /// adoption of `streams` streams — the quantity the pool reports as
    /// takeover latency (death certificate to takeover complete).
    pub fn takeover_bound(&self, streams: usize) -> f64 {
        self.detection_bound() + self.adopt_cost + streams as f64 * self.restore_cost_per_stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_is_monotonic_in_streams() {
        let m = FailoverModel::paper_default();
        assert!(m.takeover_bound(0) >= m.detection_bound());
        assert!(m.takeover_bound(8) > m.takeover_bound(1));
        let delta = m.takeover_bound(9) - m.takeover_bound(8);
        assert!((delta - m.restore_cost_per_stream).abs() < 1e-12);
    }

    #[test]
    fn paper_default_is_sub_second_for_small_pools() {
        // The chaos e2e adopts 8 streams at most; the bound must stay well
        // under a second or "bounded takeover" means nothing.
        let m = FailoverModel::paper_default();
        assert!(m.takeover_bound(8) < 0.5, "{}", m.takeover_bound(8));
    }
}
