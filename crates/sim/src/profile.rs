//! Latency profiles: the per-component timing table of the paper (Table 1 /
//! §5.3) plus the client-concurrency assumption of §4.4.

use serde::{Deserialize, Serialize};

/// Whether the modelled client can overlap student inference with network
/// transfers and teacher-side work.
///
/// Section 4.4 derives the execution time of the `MIN_STRIDE` frames after a
/// key frame as lying between `max(MIN_STRIDE·t_si, t_net + t_ti)` (full
/// overlap) and `MIN_STRIDE·t_si + t_net + t_ti` (no overlap). The runtime
/// takes this as an explicit parameter so both bounds — and anything in
/// between via [`Concurrency::Partial`] — can be simulated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Concurrency {
    /// The client cannot overlap anything (the paper's lower-bound case).
    None,
    /// The client overlaps a fraction `overlap` (in `[0, 1]`) of the
    /// key-frame round trip with its own inference work.
    Partial {
        /// Fraction of the round trip hidden behind client inference.
        overlap: f64,
    },
    /// The client fully overlaps inference with network/teacher work
    /// (the paper's upper-bound case; the Jetson Nano in practice is close
    /// to this thanks to asynchronous MPI receives).
    Full,
}

impl Concurrency {
    /// Execution time of the `min_stride` frames following a key frame,
    /// given the client inference latency, and the key-frame round-trip time
    /// (network + teacher + distillation), i.e. `t_c` of §4.4.
    pub fn t_c(&self, min_stride: usize, t_si: f64, round_trip: f64) -> f64 {
        let inference = min_stride as f64 * t_si;
        match self {
            Concurrency::None => inference + round_trip,
            Concurrency::Full => inference.max(round_trip),
            Concurrency::Partial { overlap } => {
                let o = overlap.clamp(0.0, 1.0);
                let full = inference.max(round_trip);
                let none = inference + round_trip;
                none + (full - none) * o
            }
        }
    }
}

/// Per-component latencies in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyProfile {
    /// Student inference latency on the client, `t_si`.
    pub student_inference: f64,
    /// One partial-distillation step on the server, `t_sd` (partial).
    pub distill_step_partial: f64,
    /// One full-distillation step on the server, `t_sd` (full).
    pub distill_step_full: f64,
    /// Teacher inference on the server, `t_ti`.
    pub teacher_inference: f64,
}

impl LatencyProfile {
    /// The paper's measured latencies (§5.3 and Table 2): `t_si` = 143 ms,
    /// `t_sd` = 13 ms (partial) / 18 ms (full), `t_ti` = 44 ms.
    pub fn paper() -> Self {
        LatencyProfile {
            student_inference: 0.143,
            distill_step_partial: 0.013,
            distill_step_full: 0.018,
            teacher_inference: 0.044,
        }
    }

    /// A profile scaled uniformly by `factor` (useful for what-if analyses,
    /// e.g. a quantized student that is 2× faster).
    pub fn scaled(&self, factor: f64) -> Self {
        LatencyProfile {
            student_inference: self.student_inference * factor,
            distill_step_partial: self.distill_step_partial * factor,
            distill_step_full: self.distill_step_full * factor,
            teacher_inference: self.teacher_inference * factor,
        }
    }

    /// The distillation-step latency for the given mode.
    pub fn distill_step(&self, partial: bool) -> f64 {
        if partial {
            self.distill_step_partial
        } else {
            self.distill_step_full
        }
    }
}

impl Default for LatencyProfile {
    fn default() -> Self {
        LatencyProfile::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_values() {
        let p = LatencyProfile::paper();
        assert!((p.student_inference - 0.143).abs() < 1e-12);
        assert!((p.distill_step(true) - 0.013).abs() < 1e-12);
        assert!((p.distill_step(false) - 0.018).abs() < 1e-12);
        assert!((p.teacher_inference - 0.044).abs() < 1e-12);
        assert_eq!(LatencyProfile::default(), p);
    }

    #[test]
    fn scaling() {
        let p = LatencyProfile::paper().scaled(0.5);
        assert!((p.student_inference - 0.0715).abs() < 1e-9);
        assert!((p.teacher_inference - 0.022).abs() < 1e-9);
    }

    #[test]
    fn concurrency_bounds_ordering() {
        // t_c(None) >= t_c(Partial) >= t_c(Full), and they bracket per §4.4.
        let (stride, t_si, rt) = (8, 0.143, 0.347);
        let none = Concurrency::None.t_c(stride, t_si, rt);
        let half = Concurrency::Partial { overlap: 0.5 }.t_c(stride, t_si, rt);
        let full = Concurrency::Full.t_c(stride, t_si, rt);
        assert!((none - (8.0 * 0.143 + 0.347)).abs() < 1e-9);
        assert!((full - (8.0f64 * 0.143).max(0.347)).abs() < 1e-9);
        assert!(none >= half && half >= full);
    }

    #[test]
    fn full_concurrency_hides_short_round_trips() {
        // When the round trip is shorter than MIN_STRIDE student inferences,
        // full concurrency hides it completely (§6.4's key observation).
        let t = Concurrency::Full.t_c(8, 0.143, 0.4);
        assert!((t - 8.0 * 0.143).abs() < 1e-9);
        // When the round trip dominates, it becomes the bottleneck.
        let t2 = Concurrency::Full.t_c(8, 0.143, 3.0);
        assert!((t2 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn partial_overlap_clamps() {
        let a = Concurrency::Partial { overlap: -1.0 }.t_c(4, 0.1, 0.2);
        let b = Concurrency::None.t_c(4, 0.1, 0.2);
        assert!((a - b).abs() < 1e-12);
        let c = Concurrency::Partial { overlap: 2.0 }.t_c(4, 0.1, 0.2);
        let d = Concurrency::Full.t_c(4, 0.1, 0.2);
        assert!((c - d).abs() < 1e-12);
    }
}
