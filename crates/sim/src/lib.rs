//! # st-sim
//!
//! Virtual-time substrate for deterministic throughput/traffic experiments.
//!
//! The paper's throughput and traffic numbers are functions of component
//! latencies (Table 1: `t_si`, `t_sd`, `t_ti`, `t_net`) and message sizes,
//! not of the host machine's wall clock. This crate provides:
//!
//! * [`VirtualClock`] — a monotonically advancing simulated clock with
//!   explicit event accounting.
//! * [`LatencyProfile`] — the per-component latency table. The
//!   paper-calibrated profile reproduces the measurements of §5.3
//!   (`t_si` = 143 ms, `t_sd` = 13 ms partial / 18 ms full, `t_ti` = 44 ms);
//!   a "measured" profile can be filled in from Criterion runs on the host.
//! * [`Concurrency`] — whether the modelled client can overlap student
//!   inference with network transfers, which is exactly the degree of freedom
//!   that separates the lower and upper bounds of §4.4.
//! * [`ContentionModel`] — the multi-stream extension of §4.4: queueing and
//!   teacher-batch amortization when S streams share W distillation workers,
//!   used to sanity-check the live server pool's measured waits.
//! * [`FailoverModel`] — worst-case bound on warm-standby takeover latency
//!   (detection tick + in-flight pass + adoption + per-stream restores),
//!   which the chaos tests hold the live pool's measured takeovers under.

pub mod clock;
pub mod contention;
pub mod failover;
pub mod memory;
pub mod profile;

pub use clock::{EventKind, EventLog, VirtualClock};
pub use contention::{ContentionModel, DEFAULT_BATCH_MARGINAL_COST, DEFAULT_DISPATCH_OVERHEAD};
pub use failover::FailoverModel;
pub use memory::{DedupModel, DELTA_ENVELOPE_OVERHEAD, FULL_ENVELOPE_OVERHEAD};
pub use profile::{Concurrency, LatencyProfile};
