//! Analytic model of weight-memory residency and update wire cost under
//! multi-stream serving.
//!
//! The paper runs one student per client. When S streams share one server
//! pool, the naive session layout deep-copies the whole pre-trained template
//! per stream, so resident weight bytes grow as `S × template`. But partial
//! distillation only ever *writes* the trainable back-end stages: the frozen
//! front-end is byte-identical across every session forever. The
//! content-keyed weight store exploits exactly that — the template is stored
//! once and each copy-on-write session privatizes only the stages its
//! optimizer touches — which turns the memory law into
//! `template + S × trainable`.
//!
//! The same sparsity shows up on the wire: an update that took zero
//! distillation steps (the metric already met the threshold) leaves every
//! trainable chunk's content hash unchanged, so its delta envelope carries
//! no chunks at all, while a full snapshot would have re-sent every
//! trainable stage regardless.
//!
//! [`DedupModel`] captures both laws in the same spirit as
//! [`crate::ContentionModel`]: deliberately coarse, meant to predict
//! orderings and rough magnitudes that the live `table13_weight_dedup`
//! experiment checks its measurements against.

use serde::{Deserialize, Serialize};

/// Per-message framing overhead of a delta envelope, in bytes: the payload
/// tag, the `u64` base-checkpoint hash, the scope byte and the `u32` chunk
/// count. A delta is never free — an all-converged update still costs this.
pub const DELTA_ENVELOPE_OVERHEAD: usize = 1 + 8 + 1 + 4;

/// Per-message framing overhead of a full-snapshot envelope: the payload
/// tag in front of the bare snapshot encoding.
pub const FULL_ENVELOPE_OVERHEAD: usize = 1;

/// Memory/wire model for S copy-on-write sessions sharing one template.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DedupModel {
    /// Encoded bytes of the full template checkpoint (every stage).
    pub template_bytes: usize,
    /// Encoded bytes of the trainable (written) stages only — the per-stream
    /// marginal cost under copy-on-write, and the size of one full update.
    pub trainable_bytes: usize,
}

impl DedupModel {
    /// Build the model from measured checkpoint sizes.
    pub fn new(template_bytes: usize, trainable_bytes: usize) -> Self {
        DedupModel {
            template_bytes,
            trainable_bytes: trainable_bytes.min(template_bytes),
        }
    }

    /// Resident weight bytes with deep-cloned sessions: every stream holds
    /// its own copy of every stage.
    pub fn clone_resident_bytes(&self, streams: usize) -> usize {
        streams * self.template_bytes
    }

    /// Resident weight bytes with copy-on-write sessions over a shared
    /// content-keyed store: the template is stored once and each stream
    /// privatizes only its trainable stages.
    pub fn cow_resident_bytes(&self, streams: usize) -> usize {
        if streams == 0 {
            return 0;
        }
        self.template_bytes + streams * self.trainable_bytes
    }

    /// Ratio of the clone law to the copy-on-write law at the given stream
    /// count — how many times more memory deep cloning needs. Grows towards
    /// `template/trainable` as the one-off template share amortizes.
    pub fn dedup_factor(&self, streams: usize) -> f64 {
        let cow = self.cow_resident_bytes(streams);
        if cow == 0 {
            return f64::NAN;
        }
        self.clone_resident_bytes(streams) as f64 / cow as f64
    }

    /// Streams hosted per GiB of resident weight memory under deep cloning.
    pub fn clone_streams_per_gb(&self) -> f64 {
        if self.template_bytes == 0 {
            return f64::INFINITY;
        }
        (1u64 << 30) as f64 / self.template_bytes as f64
    }

    /// Streams hosted per GiB under copy-on-write, at the marginal cost of
    /// one more stream (the template's one-off share amortizes to zero).
    pub fn cow_streams_per_gb(&self) -> f64 {
        if self.trainable_bytes == 0 {
            return f64::INFINITY;
        }
        (1u64 << 30) as f64 / self.trainable_bytes as f64
    }

    /// Wire bytes of `updates` student updates sent as full-snapshot
    /// envelopes: every update re-sends every trainable stage.
    pub fn full_update_bytes(&self, updates: usize) -> usize {
        updates * (FULL_ENVELOPE_OVERHEAD + self.trainable_bytes)
    }

    /// Wire bytes of the same updates sent as deltas, when a fraction
    /// `active` of them actually changed the weights (took at least one
    /// distillation step) and the rest early-stopped at an unchanged
    /// checkpoint. Changed updates carry their trainable chunks plus the
    /// envelope; converged ones only the envelope.
    pub fn delta_update_bytes(&self, updates: usize, active: f64) -> f64 {
        let active = active.clamp(0.0, 1.0);
        updates as f64 * (DELTA_ENVELOPE_OVERHEAD as f64 + active * self.trainable_bytes as f64)
    }

    /// Predicted delta-to-full wire ratio for an update population with the
    /// given active fraction. Below 1 whenever some updates converge early
    /// and the trainable payload dwarfs the envelope overhead — the
    /// inequality `table13_weight_dedup` measures live.
    pub fn delta_wire_ratio(&self, active: f64) -> f64 {
        let full = self.full_update_bytes(1);
        if full == 0 {
            return f64::NAN;
        }
        self.delta_update_bytes(1, active) / full as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DedupModel {
        // A template of 100 KiB with 20 KiB of trainable back-end — the
        // 80/20 shape partial distillation produces.
        DedupModel::new(100 * 1024, 20 * 1024)
    }

    #[test]
    fn cow_grows_sublinearly_against_the_clone_law() {
        let m = model();
        assert_eq!(m.cow_resident_bytes(0), 0);
        // A lone stream pays for the shared template *and* its private
        // stages — the store only wins once anything shares the template.
        assert!(m.cow_resident_bytes(1) > m.clone_resident_bytes(1));
        for streams in [2usize, 8, 64] {
            assert!(m.cow_resident_bytes(streams) <= m.clone_resident_bytes(streams));
        }
        // The marginal cost per stream is the trainable share, not the
        // template: doubling the population far less than doubles residency
        // once the template is amortized.
        let at_8 = m.cow_resident_bytes(8);
        let at_16 = m.cow_resident_bytes(16);
        assert!(at_16 - at_8 == 8 * m.trainable_bytes);
        // The dedup factor approaches template/trainable = 5x from below.
        assert!(m.dedup_factor(1) < m.dedup_factor(64));
        assert!(m.dedup_factor(64) < 5.0);
        assert!(m.dedup_factor(64) > 4.0);
    }

    #[test]
    fn streams_per_gb_reflects_the_marginal_cost() {
        let m = model();
        // CoW hosts template/trainable = 5x more streams per GiB.
        assert!((m.cow_streams_per_gb() / m.clone_streams_per_gb() - 5.0).abs() < 1e-9);
        // Degenerate sizes saturate instead of dividing by zero.
        let free = DedupModel::new(0, 0);
        assert!(free.clone_streams_per_gb().is_infinite());
        assert!(free.cow_streams_per_gb().is_infinite());
    }

    #[test]
    fn delta_wire_cost_tracks_the_active_fraction() {
        let m = model();
        // All updates active: the delta still pays its larger envelope, so
        // it is marginally above full — delta encoding wins on convergence,
        // not on framing.
        assert!(m.delta_wire_ratio(1.0) > 1.0);
        // Half the updates converged: the ratio drops towards active.
        let half = m.delta_wire_ratio(0.5);
        assert!(half < 0.6, "ratio {half}");
        // Fully converged population: only envelopes cross the wire.
        let idle = m.delta_update_bytes(10, 0.0);
        assert!((idle - 10.0 * DELTA_ENVELOPE_OVERHEAD as f64).abs() < 1e-9);
        // Out-of-range fractions clamp rather than extrapolate.
        assert!((m.delta_update_bytes(4, 2.0) - m.delta_update_bytes(4, 1.0)).abs() < 1e-9);
    }

    #[test]
    fn trainable_share_never_exceeds_the_template() {
        let m = DedupModel::new(1024, 4096);
        assert_eq!(m.trainable_bytes, 1024);
    }
}
