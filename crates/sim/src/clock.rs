//! Virtual clock and event accounting.

use serde::{Deserialize, Serialize};

/// What a span of virtual time was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// Student inference on the client (`t_si`).
    StudentInference,
    /// One student distillation step on the server (`t_sd`).
    DistillStep,
    /// Teacher inference on the server (`t_ti`).
    TeacherInference,
    /// Network transfer (up or down).
    NetworkTransfer,
    /// Client idling while waiting for an in-flight student update.
    WaitForUpdate,
    /// Anything else (setup, bookkeeping).
    Other,
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Start time in seconds of virtual time.
    pub start: f64,
    /// Duration in seconds.
    pub duration: f64,
    /// What the time was spent on.
    pub kind: EventKind,
}

/// An append-only log of events with per-kind totals.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// All events in insertion order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Total virtual time attributed to a kind.
    pub fn total_for(&self, kind: EventKind) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.duration)
            .sum()
    }

    /// Number of events of a kind.
    pub fn count_for(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

/// A monotonically advancing virtual clock.
///
/// The clock never reads the host's wall clock; callers advance it by the
/// modelled duration of each operation. `advance_to` supports modelling
/// overlap: an asynchronous completion that happened "in the background" can
/// move the clock forward only if it finishes later than the foreground work.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: f64,
    log: EventLog,
}

impl VirtualClock {
    /// A clock at time zero with an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance by `duration` seconds, recording the event.
    pub fn advance(&mut self, duration: f64, kind: EventKind) {
        assert!(duration >= 0.0, "cannot advance by negative time");
        self.log.push(Event {
            start: self.now,
            duration,
            kind,
        });
        self.now += duration;
    }

    /// Advance to an absolute time if it is in the future (no-op otherwise).
    /// Records the waited duration under `kind`. Returns the wait duration.
    pub fn advance_to(&mut self, time: f64, kind: EventKind) -> f64 {
        if time > self.now {
            let wait = time - self.now;
            self.advance(wait, kind);
            wait
        } else {
            0.0
        }
    }

    /// The event log accumulated so far.
    pub fn log(&self) -> &EventLog {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_and_logs() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance(0.143, EventKind::StudentInference);
        c.advance(0.013, EventKind::DistillStep);
        c.advance(0.143, EventKind::StudentInference);
        assert!((c.now() - 0.299).abs() < 1e-12);
        assert_eq!(c.log().count_for(EventKind::StudentInference), 2);
        assert!((c.log().total_for(EventKind::StudentInference) - 0.286).abs() < 1e-12);
        assert_eq!(c.log().count_for(EventKind::TeacherInference), 0);
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let mut c = VirtualClock::new();
        c.advance(1.0, EventKind::Other);
        let waited = c.advance_to(0.5, EventKind::WaitForUpdate);
        assert_eq!(waited, 0.0);
        assert_eq!(c.now(), 1.0);
        let waited = c.advance_to(1.75, EventKind::WaitForUpdate);
        assert!((waited - 0.75).abs() < 1e-12);
        assert!((c.now() - 1.75).abs() < 1e-12);
        assert_eq!(c.log().count_for(EventKind::WaitForUpdate), 1);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_advance_panics() {
        VirtualClock::new().advance(-1.0, EventKind::Other);
    }

    #[test]
    fn event_log_totals() {
        let mut log = EventLog::new();
        log.push(Event {
            start: 0.0,
            duration: 2.0,
            kind: EventKind::NetworkTransfer,
        });
        log.push(Event {
            start: 2.0,
            duration: 3.0,
            kind: EventKind::NetworkTransfer,
        });
        assert_eq!(log.total_for(EventKind::NetworkTransfer), 5.0);
        assert_eq!(log.events().len(), 2);
    }
}
