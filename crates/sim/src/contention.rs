//! Analytic model of server-side contention under multi-stream serving.
//!
//! The paper's execution-time model (§4.4) assumes a dedicated server: the
//! key-frame round trip is `t_net + t_ti + d·t_sd` and the only question is
//! how much of it the client hides behind its own inference
//! ([`crate::Concurrency`]). When S streams share a pool of W workers, two
//! new terms appear:
//!
//! * **queueing** — a key frame may find its shard's worker busy with other
//!   streams' key frames, adding waiting time to the round trip;
//! * **batch amortization** — co-scheduled key frames share one (batched)
//!   teacher forward pass, which *reduces* the teacher component per frame.
//!
//! [`ContentionModel`] captures both with a deliberately coarse M/D/c-style
//! approximation: it is meant to predict orderings and rough magnitudes
//! (more streams per worker → longer waits; more workers → shorter), which
//! the live server-pool experiments sanity-check their measurements against.
//!
//! The model tracks the pool's scheduling generations (see
//! `docs/ARCHITECTURE.md` at the workspace root for the full lifecycle):
//!
//! * **Fair (deficit-round-robin) drain** — the live pool drains per-stream
//!   FIFO queues with per-round quanta, so a hot stream cannot inflate its
//!   shard-mates' waits the way a shared FIFO queue would. The
//!   [`ContentionModel::skewed_delay_cold_fair`] /
//!   [`ContentionModel::skewed_delay_hot_fair`] pair predicts that split,
//!   next to the [`ContentionModel::skewed_delay_fifo`] cost a FIFO drain
//!   would impose on everyone.
//! * **Work stealing** — placement pins a stream to one shard, so without
//!   stealing the hot shard serves its skewed load alone while other
//!   workers idle ([`ContentionModel::static_hot_shard_delay`]). With
//!   cross-shard stealing (`PlacementPolicy::Rebalance`) idle shards drain
//!   the busy one and the pool becomes work-conserving: the whole skewed
//!   population is effectively served by all W workers
//!   ([`ContentionModel::stealing_delay`]).
//! * **Reactor dispatch** — with `reactor_threads` set, shard count is
//!   decoupled from thread count: a fixed set of W workers drains whichever
//!   shards are ready. Thread-per-shard is a *partitioned* queueing system
//!   (each arrival can only be served by its own shard's thread, so a burst
//!   on one shard queues serially while other threads idle —
//!   [`ContentionModel::thread_per_shard_delay`]); the reactor is a *pooled*
//!   one (an arrival waits only while **all** W workers are busy —
//!   [`ContentionModel::reactor_delay`]), at the price of a per-event
//!   dispatch overhead. At a fixed wait target the pooled law admits
//!   utilization much closer to 1, which is the analytic counterpart of the
//!   `table12_capacity` experiment
//!   ([`ContentionModel::thread_per_shard_capacity`] vs
//!   [`ContentionModel::reactor_capacity`]).

use crate::profile::{Concurrency, LatencyProfile};
use serde::{Deserialize, Serialize};

/// Default marginal cost of each additional co-scheduled frame in a batched
/// teacher forward, as a fraction of a solo forward. This is the single
/// source of truth shared by the analytic [`ContentionModel`] and the
/// default `Teacher::batched_inference_latency` in `st-teacher` — tune it in
/// one place and both the live pool's accounting and the model move
/// together.
pub const DEFAULT_BATCH_MARGINAL_COST: f64 = 0.2;

/// Default per-event dispatch overhead of the reactor, in seconds: the cost
/// of waking a worker, locking the shard state and restoring its cursor
/// before any useful service happens. Dwarfed by teacher service times, but
/// kept explicit so the model cannot pretend the decoupling is free.
pub const DEFAULT_DISPATCH_OVERHEAD: f64 = 20e-6;

/// Contention model for S streams sharing W distillation workers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionModel {
    /// Number of worker threads (shards) serving key frames.
    pub workers: usize,
    /// Marginal cost of each additional co-scheduled frame in a batched
    /// teacher forward, as a fraction of a solo forward (GPU teachers are
    /// strongly sub-linear; [`DEFAULT_BATCH_MARGINAL_COST`] matches the
    /// default `Teacher::batched_inference_latency`).
    pub batch_marginal_cost: f64,
}

impl ContentionModel {
    /// A model with the default batching assumption.
    pub fn with_workers(workers: usize) -> Self {
        ContentionModel {
            workers: workers.max(1),
            batch_marginal_cost: DEFAULT_BATCH_MARGINAL_COST,
        }
    }

    /// Server service time of one key frame: the (possibly amortized)
    /// teacher share plus `steps` distillation steps.
    ///
    /// `batch` is the expected number of co-scheduled key frames; `batch <=
    /// 1` means no amortization.
    pub fn service_time(
        &self,
        profile: &LatencyProfile,
        partial: bool,
        mean_steps: f64,
        batch: f64,
    ) -> f64 {
        let b = batch.max(1.0);
        let teacher = profile.teacher_inference * (1.0 + self.batch_marginal_cost * (b - 1.0)) / b;
        teacher + mean_steps * profile.distill_step(partial)
    }

    /// Utilization of the worker pool: fraction of worker time consumed by
    /// key-frame service, given `streams` clients that each produce a key
    /// frame every `inter_arrival` seconds needing `service` seconds of work.
    pub fn utilization(&self, streams: usize, service: f64, inter_arrival: f64) -> f64 {
        if inter_arrival <= 0.0 {
            return f64::INFINITY;
        }
        streams as f64 * service / (self.workers as f64 * inter_arrival)
    }

    /// Expected queueing delay before a key frame's service starts.
    ///
    /// M/D/c-flavoured approximation: delay ≈ ρ/(1−ρ) · service/2 for
    /// utilization ρ < 1, saturating at one full busy period per competing
    /// stream when the pool is overloaded. Exact queueing theory is beside
    /// the point — the live pool's measured waits are compared against this
    /// for *ordering* and order-of-magnitude agreement.
    pub fn queueing_delay(&self, streams: usize, service: f64, inter_arrival: f64) -> f64 {
        self.delay_for(streams as f64, service, inter_arrival)
    }

    /// The delay law above for a (possibly fractional) effective stream
    /// count — the shared core of the uniform and skewed predictions.
    fn delay_for(&self, offered_streams: f64, service: f64, inter_arrival: f64) -> f64 {
        if inter_arrival <= 0.0 {
            let competitors = ((offered_streams / self.workers as f64) - 1.0).max(0.0);
            return competitors * service;
        }
        let rho = offered_streams * service / (self.workers as f64 * inter_arrival);
        let competitors = ((offered_streams / self.workers as f64) - 1.0).max(0.0);
        let saturated = competitors * service;
        if rho >= 1.0 {
            saturated
        } else {
            (rho / (1.0 - rho) * service / 2.0).min(saturated)
        }
    }

    /// Effective uniform-rate stream count of a skewed population: `streams`
    /// clients where one hot stream sends `hot_multiplier`× the base
    /// key-frame rate contributes the same total arrival rate as this many
    /// well-behaved streams.
    pub fn skewed_offered_streams(streams: usize, hot_multiplier: f64) -> f64 {
        if streams == 0 {
            return 0.0;
        }
        (streams - 1) as f64 + hot_multiplier.max(1.0)
    }

    /// Utilization under a skewed population (one hot stream at
    /// `hot_multiplier`× the base rate).
    pub fn skewed_utilization(
        &self,
        streams: usize,
        hot_multiplier: f64,
        service: f64,
        inter_arrival: f64,
    ) -> f64 {
        self.utilization_rate(
            Self::skewed_offered_streams(streams, hot_multiplier),
            service,
            inter_arrival,
        )
    }

    /// Predicted queueing delay under a **FIFO** drain with a skewed
    /// population: one shared queue, so the hot stream's excess arrivals
    /// inflate every stream's wait equally — hot and cold alike pay for the
    /// hot stream's behaviour. This is what PR 2's pool did.
    pub fn skewed_delay_fifo(
        &self,
        streams: usize,
        hot_multiplier: f64,
        service: f64,
        inter_arrival: f64,
    ) -> f64 {
        self.delay_for(
            Self::skewed_offered_streams(streams, hot_multiplier),
            service,
            inter_arrival,
        )
    }

    /// Predicted queueing delay of a **cold** stream under a fair
    /// (deficit-round-robin) drain: the scheduler caps the hot stream at its
    /// per-round share, so a cold stream waits as if the population were
    /// uniform — independent of the hot multiplier. The fairness property the
    /// live pool's skew tests assert is exactly this prediction.
    pub fn skewed_delay_cold_fair(&self, streams: usize, service: f64, inter_arrival: f64) -> f64 {
        self.delay_for(streams as f64, service, inter_arrival)
    }

    /// Predicted queueing delay of the **hot** stream under a fair drain: it
    /// competes for shared slots like everyone else, but its excess arrivals
    /// queue behind each other — roughly `hot_multiplier − 1` of its own
    /// jobs ahead of a new one once its fair share is saturated. The hot
    /// stream bears the cost of its own burstiness instead of spreading it.
    pub fn skewed_delay_hot_fair(
        &self,
        streams: usize,
        hot_multiplier: f64,
        service: f64,
        inter_arrival: f64,
    ) -> f64 {
        self.skewed_delay_cold_fair(streams, service, inter_arrival)
            + (hot_multiplier.max(1.0) - 1.0) * service
    }

    /// Predicted queueing delay at the **hot shard** under *static*
    /// placement (no stealing): the hot stream and its `mates` co-located
    /// well-behaved streams compete for that one worker while every other
    /// shard idles — the whole skewed excess lands on one queue.
    pub fn static_hot_shard_delay(
        &self,
        mates: usize,
        hot_multiplier: f64,
        service: f64,
        inter_arrival: f64,
    ) -> f64 {
        let local = ContentionModel {
            workers: 1,
            batch_marginal_cost: self.batch_marginal_cost,
        };
        local.delay_for(
            Self::skewed_offered_streams(mates + 1, hot_multiplier),
            service,
            inter_arrival,
        )
    }

    /// Predicted queueing delay with cross-shard **work stealing**: an idle
    /// shard pulls whole streams from the busy one, so the pool is
    /// work-conserving and the skewed population is effectively served by
    /// all W workers. With W > 1 this is never above
    /// [`ContentionModel::static_hot_shard_delay`] for the same population —
    /// the inequality the `table11_steal` experiment measures live.
    pub fn stealing_delay(
        &self,
        streams: usize,
        hot_multiplier: f64,
        service: f64,
        inter_arrival: f64,
    ) -> f64 {
        self.delay_for(
            Self::skewed_offered_streams(streams, hot_multiplier),
            service,
            inter_arrival,
        )
    }

    /// Predicted queueing delay under the **thread-per-shard** topology:
    /// `workers` OS threads, one per shard, with the stream population
    /// spread evenly across them. Each shard is its own single-server queue
    /// — a momentary burst on one shard queues serially behind that shard's
    /// thread even while every other thread idles. (This is exactly the
    /// partition-equivalent [`ContentionModel::queueing_delay`] law, named
    /// for the comparison.)
    pub fn thread_per_shard_delay(&self, streams: usize, service: f64, inter_arrival: f64) -> f64 {
        self.delay_for(streams as f64, service, inter_arrival)
    }

    /// Predicted queueing delay under the **reactor** topology: the same
    /// `workers` threads, but hosting arbitrarily many shards and draining
    /// whichever are ready. The system is pooled — an arriving key frame
    /// waits only while *all* W workers are busy, so below saturation the
    /// queueing term shrinks by the worker count relative to the partitioned
    /// law (M/D/c against c independent M/D/1 queues at equal utilization).
    /// Every event also pays `dispatch_overhead` seconds of reactor
    /// bookkeeping on top of its service; at saturation the work limit is
    /// the same as thread-per-shard's — decoupling buys burst absorption,
    /// not throughput.
    pub fn reactor_delay(
        &self,
        streams: usize,
        service: f64,
        inter_arrival: f64,
        dispatch_overhead: f64,
    ) -> f64 {
        let service = service + dispatch_overhead.max(0.0);
        let offered = streams as f64;
        if inter_arrival <= 0.0 {
            return self.delay_for(offered, service, inter_arrival);
        }
        let workers = self.workers as f64;
        let rho = offered * service / (workers * inter_arrival);
        let saturated = ((offered / workers) - 1.0).max(0.0) * service;
        if rho >= 1.0 {
            saturated
        } else {
            (rho / (1.0 - rho) * service / (2.0 * workers)).min(saturated)
        }
    }

    /// Largest stream count whose [`thread_per_shard_delay`] stays within
    /// `target` seconds of queueing. Zero if even a lone stream misses it.
    ///
    /// [`thread_per_shard_delay`]: ContentionModel::thread_per_shard_delay
    pub fn thread_per_shard_capacity(
        &self,
        target: f64,
        service: f64,
        inter_arrival: f64,
    ) -> usize {
        capacity_where(target, |streams| {
            self.thread_per_shard_delay(streams, service, inter_arrival)
        })
    }

    /// Largest stream count whose [`reactor_delay`] stays within `target`
    /// seconds of queueing. At tight targets (small relative to the service
    /// time) this approaches `workers` × the thread-per-shard capacity —
    /// the pooled law tolerates utilization W times closer to the knee.
    ///
    /// [`reactor_delay`]: ContentionModel::reactor_delay
    pub fn reactor_capacity(
        &self,
        target: f64,
        service: f64,
        inter_arrival: f64,
        dispatch_overhead: f64,
    ) -> usize {
        capacity_where(target, |streams| {
            self.reactor_delay(streams, service, inter_arrival, dispatch_overhead)
        })
    }

    /// Utilization for a fractional effective stream count.
    fn utilization_rate(&self, offered_streams: f64, service: f64, inter_arrival: f64) -> f64 {
        if inter_arrival <= 0.0 {
            return f64::INFINITY;
        }
        offered_streams * service / (self.workers as f64 * inter_arrival)
    }

    /// The key-frame round trip under contention: network + queueing +
    /// service.
    #[allow(clippy::too_many_arguments)]
    pub fn round_trip(
        &self,
        profile: &LatencyProfile,
        partial: bool,
        mean_steps: f64,
        batch: f64,
        streams: usize,
        inter_arrival: f64,
        t_net: f64,
    ) -> f64 {
        let service = self.service_time(profile, partial, mean_steps, batch);
        t_net + self.queueing_delay(streams, service, inter_arrival) + service
    }

    /// Predicted per-stream execution time of the `min_stride` frames after
    /// a key frame, plugging the contended round trip into the paper's
    /// [`Concurrency`] model (§4.4).
    #[allow(clippy::too_many_arguments)]
    pub fn t_c(
        &self,
        concurrency: Concurrency,
        profile: &LatencyProfile,
        partial: bool,
        min_stride: usize,
        mean_steps: f64,
        batch: f64,
        streams: usize,
        inter_arrival: f64,
        t_net: f64,
    ) -> f64 {
        let rt = self.round_trip(
            profile,
            partial,
            mean_steps,
            batch,
            streams,
            inter_arrival,
            t_net,
        );
        concurrency.t_c(min_stride, profile.student_inference, rt)
    }
}

/// Hard ceiling on the capacity search — far above any population the model
/// is credible for, it only guards against a delay law that never crosses
/// the target (e.g. zero service time).
const CAPACITY_SEARCH_CEILING: usize = 1 << 22;

/// Largest `streams` with `delay(streams) <= target`, assuming `delay` is
/// monotone non-decreasing in the stream count (every law in this module
/// is). Exponential sweep to bracket the knee, then binary search.
fn capacity_where<F: Fn(usize) -> f64>(target: f64, delay: F) -> usize {
    if delay(1) > target {
        return 0;
    }
    let mut lo = 1usize; // known-good
    let mut hi = 2usize;
    while hi < CAPACITY_SEARCH_CEILING && delay(hi) <= target {
        lo = hi;
        hi *= 2;
    }
    if hi >= CAPACITY_SEARCH_CEILING {
        return CAPACITY_SEARCH_CEILING;
    }
    // Invariant: delay(lo) <= target < delay(hi).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if delay(mid) <= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(workers: usize) -> ContentionModel {
        ContentionModel::with_workers(workers)
    }

    #[test]
    fn batching_amortizes_the_teacher_share() {
        let p = LatencyProfile::paper();
        let solo = model(1).service_time(&p, true, 4.0, 1.0);
        let batched = model(1).service_time(&p, true, 4.0, 4.0);
        assert!(batched < solo, "batched {batched} vs solo {solo}");
        // Distillation steps are not amortized — only the teacher is.
        let floor = 4.0 * p.distill_step(true);
        assert!(batched > floor);
        // batch <= 1 is a no-op.
        assert!((model(1).service_time(&p, true, 4.0, 0.0) - solo).abs() < 1e-12);
    }

    #[test]
    fn more_streams_per_worker_mean_longer_waits() {
        let p = LatencyProfile::paper();
        let service = model(1).service_time(&p, true, 4.0, 1.0);
        let inter = 8.0 * p.student_inference; // a key frame every MIN_STRIDE frames
        let m = model(1);
        let one = m.queueing_delay(1, service, inter);
        let four = m.queueing_delay(4, service, inter);
        let eight = m.queueing_delay(8, service, inter);
        assert!(one <= four && four <= eight, "{one} {four} {eight}");
        assert!(eight > 0.0);
    }

    #[test]
    fn more_workers_mean_shorter_waits() {
        let p = LatencyProfile::paper();
        let service = model(1).service_time(&p, true, 4.0, 1.0);
        let inter = 8.0 * p.student_inference;
        let w1 = model(1).queueing_delay(4, service, inter);
        let w2 = model(2).queueing_delay(4, service, inter);
        let w4 = model(4).queueing_delay(4, service, inter);
        assert!(w1 >= w2 && w2 >= w4, "{w1} {w2} {w4}");
        // With one worker per stream there is (almost) nothing to wait for.
        assert!(w4 < w1 + 1e-12);
    }

    #[test]
    fn overload_saturates_instead_of_diverging() {
        let p = LatencyProfile::paper();
        let service = model(1).service_time(&p, true, 8.0, 1.0);
        // Arrivals far faster than service: utilization >> 1.
        let delay = model(1).queueing_delay(16, service, service / 100.0);
        assert!(delay.is_finite());
        assert!((delay - 15.0 * service).abs() < 1e-9);
    }

    #[test]
    fn skewed_arrivals_penalize_everyone_under_fifo_but_only_the_hot_stream_under_drr() {
        let p = LatencyProfile::paper();
        let service = model(1).service_time(&p, true, 4.0, 1.0);
        let inter = 8.0 * p.student_inference;
        let m = model(1);
        let streams = 4;

        // A 4-stream population with one stream at 8x offers the load of 11
        // uniform streams.
        assert!((ContentionModel::skewed_offered_streams(streams, 8.0) - 11.0).abs() < 1e-12);
        assert_eq!(ContentionModel::skewed_offered_streams(0, 8.0), 0.0);

        // FIFO: the shared queue makes every stream pay for the hot one —
        // the predicted delay grows with the multiplier.
        let fifo_1 = m.skewed_delay_fifo(streams, 1.0, service, inter);
        let fifo_4 = m.skewed_delay_fifo(streams, 4.0, service, inter);
        let fifo_8 = m.skewed_delay_fifo(streams, 8.0, service, inter);
        assert!(
            fifo_1 <= fifo_4 && fifo_4 <= fifo_8,
            "{fifo_1} {fifo_4} {fifo_8}"
        );
        assert!(fifo_8 > fifo_1, "skew must visibly inflate FIFO waits");

        // Fair drain: a cold stream's delay does not depend on the hot
        // multiplier at all — it matches the uniform-population prediction —
        // and never exceeds the FIFO delay.
        let cold = m.skewed_delay_cold_fair(streams, service, inter);
        assert!((cold - m.queueing_delay(streams, service, inter)).abs() < 1e-12);
        assert!(cold <= fifo_8 + 1e-12);

        // The hot stream bears its own excess: at 1x it is just another
        // stream, and its penalty grows with the multiplier.
        let hot_1 = m.skewed_delay_hot_fair(streams, 1.0, service, inter);
        let hot_8 = m.skewed_delay_hot_fair(streams, 8.0, service, inter);
        assert!((hot_1 - cold).abs() < 1e-12);
        assert!(hot_8 > cold);
        assert!(hot_8 > hot_1);

        // Utilization bookkeeping follows the offered load.
        let u_uniform = m.skewed_utilization(streams, 1.0, service, inter);
        let u_skewed = m.skewed_utilization(streams, 8.0, service, inter);
        assert!((u_uniform - m.utilization(streams, service, inter)).abs() < 1e-12);
        assert!(u_skewed > u_uniform);
    }

    #[test]
    fn stealing_beats_a_static_hot_shard() {
        let p = LatencyProfile::paper();
        let service = model(1).service_time(&p, true, 4.0, 1.0);
        let inter = 8.0 * p.student_inference;
        let m = model(4);
        // 8 streams over 4 shards, one at 8x, one shard-mate next to it.
        let static_hot = m.static_hot_shard_delay(1, 8.0, service, inter);
        let stolen = m.stealing_delay(8, 8.0, service, inter);
        assert!(
            stolen <= static_hot + 1e-12,
            "stealing {stolen} vs static hot shard {static_hot}"
        );
        // Under saturation the gap is real, not a tie.
        let tight_inter = service; // arrivals as fast as service
        let static_tight = m.static_hot_shard_delay(1, 8.0, service, tight_inter);
        let stolen_tight = m.stealing_delay(8, 8.0, service, tight_inter);
        assert!(stolen_tight < static_tight);
        // With a single worker there is nothing to steal from: the two
        // predictions coincide for the same population.
        let m1 = model(1);
        let lone_static = m1.static_hot_shard_delay(3, 8.0, service, inter);
        let lone_stolen = m1.stealing_delay(4, 8.0, service, inter);
        assert!((lone_static - lone_stolen).abs() < 1e-12);
        // More stealing workers can only help.
        let w2 = model(2).stealing_delay(8, 8.0, service, inter);
        let w8 = model(8).stealing_delay(8, 8.0, service, inter);
        assert!(w8 <= w2 + 1e-12);
    }

    #[test]
    fn reactor_pools_the_workers_thread_per_shard_partitions_them() {
        let p = LatencyProfile::paper();
        let service = model(1).service_time(&p, true, 4.0, 1.0);
        let inter = 8.0 * p.student_inference;
        let m = model(4);
        let streams = 12;

        // Below saturation the pooled wait is the partitioned wait shrunk by
        // the worker count (plus the dispatch overhead's small service tax).
        let partitioned = m.thread_per_shard_delay(streams, service, inter);
        let pooled = m.reactor_delay(streams, service, inter, 0.0);
        assert!(partitioned > 0.0);
        assert!(
            (pooled - partitioned / 4.0).abs() < 1e-12,
            "pooled {pooled} vs partitioned {partitioned}"
        );

        // Dispatch overhead is not free: it strictly lengthens the wait...
        let taxed = m.reactor_delay(streams, service, inter, DEFAULT_DISPATCH_OVERHEAD);
        assert!(taxed > pooled);
        // ...but stays far below the partitioned wait for realistic costs.
        assert!(taxed < partitioned / 2.0);

        // With one worker there is nothing to pool: the laws coincide.
        let m1 = model(1);
        let lone_partitioned = m1.thread_per_shard_delay(4, service, inter);
        let lone_pooled = m1.reactor_delay(4, service, inter, 0.0);
        assert!((lone_partitioned - lone_pooled).abs() < 1e-12);

        // Saturation is a work limit, not a scheduling artifact: overloaded,
        // both topologies degrade to the same busy-period bound.
        let overloaded_partitioned = m.thread_per_shard_delay(64, service, service / 100.0);
        let overloaded_pooled = m.reactor_delay(64, service, service / 100.0, 0.0);
        assert!((overloaded_partitioned - overloaded_pooled).abs() < 1e-12);
    }

    #[test]
    fn reactor_capacity_beats_thread_per_shard_at_a_tight_wait_target() {
        let p = LatencyProfile::paper();
        let service = model(1).service_time(&p, true, 4.0, 1.0);
        let inter = 8.0 * p.student_inference;
        let m = model(4);
        // A tight p99-style target: a tenth of one service time of queueing.
        let target = service / 10.0;

        let partitioned = m.thread_per_shard_capacity(target, service, inter);
        let pooled = m.reactor_capacity(target, service, inter, DEFAULT_DISPATCH_OVERHEAD);
        assert!(partitioned >= 1);
        assert!(
            pooled >= 3 * partitioned,
            "reactor capacity {pooled} vs thread-per-shard {partitioned}"
        );

        // Capacity grows with the fixed worker set under both laws.
        let m8 = model(8);
        assert!(m8.thread_per_shard_capacity(target, service, inter) >= partitioned);
        assert!(m8.reactor_capacity(target, service, inter, DEFAULT_DISPATCH_OVERHEAD) >= pooled);

        // A target no stream can meet yields zero capacity; a trivially
        // loose one is bounded by the search ceiling, not a hang.
        assert_eq!(m.thread_per_shard_capacity(-1.0, service, inter), 0);
        let loose = m.reactor_capacity(f64::INFINITY, service, inter, 0.0);
        assert!(loose >= 1);
    }

    #[test]
    fn contended_round_trip_feeds_the_concurrency_bounds() {
        let p = LatencyProfile::paper();
        let m = model(2);
        let inter = 8.0 * p.student_inference;
        let uncontended = m.t_c(Concurrency::Full, &p, true, 8, 4.0, 1.0, 2, inter, 0.05);
        let contended = m.t_c(Concurrency::Full, &p, true, 8, 4.0, 1.0, 16, inter, 0.05);
        // More streams can only lengthen (or leave unchanged) the round trip,
        // and Full concurrency keeps t_c at least the inference floor.
        assert!(contended >= uncontended - 1e-12);
        assert!(uncontended >= 8.0 * p.student_inference - 1e-12);
        // The §4.4 ordering survives contention.
        let none = m.t_c(Concurrency::None, &p, true, 8, 4.0, 1.0, 16, inter, 0.05);
        assert!(none >= contended);
    }
}
