//! Offline stand-in for `crossbeam`, built entirely on `std`.
//!
//! Two pieces of crossbeam are used by the workspace and both have direct
//! std equivalents since Rust 1.63:
//!
//! * [`scope`] — scoped threads, implemented over [`std::thread::scope`].
//!   The one API difference is panic handling: crossbeam returns `Err` when
//!   a child panics, while std propagates the panic out of the scope. Callers
//!   here immediately `.expect()` the result, so both surface a panic either
//!   way.
//! * [`channel`] — unbounded MPSC channels over [`std::sync::mpsc`], with
//!   crossbeam's error-type names (`TryRecvError`, `RecvTimeoutError`).

use std::any::Any;

/// A scope handle for spawning threads that may borrow from the enclosing
/// stack frame.
///
/// Unlike crossbeam, the spawn closure receives this handle *by value* (it is
/// `Copy`); every call site in the workspace ignores the argument (`|_| ...`),
/// so the difference is invisible.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives a copy of the scope handle
    /// so nested spawns remain possible.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        self.inner.spawn(move || f(handle))
    }
}

/// Create a scope for spawning borrowing threads; all threads are joined
/// before this returns. Mirrors `crossbeam::scope`.
///
/// # Errors
///
/// The real crossbeam returns `Err` if any unjoined child panicked; this
/// implementation instead lets [`std::thread::scope`] propagate the panic, so
/// the `Result` is always `Ok` when it is returned at all.
#[allow(clippy::missing_panics_doc)]
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

pub mod channel {
    //! Unbounded MPSC channels with crossbeam's API names.

    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half of an unbounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the receiver is gone; carries
    /// the unsent message like crossbeam's.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// All senders have been dropped and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// All senders have been dropped and the queue is drained.
        Disconnected,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Queue a message; fails only if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            self.0.recv().map_err(|_| RecvTimeoutError::Disconnected)
        }
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    #[test]
    fn scope_joins_and_borrows() {
        let mut data = [0u32; 8];
        super::scope(|s| {
            for chunk in data.chunks_mut(2) {
                s.spawn(move |_| {
                    for x in chunk.iter_mut() {
                        *x += 1;
                    }
                });
            }
        })
        .unwrap();
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn scope_collects_join_results() {
        let out: Vec<u32> = super::scope(|s| {
            let handles: Vec<_> = (0..4).map(|i| s.spawn(move |_| i * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(out, vec![0, 2, 4, 6]);
    }

    #[test]
    fn channel_round_trip_and_errors() {
        use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
