//! Offline stand-in for `proptest`.
//!
//! A real property-testing harness covering the surface the workspace uses:
//! the [`proptest!`] macro with `#![proptest_config(...)]`, [`Strategy`] with
//! `prop_map`, range and tuple strategies, `any::<T>()`, and
//! `collection::vec`. Differences from the real crate:
//!
//! * **No shrinking** — a failing case reports its test name and case index
//!   (via [`test_runner::CaseGuard`]) instead of a minimised input.
//! * **Deterministic seeding** — the RNG seed is derived from the test name,
//!   so failures reproduce exactly on re-run; there is no `PROPTEST_*` env
//!   handling.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `map`.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64() as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` of `element`-generated values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Configuration, RNG, and failure-context plumbing for [`crate::proptest!`].

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a), so each test gets an independent
        /// but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: hash }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Prints which case was running if the test panics (no shrinking, so
    /// this is the reproduction pointer).
    pub struct CaseGuard {
        name: &'static str,
        case: u32,
    }

    impl CaseGuard {
        /// Arm the guard for one case of `name`.
        pub fn new(name: &'static str, case: u32) -> Self {
            CaseGuard { name, case }
        }
    }

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest: {} failed at case {} (deterministic; re-run reproduces it)",
                    self.name, self.case
                );
            }
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs, star-importable.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert inside a property test. Without shrinking this is `assert!` plus
/// the case context printed by the harness.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...)` body runs for
/// `cases` randomly generated inputs.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    let guard = $crate::test_runner::CaseGuard::new(stringify!($name), case);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    { $body }
                    drop(guard);
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = usize> {
        (0usize..50).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 1u64..=4, z in -2.0f32..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((-2.0..2.0).contains(&z));
        }

        #[test]
        fn tuples_and_map_compose(pair in (1usize..4, 1usize..4), e in small_even()) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn vec_strategy_obeys_length(v in prop::collection::vec(0usize..5, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn any_covers_domain(seed in any::<u64>(), flag in any::<bool>()) {
            // Not much to assert beyond type soundness; exercise both values.
            let _ = (seed, flag);
        }
    }

    #[test]
    fn deterministic_across_instantiations() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
