//! Offline stand-in for `rand`.
//!
//! The workspace only needs a deterministic, seedable generator with
//! `StdRng::seed_from_u64` and `rng.random::<T>()` for `f32`/`f64`/`u32`.
//! [`rngs::StdRng`] is a SplitMix64 generator — not the real `StdRng`'s
//! ChaCha12, but deterministic, well-distributed, and dependency-free, which
//! is all the synthetic video/teacher/initialisation code relies on.

/// A source of raw 64-bit random words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from an [`RngCore`].
pub trait Random: Sized {
    /// Draw one value. Floats are uniform in `[0, 1)`, integers over their
    /// full range, `bool` is a fair coin.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for usize {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-entropy bits -> [0, 1) with full f32 mantissa coverage.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-entropy bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draw one uniformly distributed value of type `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for rand's `StdRng`).
    ///
    /// SplitMix64 passes BigCrush, has a full 2^64 period, and every seed —
    /// including 0 — produces a well-mixed stream, which matters because the
    /// workspace seeds it with small integers (0, 1, 2, ...).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.random();
            assert!((0.0..1.0).contains(&y));
            sum += y;
        }
        // Mean of 10k uniform draws should be near 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut rng = StdRng::seed_from_u64(0);
        let first: u64 = rng.random();
        assert_ne!(first, 0);
    }
}
