//! Offline stand-in for `criterion`.
//!
//! A real — if deliberately small — timing harness: it runs each benchmark
//! closure for a short warm-up, takes `sample_size` timed samples, and prints
//! min/median/mean per benchmark. No statistical regression analysis, plots,
//! or CLI; the goal is that `cargo bench` produces honest wall-clock numbers
//! for the paper tables and `cargo bench --no-run` type-checks every bench
//! target.

use std::time::{Duration, Instant};

/// How the per-iteration input of [`Bencher::iter_batched`] is grouped.
/// Accepted for API compatibility; this harness always runs one setup per
/// timed iteration (the `PerIteration` strategy), which is correct for every
/// batch size, just slower for tiny routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: real criterion batches many per allocation.
    SmallInput,
    /// Large inputs: real criterion batches few per allocation.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level harness handle; created by [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into(), sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be non-zero");
        self.sample_size = n;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Finish the group (drop-equivalent; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Warm-up pass: populates caches and JIT-like lazy init, untimed.
    let mut warmup = Bencher {
        samples: Vec::new(),
        iters: 1,
    };
    f(&mut warmup);

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            samples: Vec::new(),
            iters: 1,
        };
        f(&mut b);
        samples.extend(b.samples);
    }
    samples.sort_unstable();
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{label:<48} min {:>10} | median {:>10} | mean {:>10} ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Per-benchmark timing driver handed to the closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters: usize,
}

impl Bencher {
    /// Time `routine`, called `iters` times per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.samples.push(start.elapsed() / self.iters as u32);
    }

    /// Time `routine` on a fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.samples.push(total / self.iters as u32);
    }
}

/// Re-export matching `criterion::black_box`; benches here mostly use
/// `std::hint::black_box` directly.
pub use std::hint::black_box;

/// Define a benchmark group function from a list of `fn(&mut Criterion)`
/// targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from a list of group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(2);
        let mut setups = 0u32;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(setups, 3);
    }
}
