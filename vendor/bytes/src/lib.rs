//! Offline stand-in for `bytes`.
//!
//! Implements the subset the workspace's wire encodings use: an immutable,
//! cheaply-cloneable [`Bytes`] (an `Arc<[u8]>` plus a window), a growable
//! [`BytesMut`], and the [`Buf`]/[`BufMut`] cursor traits with the
//! little-endian accessors the snapshot codec needs. Semantics match the real
//! crate for this subset: `clone`/`slice` are O(1) and share the allocation,
//! `freeze` is O(1), and `Buf` reads advance the view.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer with O(1) `clone` and `slice`.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Length of the visible window in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-window sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds of {} bytes",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copy the visible window into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// A growable byte buffer; [`BytesMut::freeze`] converts it into [`Bytes`]
/// without copying.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Read cursor over a byte source; reads consume from the front.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.remaining()`.
    fn advance(&mut self, n: usize);

    /// Read a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Read a little-endian `f32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Consume the next `n` bytes as a [`Bytes`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let out = Bytes::from(self.chunk()[..n].to_vec());
        self.advance(n);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let out = self.slice(0..n);
        self.advance(n);
        out
    }
}

/// Write cursor appending to a byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(7);
        buf.put_slice(b"abc");
        buf.put_f32_le(1.5);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 11);
        assert_eq!(bytes.get_u32_le(), 7);
        assert_eq!(bytes.copy_to_bytes(3).to_vec(), b"abc");
        assert_eq!(bytes.get_f32_le(), 1.5);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_shares_window() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        let s2 = s.slice(1..2);
        assert_eq!(s2.to_vec(), vec![3]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn equality_ignores_allocation() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::from(vec![0, 1, 2, 3]).slice(1..4);
        assert_eq!(a, b);
        assert!(Bytes::new().is_empty());
    }
}
