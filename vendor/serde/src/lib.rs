//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, and nothing in the workspace
//! serializes values yet: `Serialize`/`Deserialize` appear only in derive
//! position and in one trait-bound assertion. This stub keeps that surface
//! compiling — the traits are markers blanket-implemented for every type, and
//! the derives (re-exported from the sibling `serde_derive` stub) expand to
//! nothing. Replacing both `vendor/` crates with the real serde is a
//! manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
