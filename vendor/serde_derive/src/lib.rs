//! Offline stand-in for `serde_derive`.
//!
//! The container this repo builds in has no access to crates.io, so the real
//! serde cannot be vendored. Nothing in the workspace actually serializes
//! values yet — `#[derive(Serialize, Deserialize)]` appears only so the types
//! are ready for a real wire format later — so the derives can expand to
//! nothing. The sibling `serde` stub provides blanket trait impls, which
//! keeps `T: serde::Serialize` bounds satisfied for every derived type.
//!
//! Swapping in the real serde later requires only replacing the two `vendor/`
//! crates; no source change in the workspace.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (including `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (including `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
