//! Workspace-level umbrella crate for the ShadowTutor reproduction.
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); it re-exports the member crates
//! so those targets can use a single dependency surface. Library users
//! should depend on the individual crates (`shadowtutor`, `st-nn`,
//! `st-video`, ...) directly.

pub mod testsupport;

pub use shadowtutor;
pub use st_net;
pub use st_nn;
pub use st_sim;
pub use st_teacher;
pub use st_tensor;
pub use st_video;
