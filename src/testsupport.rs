//! Shared fixtures for the cross-crate integration tests.
//!
//! Several integration tests need a "publicly educated" student checkpoint
//! (§4.1.3) and previously each re-ran [`pretrain_student`] from scratch —
//! tens of seconds of redundant conv work per test binary. The fixture here
//! pre-trains **once per process** behind a [`OnceLock`] and hands out
//! clones, exactly as a deployment would stamp serving replicas from one
//! pre-trained artifact.

use shadowtutor::pretrain::{pretrain_student, PretrainConfig, PretrainReport};
use st_nn::student::{StudentConfig, StudentNet};
use std::sync::OnceLock;

static PRETRAINED: OnceLock<(StudentNet, PretrainReport)> = OnceLock::new();

/// The shared pre-training recipe: 40 quick steps of the tiny student, the
/// strongest configuration the seed tests used.
pub fn shared_pretrain_config() -> PretrainConfig {
    PretrainConfig {
        steps: 40,
        ..PretrainConfig::quick()
    }
}

/// A clone of the process-wide pre-trained student checkpoint (built lazily
/// on first use) plus the pre-training report.
pub fn pretrained_student() -> (StudentNet, PretrainReport) {
    let (student, report) = PRETRAINED.get_or_init(|| {
        pretrain_student(StudentConfig::tiny(), &shared_pretrain_config())
            .expect("pre-training the shared checkpoint")
    });
    (student.clone(), *report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_cached_and_cloned() {
        let (a, report_a) = pretrained_student();
        let (b, report_b) = pretrained_student();
        assert_eq!(report_a, report_b);
        // Clones are independent objects with identical weights.
        let mut a = a;
        let mut b = b;
        let sa =
            st_nn::snapshot::WeightSnapshot::capture(&mut a, st_nn::snapshot::SnapshotScope::Full);
        let sb =
            st_nn::snapshot::WeightSnapshot::capture(&mut b, st_nn::snapshot::SnapshotScope::Full);
        assert!(sa.distance(&sb).unwrap() < 1e-12);
    }
}
